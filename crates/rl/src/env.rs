//! The rewrite environment: FHE circuit optimization as a Markov decision
//! process (Section 5).
//!
//! * **State**: the program being optimized, observed as its ICI (or BPE)
//!   token sequence.
//! * **Action**: a rewrite rule plus the index of the match location to apply
//!   it at, or the special `END` action that terminates the episode.
//! * **Reward**: the relative cost improvement of each step plus a terminal
//!   reward proportional to the total improvement (Section 5.3.2).

use crate::reward::RewardConfig;
use chehab_ir::{BpeTokenizer, CostModel, Expr, Vocabulary};
use chehab_trs::RewriteEngine;
use std::sync::Arc;

/// How programs are tokenized into observations.
#[derive(Debug, Clone)]
pub enum ObservationTokenizer {
    /// Identifier-and-Constant-Invariant tokenization (the paper's default).
    Ici(Vocabulary),
    /// Byte-pair encoding baseline (Figure 10 ablation).
    Bpe {
        /// The trained BPE tokenizer.
        tokenizer: Box<BpeTokenizer>,
        /// The vocabulary derived from its merges.
        vocabulary: Vocabulary,
    },
}

impl ObservationTokenizer {
    /// The default ICI tokenizer.
    pub fn ici() -> Self {
        ObservationTokenizer::Ici(Vocabulary::ici())
    }

    /// A BPE tokenizer baseline.
    pub fn bpe(tokenizer: BpeTokenizer) -> Self {
        let vocabulary = tokenizer.vocabulary();
        ObservationTokenizer::Bpe {
            tokenizer: Box::new(tokenizer),
            vocabulary,
        }
    }

    /// Vocabulary size (the embedding-table height the policy needs).
    pub fn vocab_size(&self) -> usize {
        match self {
            ObservationTokenizer::Ici(v) => v.len(),
            ObservationTokenizer::Bpe { vocabulary, .. } => vocabulary.len(),
        }
    }

    /// Encodes a program into a fixed-length token-id sequence.
    pub fn encode(&self, expr: &Expr, max_len: usize) -> Vec<usize> {
        match self {
            ObservationTokenizer::Ici(v) => v.encode_expr(expr, max_len),
            ObservationTokenizer::Bpe {
                tokenizer,
                vocabulary,
            } => vocabulary.encode(&tokenizer.tokenize_expr(expr), max_len),
        }
    }
}

/// Static configuration of the environment.
#[derive(Debug, Clone)]
pub struct EnvConfig {
    /// Cost model used by the reward.
    pub cost_model: CostModel,
    /// Reward shaping configuration.
    pub reward: RewardConfig,
    /// Maximum rewrites per episode (the paper uses 75).
    pub max_steps: usize,
    /// Maximum number of addressable match locations per rule.
    pub max_locations: usize,
    /// Observation length in tokens.
    pub observation_len: usize,
}

impl Default for EnvConfig {
    fn default() -> Self {
        EnvConfig {
            cost_model: CostModel::default(),
            reward: RewardConfig::default(),
            max_steps: 75,
            max_locations: 16,
            observation_len: 96,
        }
    }
}

/// An action in the rewrite MDP.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Action {
    /// Apply rule `rule` at its `location`-th match.
    Apply {
        /// Rule index in the engine's catalog.
        rule: usize,
        /// 0-based match index.
        location: usize,
    },
    /// Terminate the episode.
    Stop,
}

/// The result of one environment step.
#[derive(Debug, Clone)]
pub struct StepOutcome {
    /// Reward obtained for the step (including the terminal bonus when the
    /// episode ends).
    pub reward: f64,
    /// Whether the episode has ended.
    pub done: bool,
    /// Whether the chosen action was valid (invalid actions leave the state
    /// unchanged and incur a small penalty).
    pub valid: bool,
}

/// The rewrite environment over one program.
#[derive(Debug, Clone)]
pub struct RewriteEnv {
    engine: Arc<RewriteEngine>,
    tokenizer: Arc<ObservationTokenizer>,
    config: EnvConfig,
    initial: Expr,
    current: Expr,
    initial_cost: f64,
    current_cost: f64,
    steps: usize,
    finished: bool,
}

impl RewriteEnv {
    /// Creates an environment over `program`.
    pub fn new(
        program: Expr,
        engine: Arc<RewriteEngine>,
        tokenizer: Arc<ObservationTokenizer>,
        config: EnvConfig,
    ) -> Self {
        let initial_cost = config.cost_model.cost(&program);
        RewriteEnv {
            engine,
            tokenizer,
            config,
            current: program.clone(),
            initial: program,
            initial_cost,
            current_cost: initial_cost,
            steps: 0,
            finished: false,
        }
    }

    /// Resets the environment to a new program and returns the first
    /// observation.
    pub fn reset(&mut self, program: Expr) -> Vec<usize> {
        self.initial_cost = self.config.cost_model.cost(&program);
        self.current_cost = self.initial_cost;
        self.current = program.clone();
        self.initial = program;
        self.steps = 0;
        self.finished = false;
        self.observe()
    }

    /// The current program.
    pub fn current(&self) -> &Expr {
        &self.current
    }

    /// The program the episode started from.
    pub fn initial(&self) -> &Expr {
        &self.initial
    }

    /// The cost of the current program.
    pub fn current_cost(&self) -> f64 {
        self.current_cost
    }

    /// The cost of the initial program.
    pub fn initial_cost(&self) -> f64 {
        self.initial_cost
    }

    /// Whether the episode has terminated.
    pub fn is_finished(&self) -> bool {
        self.finished
    }

    /// Number of actions taken so far.
    pub fn steps_taken(&self) -> usize {
        self.steps
    }

    /// Total number of rule actions (the `END` action has index
    /// [`RewriteEnv::stop_action`]).
    pub fn rule_count(&self) -> usize {
        self.engine.rule_count()
    }

    /// The index of the `END` action in the rule head.
    pub fn stop_action(&self) -> usize {
        self.engine.rule_count()
    }

    /// Maximum number of addressable locations.
    pub fn max_locations(&self) -> usize {
        self.config.max_locations
    }

    /// Observation length in tokens.
    pub fn observation_len(&self) -> usize {
        self.config.observation_len
    }

    /// The current observation: the program's token-id sequence.
    pub fn observe(&self) -> Vec<usize> {
        self.tokenizer
            .encode(&self.current, self.config.observation_len)
    }

    /// Boolean mask over the rule head (length `rule_count() + 1`): `true`
    /// where the rule has at least one match; the `END` action is always
    /// valid.
    pub fn rule_mask(&self) -> Vec<bool> {
        let mut mask = self.engine.applicability_mask(&self.current);
        mask.push(true);
        mask
    }

    /// Number of addressable match locations for a rule in the current state
    /// (clamped to `max_locations`).
    pub fn location_count(&self, rule: usize) -> usize {
        if rule >= self.engine.rule_count() {
            return 0;
        }
        self.engine
            .matches(&self.current, rule)
            .len()
            .min(self.config.max_locations)
    }

    /// Applies an action.
    ///
    /// Invalid actions (rule with no matches, or an out-of-range location)
    /// leave the program unchanged and receive [`RewardConfig::invalid_penalty`].
    pub fn step(&mut self, action: Action) -> StepOutcome {
        assert!(!self.finished, "step() called on a finished episode");
        self.steps += 1;
        match action {
            Action::Stop => {
                self.finished = true;
                let terminal = self
                    .config
                    .reward
                    .terminal(self.initial_cost, self.current_cost);
                StepOutcome {
                    reward: terminal,
                    done: true,
                    valid: true,
                }
            }
            Action::Apply { rule, location } => {
                let rewritten = self
                    .engine
                    .apply_at_occurrence(&self.current, rule, location);
                let (reward, valid) = match rewritten {
                    Some(next) => {
                        let next_cost = self.config.cost_model.cost(&next);
                        let step_reward = self.config.reward.step(self.current_cost, next_cost);
                        self.current = next;
                        self.current_cost = next_cost;
                        (step_reward, true)
                    }
                    None => (self.config.reward.invalid_penalty, false),
                };
                let mut total = reward;
                let done = self.steps >= self.config.max_steps;
                if done {
                    self.finished = true;
                    total += self
                        .config
                        .reward
                        .terminal(self.initial_cost, self.current_cost);
                }
                StepOutcome {
                    reward: total,
                    done,
                    valid,
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use chehab_ir::parse;

    fn make_env(src: &str) -> RewriteEnv {
        RewriteEnv::new(
            parse(src).unwrap(),
            Arc::new(RewriteEngine::new()),
            Arc::new(ObservationTokenizer::ici()),
            EnvConfig::default(),
        )
    }

    #[test]
    fn observation_has_the_configured_length() {
        let env = make_env("(Vec (+ a b) (+ c d))");
        assert_eq!(env.observe().len(), env.observation_len());
    }

    #[test]
    fn rule_mask_includes_the_end_action() {
        let env = make_env("(Vec (+ a b) (+ c d))");
        let mask = env.rule_mask();
        assert_eq!(mask.len(), env.rule_count() + 1);
        assert!(mask[env.stop_action()], "END is always valid");
        assert!(mask.iter().filter(|&&m| m).count() > 1, "some rule applies");
    }

    #[test]
    fn applying_a_vectorization_rule_yields_positive_reward() {
        let mut env = make_env("(Vec (+ a b) (+ c d))");
        let rule = RewriteEngine::new().rule_index("add-vectorize-2").unwrap();
        let before = env.current_cost();
        let outcome = env.step(Action::Apply { rule, location: 0 });
        assert!(outcome.valid);
        assert!(outcome.reward > 0.0, "vectorization must improve the cost");
        assert!(env.current_cost() < before);
        assert!(!outcome.done);
    }

    #[test]
    fn invalid_actions_are_penalized_and_leave_the_state_unchanged() {
        let mut env = make_env("(Vec (+ a b) (+ c d))");
        let rule = RewriteEngine::new().rule_index("rot-merge").unwrap();
        let before = env.current().clone();
        let outcome = env.step(Action::Apply { rule, location: 0 });
        assert!(!outcome.valid);
        assert!(outcome.reward < 0.0);
        assert_eq!(env.current(), &before);
    }

    #[test]
    fn stop_action_ends_the_episode_with_the_terminal_reward() {
        let mut env = make_env("(Vec (+ a b) (+ c d))");
        let rule = RewriteEngine::new().rule_index("add-vectorize-2").unwrap();
        env.step(Action::Apply { rule, location: 0 });
        let outcome = env.step(Action::Stop);
        assert!(outcome.done);
        assert!(env.is_finished());
        assert!(
            outcome.reward > 0.0,
            "terminal reward reflects the total improvement"
        );
    }

    #[test]
    fn episodes_terminate_at_the_step_limit() {
        let mut env = RewriteEnv::new(
            parse("(+ (+ a b) (+ c d))").unwrap(),
            Arc::new(RewriteEngine::new()),
            Arc::new(ObservationTokenizer::ici()),
            EnvConfig {
                max_steps: 3,
                ..EnvConfig::default()
            },
        );
        let comm = RewriteEngine::new().rule_index("add-comm").unwrap();
        let mut done = false;
        for _ in 0..3 {
            done = env
                .step(Action::Apply {
                    rule: comm,
                    location: 0,
                })
                .done;
        }
        assert!(done);
        assert!(env.is_finished());
    }

    #[test]
    fn reset_restores_a_fresh_episode() {
        let mut env = make_env("(Vec (+ a b) (+ c d))");
        let rule = RewriteEngine::new().rule_index("add-vectorize-2").unwrap();
        env.step(Action::Apply { rule, location: 0 });
        let obs = env.reset(parse("(* x y)").unwrap());
        assert_eq!(obs.len(), env.observation_len());
        assert_eq!(env.steps_taken(), 0);
        assert!(!env.is_finished());
    }

    #[test]
    fn location_count_is_clamped() {
        let env = make_env("(+ (+ (+ (+ a b) (+ c d)) (+ e f)) (+ g h))");
        let comm = RewriteEngine::new().rule_index("add-comm").unwrap();
        assert!(env.location_count(comm) <= env.max_locations());
        assert!(env.location_count(comm) >= 1);
        assert_eq!(env.location_count(env.stop_action()), 0);
    }

    #[test]
    fn bpe_observations_work_too() {
        let corpus = vec!["(VecAdd (Vec a b) (Vec c d))".to_string()];
        let tokenizer = ObservationTokenizer::bpe(chehab_ir::BpeTokenizer::train(&corpus, 48));
        assert!(tokenizer.vocab_size() > 3);
        let env = RewriteEnv::new(
            parse("(Vec (+ a b) (+ c d))").unwrap(),
            Arc::new(RewriteEngine::new()),
            Arc::new(tokenizer),
            EnvConfig::default(),
        );
        assert_eq!(env.observe().len(), env.observation_len());
    }
}
