//! Actor-critic policy networks (Section 5.4).
//!
//! The default policy is *hierarchical*: a rule-selection head picks one of
//! the 84+ rewrite rules (or `END`), and a location-selection head —
//! conditioned on the chosen rule — picks which match of that rule to apply.
//! The *flat* policy of the Section 7.6 ablation enumerates `(rule, location)`
//! pairs in one output layer. Both share a sequence encoder (Transformer by
//! default, GRU for the Appendix I.1 comparison) and a value head (the
//! critic, used only during training).

use crate::env::Action;
use chehab_nn::{
    Activation, GruEncoder, Matrix, Mlp, Module, Tensor, TransformerConfig, TransformerEncoder,
};
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Which sequence encoder the policy uses for the program embedding.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum EncoderArch {
    /// Self-attention encoder (the paper's choice).
    Transformer {
        /// Number of encoder layers.
        layers: usize,
        /// Number of attention heads.
        heads: usize,
    },
    /// Recurrent baseline.
    Gru {
        /// Number of stacked GRU layers.
        layers: usize,
    },
}

/// Whether the action space is factored into rule × location or flattened.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ActionSpaceKind {
    /// Rule head plus location head (the paper's design).
    Hierarchical,
    /// One head over every `(rule, location)` pair plus `END`.
    Flat,
}

/// Architecture hyper-parameters of a policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct PolicyConfig {
    /// Token vocabulary size.
    pub vocab_size: usize,
    /// Program embedding dimension (the paper uses 256).
    pub embedding_dim: usize,
    /// Sequence encoder architecture.
    pub encoder: EncoderArch,
    /// Factored or flat action space.
    pub action_space: ActionSpaceKind,
    /// Number of rewrite rules (the `END` action is added on top).
    pub rule_count: usize,
    /// Maximum number of addressable match locations.
    pub max_locations: usize,
    /// Observation length in tokens.
    pub observation_len: usize,
}

impl PolicyConfig {
    /// The paper's configuration: Transformer with 4 layers / 8 heads and a
    /// 256-d embedding, hierarchical action space.
    pub fn paper(vocab_size: usize, rule_count: usize, max_locations: usize) -> Self {
        PolicyConfig {
            vocab_size,
            embedding_dim: 256,
            encoder: EncoderArch::Transformer {
                layers: 4,
                heads: 8,
            },
            action_space: ActionSpaceKind::Hierarchical,
            rule_count,
            max_locations,
            observation_len: 256,
        }
    }

    /// A small configuration for fast training in tests and the scaled-down
    /// experiment harness.
    pub fn small(vocab_size: usize, rule_count: usize, max_locations: usize) -> Self {
        PolicyConfig {
            vocab_size,
            embedding_dim: 32,
            encoder: EncoderArch::Transformer {
                layers: 1,
                heads: 2,
            },
            action_space: ActionSpaceKind::Hierarchical,
            rule_count,
            max_locations,
            observation_len: 96,
        }
    }

    /// Switches to a flat action space (Figure 13 ablation).
    pub fn flat(mut self) -> Self {
        self.action_space = ActionSpaceKind::Flat;
        self
    }

    /// Switches to a GRU encoder.
    pub fn with_gru(mut self, layers: usize) -> Self {
        self.encoder = EncoderArch::Gru { layers };
        self
    }
}

#[derive(Debug)]
enum EncoderBackend {
    Transformer(TransformerEncoder),
    Gru(GruEncoder),
}

impl EncoderBackend {
    fn encode(&self, tokens: &[usize]) -> Tensor {
        match self {
            EncoderBackend::Transformer(t) => t.encode(tokens),
            EncoderBackend::Gru(g) => g.encode(tokens),
        }
    }

    fn parameters(&self) -> Vec<Tensor> {
        match self {
            EncoderBackend::Transformer(t) => t.parameters(),
            EncoderBackend::Gru(g) => g.parameters(),
        }
    }
}

/// A sampled action together with the quantities PPO stores in its rollout
/// buffer.
#[derive(Debug, Clone, Copy)]
pub struct ActionSample {
    /// The chosen action.
    pub action: Action,
    /// Log-probability of the action under the current policy.
    pub log_prob: f32,
    /// The critic's value estimate of the state.
    pub value: f32,
}

/// Differentiable evaluation of a stored action (used by PPO updates).
#[derive(Debug)]
pub struct ActionEvaluation {
    /// Log-probability tensor (scalar).
    pub log_prob: Tensor,
    /// Entropy tensor (scalar).
    pub entropy: Tensor,
    /// Value estimate tensor (scalar).
    pub value: Tensor,
}

/// The actor-critic policy.
#[derive(Debug)]
pub struct Policy {
    config: PolicyConfig,
    encoder: EncoderBackend,
    rule_head: Mlp,
    location_head: Mlp,
    flat_head: Option<Mlp>,
    critic: Mlp,
}

impl Policy {
    /// Builds a policy with freshly initialized weights.
    pub fn new(config: PolicyConfig, rng: &mut impl Rng) -> Self {
        let encoder = match config.encoder {
            EncoderArch::Transformer { layers, heads } => {
                let tc = TransformerConfig {
                    vocab_size: config.vocab_size,
                    model_dim: config.embedding_dim,
                    num_heads: heads,
                    num_layers: layers,
                    ffn_dim: config.embedding_dim * 2,
                    max_len: config.observation_len,
                };
                EncoderBackend::Transformer(TransformerEncoder::new(tc, rng))
            }
            EncoderArch::Gru { layers } => EncoderBackend::Gru(GruEncoder::new(
                config.vocab_size,
                config.embedding_dim,
                layers,
                config.observation_len,
                rng,
            )),
        };
        let emb = config.embedding_dim;
        let rule_out = config.rule_count + 1;
        let rule_head = Mlp::new(&[emb, 128, 64, rule_out], Activation::Relu, rng);
        let location_head = Mlp::new(
            &[emb + rule_out, 64, 64, config.max_locations],
            Activation::Relu,
            rng,
        );
        let flat_head = matches!(config.action_space, ActionSpaceKind::Flat).then(|| {
            Mlp::new(
                &[emb, 128, 64, config.rule_count * config.max_locations + 1],
                Activation::Relu,
                rng,
            )
        });
        let critic = Mlp::new(&[emb, 256, 128, 64, 1], Activation::Relu, rng);
        Policy {
            config,
            encoder,
            rule_head,
            location_head,
            flat_head,
            critic,
        }
    }

    /// The policy's architecture configuration.
    pub fn config(&self) -> &PolicyConfig {
        &self.config
    }

    /// Encodes an observation into the program embedding.
    fn embed(&self, obs: &[usize]) -> Tensor {
        self.encoder.encode(obs)
    }

    /// The critic's value estimate for an observation.
    pub fn value(&self, obs: &[usize]) -> f32 {
        self.critic.forward(&self.embed(obs)).value().get(0, 0)
    }

    fn masked_distribution(logits: &[f32], mask: impl Fn(usize) -> bool) -> Vec<f32> {
        let mut masked: Vec<f32> = logits
            .iter()
            .enumerate()
            .map(|(i, &l)| if mask(i) { l } else { f32::NEG_INFINITY })
            .collect();
        let max = masked.iter().copied().fold(f32::NEG_INFINITY, f32::max);
        if !max.is_finite() {
            // Nothing is valid; fall back to uniform to avoid NaNs.
            let p = 1.0 / masked.len() as f32;
            return vec![p; masked.len()];
        }
        let mut denom = 0.0;
        for v in masked.iter_mut() {
            *v = (*v - max).exp();
            denom += *v;
        }
        masked.iter().map(|v| v / denom.max(1e-12)).collect()
    }

    fn sample_index(probs: &[f32], rng: &mut impl Rng, deterministic: bool) -> usize {
        if deterministic {
            return probs
                .iter()
                .enumerate()
                .max_by(|a, b| a.1.partial_cmp(b.1).unwrap_or(std::cmp::Ordering::Equal))
                .map(|(i, _)| i)
                .unwrap_or(0);
        }
        let draw: f32 = rng.gen();
        let mut acc = 0.0;
        for (i, &p) in probs.iter().enumerate() {
            acc += p;
            if draw <= acc {
                return i;
            }
        }
        probs.len() - 1
    }

    /// Samples an action for an observation.
    ///
    /// `rule_mask` must have length `rule_count + 1` (the last entry is
    /// `END`); `location_count(rule)` reports how many matches the rule has.
    pub fn act(
        &self,
        obs: &[usize],
        rule_mask: &[bool],
        location_count: impl Fn(usize) -> usize,
        rng: &mut impl Rng,
        deterministic: bool,
    ) -> ActionSample {
        let embedding = self.embed(obs);
        let value = self.critic.forward(&embedding).value().get(0, 0);
        match self.config.action_space {
            ActionSpaceKind::Hierarchical => {
                let rule_logits = self.rule_head.forward(&embedding).value();
                let rule_probs = Self::masked_distribution(rule_logits.data(), |i| {
                    rule_mask.get(i).copied().unwrap_or(false)
                });
                let rule = Self::sample_index(&rule_probs, rng, deterministic);
                if rule == self.config.rule_count {
                    return ActionSample {
                        action: Action::Stop,
                        log_prob: rule_probs[rule].max(1e-12).ln(),
                        value,
                    };
                }
                let locations = location_count(rule).max(1).min(self.config.max_locations);
                let loc_logits = self.location_logits(&embedding, rule).value();
                let loc_probs = Self::masked_distribution(loc_logits.data(), |i| i < locations);
                let location = Self::sample_index(&loc_probs, rng, deterministic);
                ActionSample {
                    action: Action::Apply { rule, location },
                    log_prob: (rule_probs[rule].max(1e-12) * loc_probs[location].max(1e-12)).ln(),
                    value,
                }
            }
            ActionSpaceKind::Flat => {
                let head = self
                    .flat_head
                    .as_ref()
                    .expect("flat head exists for flat policies");
                let logits = head.forward(&embedding).value();
                let stop_index = self.config.rule_count * self.config.max_locations;
                let probs = Self::masked_distribution(logits.data(), |i| {
                    if i == stop_index {
                        true
                    } else {
                        let rule = i / self.config.max_locations;
                        let loc = i % self.config.max_locations;
                        rule_mask.get(rule).copied().unwrap_or(false) && loc < location_count(rule)
                    }
                });
                let index = Self::sample_index(&probs, rng, deterministic);
                let action = if index == stop_index {
                    Action::Stop
                } else {
                    Action::Apply {
                        rule: index / self.config.max_locations,
                        location: index % self.config.max_locations,
                    }
                };
                ActionSample {
                    action,
                    log_prob: probs[index].max(1e-12).ln(),
                    value,
                }
            }
        }
    }

    fn location_logits(&self, embedding: &Tensor, rule: usize) -> Tensor {
        let mut one_hot = Matrix::zeros(1, self.config.rule_count + 1);
        one_hot.set(0, rule, 1.0);
        let input = Tensor::concat_cols(&[embedding.clone(), Tensor::constant(one_hot)]);
        self.location_head.forward(&input)
    }

    /// Differentiable re-evaluation of a stored transition (used by PPO):
    /// returns the log-probability and entropy of `action` under the current
    /// parameters plus the value estimate.
    pub fn evaluate(
        &self,
        obs: &[usize],
        action: Action,
        rule_mask: &[bool],
        location_count_for_rule: usize,
    ) -> ActionEvaluation {
        let embedding = self.embed(obs);
        let value = self.critic.forward(&embedding);
        match self.config.action_space {
            ActionSpaceKind::Hierarchical => {
                let rule_logits = self.rule_head.forward(&embedding);
                let rule_probs = Self::masked_softmax(&rule_logits, |i| {
                    rule_mask.get(i).copied().unwrap_or(false)
                });
                let log_rule_probs = rule_probs.ln();
                let rule_entropy = rule_probs.mul(&log_rule_probs).sum().scale(-1.0);
                match action {
                    Action::Stop => {
                        let idx = self.config.rule_count;
                        let log_prob = log_rule_probs.slice_cols(idx, idx + 1).sum();
                        ActionEvaluation {
                            log_prob,
                            entropy: rule_entropy,
                            value,
                        }
                    }
                    Action::Apply { rule, location } => {
                        let locations = location_count_for_rule
                            .max(1)
                            .min(self.config.max_locations);
                        let loc_logits = self.location_logits(&embedding, rule);
                        let loc_probs = Self::masked_softmax(&loc_logits, |i| i < locations);
                        let log_loc_probs = loc_probs.ln();
                        let loc_entropy = loc_probs.mul(&log_loc_probs).sum().scale(-1.0);
                        let log_prob = log_rule_probs
                            .slice_cols(rule, rule + 1)
                            .sum()
                            .add(&log_loc_probs.slice_cols(location, location + 1).sum());
                        ActionEvaluation {
                            log_prob,
                            entropy: rule_entropy.add(&loc_entropy),
                            value,
                        }
                    }
                }
            }
            ActionSpaceKind::Flat => {
                let head = self
                    .flat_head
                    .as_ref()
                    .expect("flat head exists for flat policies");
                let logits = head.forward(&embedding);
                let stop_index = self.config.rule_count * self.config.max_locations;
                let max_locations = self.config.max_locations;
                let probs = Self::masked_softmax(&logits, |i| {
                    if i == stop_index {
                        true
                    } else {
                        let rule = i / max_locations;
                        rule_mask.get(rule).copied().unwrap_or(false)
                    }
                });
                let log_probs = probs.ln();
                let entropy = probs.mul(&log_probs).sum().scale(-1.0);
                let index = match action {
                    Action::Stop => stop_index,
                    Action::Apply { rule, location } => rule * max_locations + location,
                };
                let log_prob = log_probs.slice_cols(index, index + 1).sum();
                ActionEvaluation {
                    log_prob,
                    entropy,
                    value,
                }
            }
        }
    }

    fn masked_softmax(logits: &Tensor, mask: impl Fn(usize) -> bool) -> Tensor {
        let (_, cols) = logits.shape();
        let mut offset = Matrix::zeros(1, cols);
        for c in 0..cols {
            if !mask(c) {
                offset.set(0, c, -1e9);
            }
        }
        logits.add(&Tensor::constant(offset)).softmax_rows()
    }
}

impl Module for Policy {
    fn parameters(&self) -> Vec<Tensor> {
        let mut params = self.encoder.parameters();
        params.extend(self.rule_head.parameters());
        params.extend(self.location_head.parameters());
        if let Some(flat) = &self.flat_head {
            params.extend(flat.parameters());
        }
        params.extend(self.critic.parameters());
        params
    }
}

/// A serializable snapshot of a policy: its architecture plus every weight
/// matrix.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PolicySnapshot {
    /// Architecture description.
    pub config: PolicyConfig,
    /// Parameter matrices in [`Module::parameters`] order.
    pub weights: Vec<Matrix>,
}

impl Policy {
    /// Captures a snapshot of the policy.
    pub fn snapshot(&self) -> PolicySnapshot {
        PolicySnapshot {
            config: self.config,
            weights: self.state(),
        }
    }

    /// Restores a policy from a snapshot.
    pub fn from_snapshot(snapshot: &PolicySnapshot) -> Self {
        let mut rng = rand::rngs::StdRng::seed_from_u64(0);
        let policy = Policy::new(snapshot.config, &mut rng);
        policy.load_state(&snapshot.weights);
        policy
    }

    /// Serializes the policy to a JSON file.
    ///
    /// # Errors
    ///
    /// Propagates I/O and serialization errors.
    pub fn save(&self, path: impl AsRef<std::path::Path>) -> std::io::Result<()> {
        let json = serde_json::to_string(&self.snapshot())
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))?;
        std::fs::write(path, json)
    }

    /// Loads a policy from a JSON file written by [`Policy::save`].
    ///
    /// # Errors
    ///
    /// Propagates I/O and deserialization errors.
    pub fn load(path: impl AsRef<std::path::Path>) -> std::io::Result<Self> {
        let json = std::fs::read_to_string(path)?;
        let snapshot: PolicySnapshot = serde_json::from_str(&json)
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))?;
        Ok(Policy::from_snapshot(&snapshot))
    }
}

use rand::SeedableRng;

#[cfg(test)]
mod tests {
    use super::*;
    use rand_chacha::ChaCha8Rng;

    fn small_policy(kind: ActionSpaceKind) -> Policy {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let mut config = PolicyConfig::small(32, 10, 4);
        config.action_space = kind;
        Policy::new(config, &mut rng)
    }

    #[test]
    fn hierarchical_policy_samples_valid_actions() {
        let policy = small_policy(ActionSpaceKind::Hierarchical);
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let mut mask = vec![false; 11];
        mask[3] = true;
        mask[10] = true; // END
        for _ in 0..20 {
            let sample = policy.act(&[1, 2, 3], &mask, |_| 2, &mut rng, false);
            match sample.action {
                Action::Stop => {}
                Action::Apply { rule, location } => {
                    assert_eq!(rule, 3, "only rule 3 is unmasked");
                    assert!(location < 2);
                }
            }
            assert!(sample.log_prob <= 0.0);
            assert!(sample.value.is_finite());
        }
    }

    #[test]
    fn deterministic_sampling_is_reproducible() {
        let policy = small_policy(ActionSpaceKind::Hierarchical);
        let mask = vec![true; 11];
        let mut rng_a = ChaCha8Rng::seed_from_u64(3);
        let mut rng_b = ChaCha8Rng::seed_from_u64(99);
        let a = policy.act(&[1, 2, 3], &mask, |_| 3, &mut rng_a, true);
        let b = policy.act(&[1, 2, 3], &mask, |_| 3, &mut rng_b, true);
        assert_eq!(a.action, b.action);
    }

    #[test]
    fn flat_policy_samples_and_evaluates() {
        let policy = small_policy(ActionSpaceKind::Flat);
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        let mask = vec![true; 11];
        let sample = policy.act(&[5, 6], &mask, |_| 4, &mut rng, false);
        let eval = policy.evaluate(&[5, 6], sample.action, &mask, 4);
        assert!(eval.log_prob.value().get(0, 0) <= 0.0);
        assert!(eval.entropy.value().get(0, 0) >= 0.0);
    }

    #[test]
    fn evaluate_log_prob_matches_act_log_prob() {
        let policy = small_policy(ActionSpaceKind::Hierarchical);
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let mask = vec![true; 11];
        let obs = [1usize, 2, 3, 4];
        let sample = policy.act(&obs, &mask, |_| 3, &mut rng, false);
        let loc_count = match sample.action {
            Action::Apply { .. } => 3,
            Action::Stop => 0,
        };
        let eval = policy.evaluate(&obs, sample.action, &mask, loc_count);
        assert!(
            (eval.log_prob.value().get(0, 0) - sample.log_prob).abs() < 1e-4,
            "act and evaluate must agree on the action's log-probability"
        );
    }

    #[test]
    fn gradients_flow_through_evaluation() {
        let policy = small_policy(ActionSpaceKind::Hierarchical);
        policy.zero_grad();
        let mask = vec![true; 11];
        let eval = policy.evaluate(
            &[1, 2],
            Action::Apply {
                rule: 2,
                location: 1,
            },
            &mask,
            3,
        );
        eval.log_prob.scale(-1.0).backward();
        let nonzero = policy
            .parameters()
            .iter()
            .filter(|p| p.grad().norm() > 0.0)
            .count();
        assert!(nonzero > 0, "policy gradient must reach the parameters");
    }

    #[test]
    fn snapshot_round_trips_through_json() {
        let policy = small_policy(ActionSpaceKind::Hierarchical);
        let dir = std::env::temp_dir().join("chehab_rl_policy_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("policy.json");
        policy.save(&path).unwrap();
        let restored = Policy::load(&path).unwrap();
        let mask = vec![true; 11];
        let mut rng = ChaCha8Rng::seed_from_u64(6);
        let a = policy.act(&[1, 2, 3], &mask, |_| 2, &mut rng, true);
        let mut rng = ChaCha8Rng::seed_from_u64(6);
        let b = restored.act(&[1, 2, 3], &mask, |_| 2, &mut rng, true);
        assert_eq!(a.action, b.action);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn paper_config_matches_section_5() {
        let c = PolicyConfig::paper(160, 89, 16);
        assert_eq!(c.embedding_dim, 256);
        assert!(matches!(
            c.encoder,
            EncoderArch::Transformer {
                layers: 4,
                heads: 8
            }
        ));
        assert_eq!(c.action_space, ActionSpaceKind::Hierarchical);
    }
}
