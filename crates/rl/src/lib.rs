//! # chehab-rl
//!
//! The reinforcement-learning stack of CHEHAB RL (Sections 5 and 7.1 of the
//! paper): the rewrite-environment MDP, the hierarchical (and flat)
//! actor-critic policy over the term-rewriting action space, PPO with
//! generalized advantage estimation, the training loop over synthesized
//! program datasets, and the compile-time [`Agent`] that applies a trained
//! policy to optimize programs.
//!
//! ## Example
//!
//! ```
//! use chehab_rl::{Policy, PolicyConfig, Trainer, TrainerConfig};
//! use chehab_ir::parse;
//! use rand::SeedableRng;
//!
//! let trainer = Trainer::new(TrainerConfig::small(64, 0));
//! let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(0);
//! let policy = Policy::new(
//!     PolicyConfig::small(trainer.tokenizer().vocab_size(), trainer.engine().rule_count(), 8),
//!     &mut rng,
//! );
//! let dataset = vec![parse("(Vec (+ a b) (+ c d))").unwrap()];
//! let report = trainer.train(&policy, &dataset);
//! assert!(report.episodes > 0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod agent;
mod env;
mod policy;
mod ppo;
mod reward;
mod trainer;

pub use agent::{Agent, AgentConfig, OptimizationOutcome};
pub use env::{Action, EnvConfig, ObservationTokenizer, RewriteEnv, StepOutcome};
pub use policy::{
    ActionEvaluation, ActionSample, ActionSpaceKind, EncoderArch, Policy, PolicyConfig,
    PolicySnapshot,
};
pub use ppo::{PpoConfig, PpoLearner, RolloutBuffer, Transition, UpdateStats};
pub use reward::RewardConfig;
pub use trainer::{CurvePoint, Trainer, TrainerConfig, TrainingReport};
