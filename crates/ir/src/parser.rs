//! S-expression parser and printer for the CHEHAB IR.
//!
//! The concrete syntax mirrors the paper:
//!
//! ```text
//! expr   ::= ident                      ; encrypted scalar input
//!          | integer                    ; plaintext constant
//!          | (pt ident)                 ; plaintext scalar input
//!          | (+ expr expr)              ; scalar add
//!          | (- expr expr) | (- expr)   ; scalar sub / negation
//!          | (* expr expr)              ; scalar mul
//!          | (Vec expr+)                ; vector constructor
//!          | (VecAdd expr expr) | (VecSub expr expr) | (VecMul expr expr)
//!          | (VecNeg expr)
//!          | (<< expr integer) | (>> expr integer)   ; rotations
//! ```
//!
//! Printing and parsing round-trip: `parse(&e.to_string()) == Ok(e)`.

use crate::expr::{BinOp, Expr};
use std::fmt;

/// Error produced when parsing an IR s-expression fails.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Human-readable description of the failure.
    pub message: String,
    /// Byte offset in the input at which the failure was detected.
    pub position: usize,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "parse error at byte {}: {}", self.position, self.message)
    }
}

impl std::error::Error for ParseError {}

#[derive(Debug, Clone, PartialEq)]
enum Token {
    LParen,
    RParen,
    Ident(String),
    Int(i64),
    Op(String),
}

struct Lexer<'a> {
    input: &'a [u8],
    pos: usize,
}

impl<'a> Lexer<'a> {
    fn new(input: &'a str) -> Self {
        Lexer {
            input: input.as_bytes(),
            pos: 0,
        }
    }

    fn error(&self, message: impl Into<String>) -> ParseError {
        ParseError {
            message: message.into(),
            position: self.pos,
        }
    }

    fn skip_ws(&mut self) {
        while self.pos < self.input.len() && self.input[self.pos].is_ascii_whitespace() {
            self.pos += 1;
        }
    }

    fn next_token(&mut self) -> Result<Option<(Token, usize)>, ParseError> {
        self.skip_ws();
        if self.pos >= self.input.len() {
            return Ok(None);
        }
        let start = self.pos;
        let c = self.input[self.pos];
        let tok = match c {
            b'(' => {
                self.pos += 1;
                Token::LParen
            }
            b')' => {
                self.pos += 1;
                Token::RParen
            }
            b'+' | b'*' => {
                self.pos += 1;
                Token::Op((c as char).to_string())
            }
            b'<' | b'>' => {
                if self.pos + 1 < self.input.len() && self.input[self.pos + 1] == c {
                    self.pos += 2;
                    Token::Op(if c == b'<' { "<<".into() } else { ">>".into() })
                } else {
                    return Err(self.error(format!("unexpected character `{}`", c as char)));
                }
            }
            b'-' => {
                // `-` may start a negative integer literal or be the sub/neg operator.
                if self.pos + 1 < self.input.len() && self.input[self.pos + 1].is_ascii_digit() {
                    self.pos += 1;
                    let v = self.lex_int(true)?;
                    Token::Int(v)
                } else {
                    self.pos += 1;
                    Token::Op("-".into())
                }
            }
            b'0'..=b'9' => Token::Int(self.lex_int(false)?),
            c if c.is_ascii_alphabetic() || c == b'_' => {
                let mut end = self.pos;
                while end < self.input.len()
                    && (self.input[end].is_ascii_alphanumeric() || self.input[end] == b'_')
                {
                    end += 1;
                }
                let ident = std::str::from_utf8(&self.input[self.pos..end])
                    .expect("ascii alphanumeric slice is valid utf-8")
                    .to_string();
                self.pos = end;
                Token::Ident(ident)
            }
            other => return Err(self.error(format!("unexpected character `{}`", other as char))),
        };
        Ok(Some((tok, start)))
    }

    fn lex_int(&mut self, negative: bool) -> Result<i64, ParseError> {
        let start = self.pos;
        while self.pos < self.input.len() && self.input[self.pos].is_ascii_digit() {
            self.pos += 1;
        }
        let digits =
            std::str::from_utf8(&self.input[start..self.pos]).expect("digits are valid utf-8");
        let mag: i64 = digits
            .parse()
            .map_err(|_| self.error(format!("integer literal `{digits}` out of range")))?;
        Ok(if negative { -mag } else { mag })
    }
}

struct Parser<'a> {
    tokens: Vec<(Token, usize)>,
    idx: usize,
    input_len: usize,
    _marker: std::marker::PhantomData<&'a ()>,
}

impl<'a> Parser<'a> {
    fn new(input: &'a str) -> Result<Self, ParseError> {
        let mut lexer = Lexer::new(input);
        let mut tokens = Vec::new();
        while let Some(t) = lexer.next_token()? {
            tokens.push(t);
        }
        Ok(Parser {
            tokens,
            idx: 0,
            input_len: input.len(),
            _marker: std::marker::PhantomData,
        })
    }

    fn peek(&self) -> Option<&(Token, usize)> {
        self.tokens.get(self.idx)
    }

    fn bump(&mut self) -> Option<(Token, usize)> {
        let t = self.tokens.get(self.idx).cloned();
        if t.is_some() {
            self.idx += 1;
        }
        t
    }

    fn error_at(&self, pos: usize, message: impl Into<String>) -> ParseError {
        ParseError {
            message: message.into(),
            position: pos,
        }
    }

    fn error_eof(&self, message: impl Into<String>) -> ParseError {
        ParseError {
            message: message.into(),
            position: self.input_len,
        }
    }

    fn parse_expr(&mut self) -> Result<Expr, ParseError> {
        match self.bump() {
            None => Err(self.error_eof("unexpected end of input")),
            Some((Token::Int(v), _)) => Ok(Expr::Const(v)),
            Some((Token::Ident(name), pos)) => {
                if name == "Vec" || name.starts_with("Vec") || name == "pt" {
                    Err(self.error_at(pos, format!("keyword `{name}` used outside parentheses")))
                } else {
                    Ok(Expr::ct(name))
                }
            }
            Some((Token::RParen, pos)) => Err(self.error_at(pos, "unexpected `)`")),
            Some((Token::Op(op), pos)) => {
                Err(self.error_at(pos, format!("operator `{op}` used outside parentheses")))
            }
            Some((Token::LParen, pos)) => {
                let head = self
                    .bump()
                    .ok_or_else(|| self.error_eof("unexpected end of input after `(`"))?;
                let expr = match head {
                    (Token::Op(op), op_pos) => self.parse_operator_form(&op, op_pos)?,
                    (Token::Ident(name), name_pos) => self.parse_named_form(&name, name_pos)?,
                    (t, p) => {
                        return Err(self.error_at(p, format!("unexpected token {t:?} after `(`")))
                    }
                };
                match self.bump() {
                    Some((Token::RParen, _)) => Ok(expr),
                    Some((t, p)) => Err(self.error_at(p, format!("expected `)`, found {t:?}"))),
                    None => Err(self.error_at(pos, "unclosed `(`")),
                }
            }
        }
    }

    fn parse_operator_form(&mut self, op: &str, pos: usize) -> Result<Expr, ParseError> {
        match op {
            "+" | "*" => {
                let a = self.parse_expr()?;
                let b = self.parse_expr()?;
                let bin = if op == "+" { BinOp::Add } else { BinOp::Mul };
                Ok(Expr::Bin(bin, Box::new(a), Box::new(b)))
            }
            "-" => {
                let a = self.parse_expr()?;
                if matches!(self.peek(), Some((Token::RParen, _))) {
                    Ok(Expr::Neg(Box::new(a)))
                } else {
                    let b = self.parse_expr()?;
                    Ok(Expr::Bin(BinOp::Sub, Box::new(a), Box::new(b)))
                }
            }
            "<<" | ">>" => {
                let a = self.parse_expr()?;
                let step = match self.bump() {
                    Some((Token::Int(v), _)) => v,
                    Some((t, p)) => {
                        return Err(self
                            .error_at(p, format!("rotation step must be an integer, found {t:?}")))
                    }
                    None => return Err(self.error_eof("rotation step missing")),
                };
                let signed = if op == "<<" { step } else { -step };
                Ok(Expr::rot(a, signed))
            }
            other => Err(self.error_at(pos, format!("unknown operator `{other}`"))),
        }
    }

    fn parse_named_form(&mut self, name: &str, pos: usize) -> Result<Expr, ParseError> {
        match name {
            "pt" => match self.bump() {
                Some((Token::Ident(var), _)) => Ok(Expr::pt(var)),
                Some((t, p)) => {
                    Err(self.error_at(p, format!("`pt` expects an identifier, found {t:?}")))
                }
                None => Err(self.error_eof("`pt` expects an identifier")),
            },
            "Vec" => {
                let mut elems = Vec::new();
                while !matches!(self.peek(), Some((Token::RParen, _)) | None) {
                    elems.push(self.parse_expr()?);
                }
                if elems.is_empty() {
                    return Err(self.error_at(pos, "`Vec` requires at least one element"));
                }
                Ok(Expr::Vec(elems))
            }
            "VecAdd" | "VecSub" | "VecMul" => {
                let a = self.parse_expr()?;
                let b = self.parse_expr()?;
                let op = match name {
                    "VecAdd" => BinOp::Add,
                    "VecSub" => BinOp::Sub,
                    _ => BinOp::Mul,
                };
                Ok(Expr::VecBin(op, Box::new(a), Box::new(b)))
            }
            "VecNeg" => {
                let a = self.parse_expr()?;
                Ok(Expr::VecNeg(Box::new(a)))
            }
            other => Err(self.error_at(pos, format!("unknown form `{other}`"))),
        }
    }
}

/// Parses an IR expression from its s-expression syntax.
///
/// # Errors
///
/// Returns a [`ParseError`] describing the first syntactic problem found.
///
/// # Examples
///
/// ```
/// use chehab_ir::parse;
///
/// let e = parse("(VecAdd (Vec (+ a b) (* c d)) (Vec 1 2))")?;
/// assert_eq!(e.node_count(), 11);
/// # Ok::<(), chehab_ir::ParseError>(())
/// ```
pub fn parse(input: &str) -> Result<Expr, ParseError> {
    let mut p = Parser::new(input)?;
    let e = p.parse_expr()?;
    if let Some((t, pos)) = p.peek() {
        return Err(ParseError {
            message: format!("trailing input after expression: {t:?}"),
            position: *pos,
        });
    }
    Ok(e)
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Expr::CtVar(s) => write!(f, "{s}"),
            Expr::PtVar(s) => write!(f, "(pt {s})"),
            Expr::Const(v) => write!(f, "{v}"),
            Expr::Bin(op, a, b) => write!(f, "({} {a} {b})", op.token()),
            Expr::Neg(a) => write!(f, "(- {a})"),
            Expr::Vec(elems) => {
                write!(f, "(Vec")?;
                for e in elems {
                    write!(f, " {e}")?;
                }
                write!(f, ")")
            }
            Expr::VecBin(op, a, b) => write!(f, "({} {a} {b})", op.vector_token()),
            Expr::VecNeg(a) => write!(f, "(VecNeg {a})"),
            Expr::Rot(a, s) => {
                if *s >= 0 {
                    write!(f, "(<< {a} {s})")
                } else {
                    write!(f, "(>> {a} {})", -s)
                }
            }
        }
    }
}

impl std::str::FromStr for Expr {
    type Err = ParseError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        parse(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::Expr;

    #[test]
    fn parses_scalar_arithmetic() {
        let e = parse("(+ a (* b c))").unwrap();
        assert_eq!(
            e,
            Expr::add(Expr::ct("a"), Expr::mul(Expr::ct("b"), Expr::ct("c")))
        );
    }

    #[test]
    fn parses_unary_and_binary_minus() {
        assert_eq!(parse("(- a)").unwrap(), Expr::neg(Expr::ct("a")));
        assert_eq!(
            parse("(- a b)").unwrap(),
            Expr::sub(Expr::ct("a"), Expr::ct("b"))
        );
    }

    #[test]
    fn parses_negative_literals() {
        assert_eq!(
            parse("(* a -3)").unwrap(),
            Expr::mul(Expr::ct("a"), Expr::constant(-3))
        );
    }

    #[test]
    fn parses_vector_forms() {
        let e = parse("(VecMul (Vec a c) (Vec b d))").unwrap();
        assert_eq!(
            e,
            Expr::vec_mul(
                Expr::vec(vec![Expr::ct("a"), Expr::ct("c")]),
                Expr::vec(vec![Expr::ct("b"), Expr::ct("d")]),
            )
        );
    }

    #[test]
    fn parses_rotations_in_both_directions() {
        assert_eq!(
            parse("(<< (Vec a b) 1)").unwrap(),
            Expr::rot(Expr::vec(vec![Expr::ct("a"), Expr::ct("b")]), 1)
        );
        assert_eq!(
            parse("(>> (Vec a b) 2)").unwrap(),
            Expr::rot(Expr::vec(vec![Expr::ct("a"), Expr::ct("b")]), -2)
        );
    }

    #[test]
    fn parses_plaintext_vars() {
        assert_eq!(
            parse("(* (pt w) x)").unwrap(),
            Expr::mul(Expr::pt("w"), Expr::ct("x"))
        );
    }

    #[test]
    fn display_round_trips() {
        let sources = [
            "(+ a (* b c))",
            "(- x)",
            "(- x y)",
            "(Vec (+ a b) (* c d) (- f g))",
            "(VecAdd (VecMul (Vec a c) (Vec b d)) (<< (Vec e f) 2))",
            "(>> (Vec a b c d) 3)",
            "(* (pt alpha) (+ x_0 1))",
            "(* a -17)",
        ];
        for src in sources {
            let e = parse(src).unwrap();
            let printed = e.to_string();
            let reparsed = parse(&printed).unwrap();
            assert_eq!(e, reparsed, "round trip failed for {src}");
        }
    }

    #[test]
    fn rejects_malformed_input() {
        for bad in [
            "",
            "(",
            ")",
            "(+ a)",
            "(+ a b c)",
            "(Vec)",
            "(<< a b)",
            "(?? a b)",
            "(+ a b) extra",
        ] {
            assert!(parse(bad).is_err(), "expected parse error for `{bad}`");
        }
    }

    #[test]
    fn error_positions_point_into_input() {
        let err = parse("(+ a ?)").unwrap_err();
        assert!(err.position <= 7);
        assert!(!err.to_string().is_empty());
    }

    #[test]
    fn from_str_works() {
        let e: Expr = "(+ a b)".parse().unwrap();
        assert_eq!(e, Expr::add(Expr::ct("a"), Expr::ct("b")));
    }
}
