//! The CHEHAB intermediate representation.
//!
//! A program is a single [`Expr`] tree over scalar and vector operations.
//! Scalar inputs are either encrypted ([`Expr::CtVar`]) or plaintext
//! ([`Expr::PtVar`] / [`Expr::Const`]); the rewriting system packs scalar
//! computations into vector computations ([`Expr::Vec`], [`Expr::VecAdd`],
//! [`Expr::VecMul`], ...) and introduces slot rotations ([`Expr::Rot`]).
//!
//! Rotation semantics are *zero-fill shifts over the logical slot vector*: in
//! the BFV backend every logical vector occupies the first `k` slots of an
//! `n`-slot ciphertext whose remaining slots are zero, so a cyclic ciphertext
//! rotation behaves exactly like a shift that fills with zeros (for shift
//! amounts smaller than `n - k`, which always holds here since `n` is in the
//! thousands and logical vectors have at most a few hundred slots).

use crate::symbol::Symbol;
use serde::{Deserialize, Serialize};
use std::fmt;

/// The type of an IR expression: a scalar or a logical vector of a known
/// arity (number of live slots).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Ty {
    /// A single encrypted or plaintext value.
    Scalar,
    /// A packed vector occupying the first `arity` ciphertext slots.
    Vector(usize),
}

impl Ty {
    /// Number of live slots: 1 for scalars, the arity for vectors.
    pub fn slots(self) -> usize {
        match self {
            Ty::Scalar => 1,
            Ty::Vector(k) => k,
        }
    }

    /// Returns `true` if this is a vector type.
    pub fn is_vector(self) -> bool {
        matches!(self, Ty::Vector(_))
    }
}

impl fmt::Display for Ty {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Ty::Scalar => write!(f, "scalar"),
            Ty::Vector(k) => write!(f, "vector[{k}]"),
        }
    }
}

/// A scalar binary operator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum BinOp {
    /// Addition.
    Add,
    /// Subtraction.
    Sub,
    /// Multiplication.
    Mul,
}

impl BinOp {
    /// The s-expression spelling of the operator.
    pub fn token(self) -> &'static str {
        match self {
            BinOp::Add => "+",
            BinOp::Sub => "-",
            BinOp::Mul => "*",
        }
    }

    /// Vectorized counterpart of the operator (`VecAdd`, `VecSub`, `VecMul`).
    pub fn vector_token(self) -> &'static str {
        match self {
            BinOp::Add => "VecAdd",
            BinOp::Sub => "VecSub",
            BinOp::Mul => "VecMul",
        }
    }

    /// Identity element of the operation (used when padding non-isomorphic
    /// vector packs): 0 for add/sub, 1 for mul.
    pub fn identity(self) -> i64 {
        match self {
            BinOp::Add | BinOp::Sub => 0,
            BinOp::Mul => 1,
        }
    }

    /// All scalar binary operators.
    pub const ALL: [BinOp; 3] = [BinOp::Add, BinOp::Sub, BinOp::Mul];
}

/// An expression in the CHEHAB IR.
///
/// See the crate-level documentation for the slot semantics of vectors and
/// rotations (zero-fill shifts over zero-padded logical vectors).
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Expr {
    /// An encrypted scalar input.
    CtVar(Symbol),
    /// A plaintext (clear) scalar input.
    PtVar(Symbol),
    /// A plaintext integer literal.
    Const(i64),
    /// A scalar binary operation.
    Bin(BinOp, Box<Expr>, Box<Expr>),
    /// Scalar negation.
    Neg(Box<Expr>),
    /// Packs scalar subexpressions into the first `k` slots of a vector.
    Vec(Vec<Expr>),
    /// Element-wise binary operation on vectors.
    VecBin(BinOp, Box<Expr>, Box<Expr>),
    /// Element-wise negation of a vector.
    VecNeg(Box<Expr>),
    /// Slot rotation of a vector: positive steps shift left (`<<`), negative
    /// steps shift right (`>>`); vacated slots are filled with zero.
    Rot(Box<Expr>, i64),
}

impl Expr {
    // ----- convenience constructors ------------------------------------------------

    /// Creates an encrypted scalar variable.
    pub fn ct(name: impl Into<Symbol>) -> Expr {
        Expr::CtVar(name.into())
    }

    /// Creates a plaintext scalar variable.
    pub fn pt(name: impl Into<Symbol>) -> Expr {
        Expr::PtVar(name.into())
    }

    /// Creates an integer constant.
    pub fn constant(v: i64) -> Expr {
        Expr::Const(v)
    }

    /// `a + b` on scalars.
    #[allow(clippy::should_implement_trait)] // constructor named after the IR operator
    pub fn add(a: Expr, b: Expr) -> Expr {
        Expr::Bin(BinOp::Add, Box::new(a), Box::new(b))
    }

    /// `a - b` on scalars.
    #[allow(clippy::should_implement_trait)] // constructor named after the IR operator
    pub fn sub(a: Expr, b: Expr) -> Expr {
        Expr::Bin(BinOp::Sub, Box::new(a), Box::new(b))
    }

    /// `a * b` on scalars.
    #[allow(clippy::should_implement_trait)] // constructor named after the IR operator
    pub fn mul(a: Expr, b: Expr) -> Expr {
        Expr::Bin(BinOp::Mul, Box::new(a), Box::new(b))
    }

    /// `-a` on scalars.
    #[allow(clippy::should_implement_trait)] // constructor named after the IR operator
    pub fn neg(a: Expr) -> Expr {
        Expr::Neg(Box::new(a))
    }

    /// Packs scalars into a vector.
    pub fn vec(elems: Vec<Expr>) -> Expr {
        Expr::Vec(elems)
    }

    /// Element-wise `a + b` on vectors.
    pub fn vec_add(a: Expr, b: Expr) -> Expr {
        Expr::VecBin(BinOp::Add, Box::new(a), Box::new(b))
    }

    /// Element-wise `a - b` on vectors.
    pub fn vec_sub(a: Expr, b: Expr) -> Expr {
        Expr::VecBin(BinOp::Sub, Box::new(a), Box::new(b))
    }

    /// Element-wise `a * b` on vectors.
    pub fn vec_mul(a: Expr, b: Expr) -> Expr {
        Expr::VecBin(BinOp::Mul, Box::new(a), Box::new(b))
    }

    /// Element-wise negation.
    pub fn vec_neg(a: Expr) -> Expr {
        Expr::VecNeg(Box::new(a))
    }

    /// Rotates (shifts) the vector `a` left by `steps` slots (negative steps
    /// shift right), filling vacated slots with zero.
    pub fn rot(a: Expr, steps: i64) -> Expr {
        Expr::Rot(Box::new(a), steps)
    }

    // ----- structural queries -------------------------------------------------------

    /// Returns `true` for leaf nodes (variables and constants).
    pub fn is_leaf(&self) -> bool {
        matches!(self, Expr::CtVar(_) | Expr::PtVar(_) | Expr::Const(_))
    }

    /// Immutable access to the children of this node, in order.
    pub fn children(&self) -> Vec<&Expr> {
        match self {
            Expr::CtVar(_) | Expr::PtVar(_) | Expr::Const(_) => Vec::new(),
            Expr::Bin(_, a, b) | Expr::VecBin(_, a, b) => vec![a, b],
            Expr::Neg(a) | Expr::VecNeg(a) | Expr::Rot(a, _) => vec![a],
            Expr::Vec(elems) => elems.iter().collect(),
        }
    }

    /// Number of direct children.
    pub fn child_count(&self) -> usize {
        match self {
            Expr::CtVar(_) | Expr::PtVar(_) | Expr::Const(_) => 0,
            Expr::Bin(..) | Expr::VecBin(..) => 2,
            Expr::Neg(_) | Expr::VecNeg(_) | Expr::Rot(..) => 1,
            Expr::Vec(elems) => elems.len(),
        }
    }

    /// Returns the `i`-th child, if any.
    pub fn child(&self, i: usize) -> Option<&Expr> {
        match self {
            Expr::CtVar(_) | Expr::PtVar(_) | Expr::Const(_) => None,
            Expr::Bin(_, a, b) | Expr::VecBin(_, a, b) => match i {
                0 => Some(a),
                1 => Some(b),
                _ => None,
            },
            Expr::Neg(a) | Expr::VecNeg(a) | Expr::Rot(a, _) => (i == 0).then_some(a.as_ref()),
            Expr::Vec(elems) => elems.get(i),
        }
    }

    /// Rebuilds this node with new children. The number of children must
    /// match [`Expr::child_count`].
    ///
    /// # Panics
    ///
    /// Panics if `children.len() != self.child_count()`.
    pub fn with_children(&self, mut children: Vec<Expr>) -> Expr {
        assert_eq!(
            children.len(),
            self.child_count(),
            "with_children: wrong number of children for {self:?}"
        );
        match self {
            Expr::CtVar(_) | Expr::PtVar(_) | Expr::Const(_) => self.clone(),
            Expr::Bin(op, _, _) => {
                let b = children.pop().expect("two children");
                let a = children.pop().expect("two children");
                Expr::Bin(*op, Box::new(a), Box::new(b))
            }
            Expr::VecBin(op, _, _) => {
                let b = children.pop().expect("two children");
                let a = children.pop().expect("two children");
                Expr::VecBin(*op, Box::new(a), Box::new(b))
            }
            Expr::Neg(_) => Expr::Neg(Box::new(children.pop().expect("one child"))),
            Expr::VecNeg(_) => Expr::VecNeg(Box::new(children.pop().expect("one child"))),
            Expr::Rot(_, s) => Expr::Rot(Box::new(children.pop().expect("one child")), *s),
            Expr::Vec(_) => Expr::Vec(children),
        }
    }

    /// Total number of nodes in the expression tree.
    pub fn node_count(&self) -> usize {
        1 + self
            .children()
            .iter()
            .map(|c| c.node_count())
            .sum::<usize>()
    }

    /// Visits every node in preorder (node before its children).
    pub fn for_each_preorder<'a>(&'a self, f: &mut impl FnMut(&'a Expr)) {
        f(self);
        for c in self.children() {
            c.for_each_preorder(f);
        }
    }

    /// Returns all nodes in preorder.
    pub fn preorder(&self) -> Vec<&Expr> {
        let mut out = Vec::with_capacity(16);
        self.for_each_preorder(&mut |e| out.push(e));
        out
    }

    /// Returns the subexpression at `path` (a sequence of child indices from
    /// the root), or `None` if the path is invalid.
    pub fn at_path(&self, path: &[usize]) -> Option<&Expr> {
        let mut cur = self;
        for &i in path {
            cur = cur.child(i)?;
        }
        Some(cur)
    }

    /// Returns a new expression with the subexpression at `path` replaced by
    /// `replacement`, or `None` if the path is invalid.
    pub fn replace_at(&self, path: &[usize], replacement: Expr) -> Option<Expr> {
        match path.split_first() {
            None => Some(replacement),
            Some((&i, rest)) => {
                let child = self.child(i)?;
                let new_child = child.replace_at(rest, replacement)?;
                let mut children: Vec<Expr> = self.children().into_iter().cloned().collect();
                children[i] = new_child;
                Some(self.with_children(children))
            }
        }
    }

    /// Enumerates the paths of all nodes in preorder, pairing each path with
    /// the node it addresses.
    pub fn paths(&self) -> Vec<(Vec<usize>, &Expr)> {
        fn go<'a>(e: &'a Expr, prefix: &mut Vec<usize>, out: &mut Vec<(Vec<usize>, &'a Expr)>) {
            out.push((prefix.clone(), e));
            for (i, c) in e.children().into_iter().enumerate() {
                prefix.push(i);
                go(c, prefix, out);
                prefix.pop();
            }
        }
        let mut out = Vec::with_capacity(self.node_count());
        go(self, &mut Vec::new(), &mut out);
        out
    }

    /// The set of distinct variable names (ciphertext and plaintext) used by
    /// the expression, in order of first occurrence.
    pub fn variables(&self) -> Vec<Symbol> {
        let mut seen = std::collections::HashSet::new();
        let mut out = Vec::new();
        self.for_each_preorder(&mut |e| {
            if let Expr::CtVar(s) | Expr::PtVar(s) = e {
                if seen.insert(s.clone()) {
                    out.push(s.clone());
                }
            }
        });
        out
    }

    /// Returns `true` if any subexpression is or contains an encrypted input.
    ///
    /// Subexpressions with no ciphertext inputs are plaintext-only and can be
    /// folded by the compiler or multiplied into ciphertexts as ct-pt
    /// operations.
    pub fn contains_ciphertext(&self) -> bool {
        let mut found = false;
        self.for_each_preorder(&mut |e| {
            if matches!(e, Expr::CtVar(_)) {
                found = true;
            }
        });
        found
    }

    // ----- typing -------------------------------------------------------------------

    /// Infers the type of the expression.
    ///
    /// Element-wise vector operations accept operands of different arities;
    /// the shorter operand is implicitly zero-padded (which is exactly what
    /// the zero-padded ciphertext representation does), so the result arity
    /// is the maximum of the operand arities.
    ///
    /// # Errors
    ///
    /// Returns a [`TypeError`] if a scalar operator is applied to a vector,
    /// a vector operator to a scalar, a rotation to a scalar, or a `Vec`
    /// constructor contains a non-scalar element.
    pub fn ty(&self) -> Result<Ty, TypeError> {
        match self {
            Expr::CtVar(_) | Expr::PtVar(_) | Expr::Const(_) => Ok(Ty::Scalar),
            Expr::Bin(op, a, b) => {
                let (ta, tb) = (a.ty()?, b.ty()?);
                if ta != Ty::Scalar || tb != Ty::Scalar {
                    return Err(TypeError::ScalarOpOnVector { op: *op });
                }
                Ok(Ty::Scalar)
            }
            Expr::Neg(a) => {
                if a.ty()? != Ty::Scalar {
                    return Err(TypeError::ScalarNegOnVector);
                }
                Ok(Ty::Scalar)
            }
            Expr::Vec(elems) => {
                if elems.is_empty() {
                    return Err(TypeError::EmptyVec);
                }
                for e in elems {
                    if e.ty()? != Ty::Scalar {
                        return Err(TypeError::NestedVector);
                    }
                }
                Ok(Ty::Vector(elems.len()))
            }
            Expr::VecBin(op, a, b) => {
                let (ta, tb) = (a.ty()?, b.ty()?);
                match (ta, tb) {
                    (Ty::Vector(x), Ty::Vector(y)) => Ok(Ty::Vector(x.max(y))),
                    _ => Err(TypeError::VectorOpOnScalar { op: *op }),
                }
            }
            Expr::VecNeg(a) => match a.ty()? {
                Ty::Vector(k) => Ok(Ty::Vector(k)),
                Ty::Scalar => Err(TypeError::VectorNegOnScalar),
            },
            Expr::Rot(a, _) => match a.ty()? {
                Ty::Vector(k) => Ok(Ty::Vector(k)),
                Ty::Scalar => Err(TypeError::RotationOnScalar),
            },
        }
    }

    /// Returns `true` if the expression type-checks.
    pub fn is_well_typed(&self) -> bool {
        self.ty().is_ok()
    }
}

/// Errors produced by [`Expr::ty`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TypeError {
    /// A scalar binary operator was applied to a vector operand.
    ScalarOpOnVector {
        /// The offending operator.
        op: BinOp,
    },
    /// Scalar negation was applied to a vector operand.
    ScalarNegOnVector,
    /// A vector binary operator was applied to a scalar operand.
    VectorOpOnScalar {
        /// The offending operator.
        op: BinOp,
    },
    /// Vector negation was applied to a scalar operand.
    VectorNegOnScalar,
    /// A rotation was applied to a scalar operand.
    RotationOnScalar,
    /// A `Vec` constructor with no elements.
    EmptyVec,
    /// A `Vec` constructor containing a vector element.
    NestedVector,
}

impl fmt::Display for TypeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TypeError::ScalarOpOnVector { op } => {
                write!(
                    f,
                    "scalar operator `{}` applied to a vector operand",
                    op.token()
                )
            }
            TypeError::ScalarNegOnVector => {
                write!(f, "scalar negation applied to a vector operand")
            }
            TypeError::VectorOpOnScalar { op } => {
                write!(
                    f,
                    "vector operator `{}` applied to a scalar operand",
                    op.vector_token()
                )
            }
            TypeError::VectorNegOnScalar => {
                write!(f, "vector negation applied to a scalar operand")
            }
            TypeError::RotationOnScalar => write!(f, "rotation applied to a scalar operand"),
            TypeError::EmptyVec => write!(f, "empty `Vec` constructor"),
            TypeError::NestedVector => write!(f, "`Vec` constructor contains a vector element"),
        }
    }
}

impl std::error::Error for TypeError {}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Expr {
        // (VecAdd (Vec (+ a b) (* c d)) (Vec 1 2))
        Expr::vec_add(
            Expr::vec(vec![
                Expr::add(Expr::ct("a"), Expr::ct("b")),
                Expr::mul(Expr::ct("c"), Expr::ct("d")),
            ]),
            Expr::vec(vec![Expr::constant(1), Expr::constant(2)]),
        )
    }

    #[test]
    fn node_count_counts_every_node() {
        assert_eq!(sample().node_count(), 11);
        assert_eq!(Expr::ct("x").node_count(), 1);
    }

    #[test]
    fn children_and_child_agree() {
        let e = sample();
        assert_eq!(e.child_count(), 2);
        assert_eq!(e.children().len(), 2);
        assert_eq!(e.child(0), Some(e.children()[0]));
        assert_eq!(e.child(2), None);
    }

    #[test]
    fn typing_of_sample() {
        assert_eq!(sample().ty().unwrap(), Ty::Vector(2));
        assert_eq!(Expr::ct("x").ty().unwrap(), Ty::Scalar);
    }

    #[test]
    fn mixed_arity_vector_ops_take_max() {
        let e = Expr::vec_mul(
            Expr::vec(vec![Expr::ct("a"), Expr::ct("b"), Expr::ct("c")]),
            Expr::vec(vec![Expr::ct("d")]),
        );
        assert_eq!(e.ty().unwrap(), Ty::Vector(3));
    }

    #[test]
    fn type_errors_are_detected() {
        let bad = Expr::add(Expr::vec(vec![Expr::ct("a")]), Expr::ct("b"));
        assert!(matches!(bad.ty(), Err(TypeError::ScalarOpOnVector { .. })));

        let bad = Expr::vec_add(Expr::ct("a"), Expr::ct("b"));
        assert!(matches!(bad.ty(), Err(TypeError::VectorOpOnScalar { .. })));

        let bad = Expr::rot(Expr::ct("a"), 1);
        assert_eq!(bad.ty(), Err(TypeError::RotationOnScalar));

        let bad = Expr::vec(vec![]);
        assert_eq!(bad.ty(), Err(TypeError::EmptyVec));

        let bad = Expr::vec(vec![Expr::vec(vec![Expr::ct("a")])]);
        assert_eq!(bad.ty(), Err(TypeError::NestedVector));
    }

    #[test]
    fn path_addressing_round_trips() {
        let e = sample();
        for (path, node) in e.paths() {
            assert_eq!(e.at_path(&path), Some(node));
        }
        // Path [0, 1] addresses (* c d).
        let sub = e.at_path(&[0, 1]).unwrap();
        assert_eq!(*sub, Expr::mul(Expr::ct("c"), Expr::ct("d")));
    }

    #[test]
    fn replace_at_rebuilds_only_the_target() {
        let e = sample();
        let replaced = e.replace_at(&[0, 1], Expr::ct("z")).unwrap();
        assert_eq!(
            replaced.at_path(&[0, 1]).unwrap(),
            &Expr::ct("z"),
            "target replaced"
        );
        assert_eq!(
            replaced.at_path(&[0, 0]).unwrap(),
            e.at_path(&[0, 0]).unwrap()
        );
        assert!(e.replace_at(&[5], Expr::ct("z")).is_none());
    }

    #[test]
    fn with_children_preserves_operator() {
        let e = Expr::add(Expr::ct("a"), Expr::ct("b"));
        let swapped = e.with_children(vec![Expr::ct("b"), Expr::ct("a")]);
        assert_eq!(swapped, Expr::add(Expr::ct("b"), Expr::ct("a")));
    }

    #[test]
    #[should_panic(expected = "wrong number of children")]
    fn with_children_panics_on_arity_mismatch() {
        let e = Expr::add(Expr::ct("a"), Expr::ct("b"));
        let _ = e.with_children(vec![Expr::ct("a")]);
    }

    #[test]
    fn variables_in_first_occurrence_order() {
        let e = sample();
        let names: Vec<_> = e.variables().iter().map(|s| s.to_string()).collect();
        assert_eq!(names, vec!["a", "b", "c", "d"]);
    }

    #[test]
    fn ciphertext_detection() {
        assert!(sample().contains_ciphertext());
        let pt_only = Expr::mul(Expr::pt("w"), Expr::constant(3));
        assert!(!pt_only.contains_ciphertext());
    }

    #[test]
    fn preorder_visits_root_first() {
        let e = sample();
        let order = e.preorder();
        assert_eq!(order[0], &e);
        assert_eq!(order.len(), e.node_count());
    }
}
