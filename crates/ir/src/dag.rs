//! Hash-consed DAG view of an expression.
//!
//! The expression tree is convenient for rewriting, but circuits are DAGs:
//! repeated subexpressions are computed once. Converting to a [`CircuitDag`]
//! performs common-subexpression elimination by construction and is the
//! representation used by code generation and by analyses that must count
//! each distinct computation once.

use crate::expr::{BinOp, Expr};
use crate::symbol::Symbol;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Identifier of a node inside a [`CircuitDag`].
pub type NodeId = usize;

/// A single operation (or input) in the circuit DAG.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DagNode {
    /// Encrypted scalar input.
    CtVar(Symbol),
    /// Plaintext scalar input.
    PtVar(Symbol),
    /// Plaintext constant.
    Const(i64),
    /// Scalar binary operation.
    Bin(BinOp, NodeId, NodeId),
    /// Scalar negation.
    Neg(NodeId),
    /// Vector constructor over scalar nodes.
    Vec(Vec<NodeId>),
    /// Element-wise vector binary operation.
    VecBin(BinOp, NodeId, NodeId),
    /// Element-wise vector negation.
    VecNeg(NodeId),
    /// Slot rotation.
    Rot(NodeId, i64),
}

impl DagNode {
    /// Ids of this node's operands.
    pub fn operands(&self) -> Vec<NodeId> {
        match self {
            DagNode::CtVar(_) | DagNode::PtVar(_) | DagNode::Const(_) => Vec::new(),
            DagNode::Bin(_, a, b) | DagNode::VecBin(_, a, b) => vec![*a, *b],
            DagNode::Neg(a) | DagNode::VecNeg(a) | DagNode::Rot(a, _) => vec![*a],
            DagNode::Vec(elems) => elems.clone(),
        }
    }

    /// Returns `true` for input/constant nodes.
    pub fn is_leaf(&self) -> bool {
        matches!(
            self,
            DagNode::CtVar(_) | DagNode::PtVar(_) | DagNode::Const(_)
        )
    }
}

/// A hash-consed circuit DAG with a single output node.
///
/// Node ids are topologically ordered: every operand id is smaller than the
/// id of the node that uses it, so a single forward pass evaluates the
/// circuit.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CircuitDag {
    nodes: Vec<DagNode>,
    output: NodeId,
}

impl CircuitDag {
    /// Builds the DAG of an expression, sharing structurally identical
    /// subexpressions (common-subexpression elimination).
    pub fn from_expr(expr: &Expr) -> Self {
        let mut builder = Builder {
            nodes: Vec::new(),
            interned: HashMap::new(),
        };
        let output = builder.intern_expr(expr);
        CircuitDag {
            nodes: builder.nodes,
            output,
        }
    }

    /// The nodes of the DAG in topological order.
    pub fn nodes(&self) -> &[DagNode] {
        &self.nodes
    }

    /// The id of the output node.
    pub fn output(&self) -> NodeId {
        self.output
    }

    /// Number of nodes (after sharing).
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Returns `true` if the DAG has no nodes (never the case for DAGs built
    /// from an expression).
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Number of non-leaf (operation) nodes after sharing.
    pub fn operation_count(&self) -> usize {
        self.nodes
            .iter()
            .filter(|n| !n.is_leaf() && !matches!(n, DagNode::Vec(_)))
            .count()
    }

    /// Number of uses of each node (fan-out). Nodes with fan-out greater than
    /// one are shared subexpressions.
    pub fn use_counts(&self) -> Vec<usize> {
        let mut uses = vec![0usize; self.nodes.len()];
        for node in &self.nodes {
            for op in node.operands() {
                uses[op] += 1;
            }
        }
        uses[self.output] += 1;
        uses
    }

    /// Removes nodes not reachable from the output (dead-code elimination)
    /// and returns the compacted DAG.
    pub fn eliminate_dead_code(&self) -> CircuitDag {
        let mut live = vec![false; self.nodes.len()];
        let mut stack = vec![self.output];
        while let Some(id) = stack.pop() {
            if !live[id] {
                live[id] = true;
                stack.extend(self.nodes[id].operands());
            }
        }
        let mut remap = vec![usize::MAX; self.nodes.len()];
        let mut nodes = Vec::new();
        for (id, node) in self.nodes.iter().enumerate() {
            if live[id] {
                let remapped = match node {
                    DagNode::Bin(op, a, b) => DagNode::Bin(*op, remap[*a], remap[*b]),
                    DagNode::VecBin(op, a, b) => DagNode::VecBin(*op, remap[*a], remap[*b]),
                    DagNode::Neg(a) => DagNode::Neg(remap[*a]),
                    DagNode::VecNeg(a) => DagNode::VecNeg(remap[*a]),
                    DagNode::Rot(a, s) => DagNode::Rot(remap[*a], *s),
                    DagNode::Vec(elems) => DagNode::Vec(elems.iter().map(|e| remap[*e]).collect()),
                    leaf => leaf.clone(),
                };
                remap[id] = nodes.len();
                nodes.push(remapped);
            }
        }
        CircuitDag {
            nodes,
            output: remap[self.output],
        }
    }

    /// Per-node circuit depth (operation nodes add one; `Vec` packing does
    /// not), indexed by node id.
    pub fn depths(&self) -> Vec<usize> {
        let mut depth = vec![0usize; self.nodes.len()];
        for (id, node) in self.nodes.iter().enumerate() {
            let child_max = node
                .operands()
                .into_iter()
                .map(|o| depth[o])
                .max()
                .unwrap_or(0);
            let adds = !node.is_leaf() && !matches!(node, DagNode::Vec(_));
            depth[id] = child_max + usize::from(adds);
        }
        depth
    }

    /// Circuit depth of the whole DAG.
    pub fn depth(&self) -> usize {
        self.depths()[self.output]
    }
}

struct Builder {
    nodes: Vec<DagNode>,
    interned: HashMap<DagNode, NodeId>,
}

impl Builder {
    fn intern(&mut self, node: DagNode) -> NodeId {
        if let Some(&id) = self.interned.get(&node) {
            return id;
        }
        let id = self.nodes.len();
        self.nodes.push(node.clone());
        self.interned.insert(node, id);
        id
    }

    fn intern_expr(&mut self, expr: &Expr) -> NodeId {
        let node = match expr {
            Expr::CtVar(s) => DagNode::CtVar(s.clone()),
            Expr::PtVar(s) => DagNode::PtVar(s.clone()),
            Expr::Const(v) => DagNode::Const(*v),
            Expr::Bin(op, a, b) => {
                let (a, b) = (self.intern_expr(a), self.intern_expr(b));
                DagNode::Bin(*op, a, b)
            }
            Expr::Neg(a) => {
                let a = self.intern_expr(a);
                DagNode::Neg(a)
            }
            Expr::Vec(elems) => {
                let ids = elems.iter().map(|e| self.intern_expr(e)).collect();
                DagNode::Vec(ids)
            }
            Expr::VecBin(op, a, b) => {
                let (a, b) = (self.intern_expr(a), self.intern_expr(b));
                DagNode::VecBin(*op, a, b)
            }
            Expr::VecNeg(a) => {
                let a = self.intern_expr(a);
                DagNode::VecNeg(a)
            }
            Expr::Rot(a, s) => {
                let a = self.intern_expr(a);
                DagNode::Rot(a, *s)
            }
        };
        self.intern(node)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    #[test]
    fn shared_subexpressions_are_interned_once() {
        // (v3*v4) appears twice in the motivating example's left factor.
        let e = parse("(+ (* (* v1 v2) (* v3 v4)) (* (* v3 v4) (* v5 v6)))").unwrap();
        let dag = CircuitDag::from_expr(&e);
        // Tree has 9 operation nodes, but (* v3 v4) is shared: 8 distinct operations.
        assert_eq!(dag.operation_count(), 6);
        let shared = dag
            .use_counts()
            .iter()
            .zip(dag.nodes())
            .filter(|(uses, node)| **uses > 1 && !node.is_leaf())
            .count();
        assert_eq!(shared, 1, "exactly one shared operation node");
    }

    #[test]
    fn topological_order_holds() {
        let e = parse("(VecAdd (VecMul (Vec a b) (Vec c d)) (<< (VecMul (Vec a b) (Vec c d)) 1))")
            .unwrap();
        let dag = CircuitDag::from_expr(&e);
        for (id, node) in dag.nodes().iter().enumerate() {
            for op in node.operands() {
                assert!(op < id, "operand {op} of node {id} must come first");
            }
        }
    }

    #[test]
    fn depth_matches_tree_depth_without_sharing() {
        let e = parse("(* (+ a b) (* c d))").unwrap();
        let dag = CircuitDag::from_expr(&e);
        assert_eq!(dag.depth(), crate::analysis::circuit_depth(&e));
    }

    #[test]
    fn dead_code_elimination_is_a_no_op_for_reachable_dags() {
        let e = parse("(+ (* a b) c)").unwrap();
        let dag = CircuitDag::from_expr(&e);
        let cleaned = dag.eliminate_dead_code();
        assert_eq!(dag.len(), cleaned.len());
        assert_eq!(cleaned.nodes()[cleaned.output()], dag.nodes()[dag.output()]);
    }

    #[test]
    fn leaves_are_shared() {
        let e = parse("(* a a)").unwrap();
        let dag = CircuitDag::from_expr(&e);
        assert_eq!(dag.len(), 2, "one leaf plus one multiply");
    }
}
