//! Program tokenization for the learning stack.
//!
//! Two tokenizers are provided:
//!
//! * **ICI** (*Identifier and Constant Invariant*, Section 5.1): a single
//!   linear pass that renames the first distinct variable to `v0`, the second
//!   to `v1`, ..., maps constants other than the semantically special `0`/`1`
//!   to `c0`, `c1`, ..., and keeps a small fixed vocabulary for operators and
//!   parentheses. Two alpha-equivalent programs produce identical token
//!   sequences, which is also what the dataset pipeline uses for
//!   deduplication.
//! * **BPE** (byte-pair encoding): the classical learned subword tokenizer the
//!   paper compares against in the tokenization ablation (Figure 10).

use crate::expr::{BinOp, Expr};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Special token: sequence padding.
pub const PAD_TOKEN: &str = "<pad>";
/// Special token: classification summary slot prepended to every sequence.
pub const CLS_TOKEN: &str = "<cls>";
/// Special token: out-of-vocabulary fallback.
pub const UNK_TOKEN: &str = "<unk>";

/// Maximum number of distinct variables the ICI vocabulary reserves ids for.
pub const MAX_ICI_VARIABLES: usize = 96;
/// Maximum number of distinct (non-0/1) constants the ICI vocabulary reserves ids for.
pub const MAX_ICI_CONSTANTS: usize = 32;

/// Produces the ICI token sequence of an expression (without the `CLS`
/// prefix).
///
/// # Examples
///
/// ```
/// use chehab_ir::{parse, ici_tokens};
///
/// let a = ici_tokens(&parse("(+ x (* y z))").unwrap());
/// let b = ici_tokens(&parse("(+ a (* b c))").unwrap());
/// assert_eq!(a, b, "alpha-equivalent programs tokenize identically");
/// # Ok::<(), chehab_ir::ParseError>(())
/// ```
pub fn ici_tokens(expr: &Expr) -> Vec<String> {
    let mut vars: HashMap<String, usize> = HashMap::new();
    let mut consts: HashMap<i64, usize> = HashMap::new();
    let mut out = Vec::with_capacity(expr.node_count() * 2);
    ici_walk(expr, &mut vars, &mut consts, &mut out);
    out
}

fn ici_walk(
    expr: &Expr,
    vars: &mut HashMap<String, usize>,
    consts: &mut HashMap<i64, usize>,
    out: &mut Vec<String>,
) {
    match expr {
        Expr::CtVar(s) | Expr::PtVar(s) => {
            let next = vars.len();
            let idx = *vars.entry(s.as_str().to_string()).or_insert(next);
            if matches!(expr, Expr::PtVar(_)) {
                out.push("pt".into());
            }
            out.push(format!("v{idx}"));
        }
        Expr::Const(v) => {
            if *v == 0 || *v == 1 {
                out.push(v.to_string());
            } else {
                let next = consts.len();
                let idx = *consts.entry(*v).or_insert(next);
                out.push(format!("c{idx}"));
            }
        }
        Expr::Bin(op, a, b) => {
            out.push("(".into());
            out.push(op.token().into());
            ici_walk(a, vars, consts, out);
            ici_walk(b, vars, consts, out);
            out.push(")".into());
        }
        Expr::Neg(a) => {
            out.push("(".into());
            out.push("-".into());
            ici_walk(a, vars, consts, out);
            out.push(")".into());
        }
        Expr::Vec(elems) => {
            out.push("(".into());
            out.push("Vec".into());
            for e in elems {
                ici_walk(e, vars, consts, out);
            }
            out.push(")".into());
        }
        Expr::VecBin(op, a, b) => {
            out.push("(".into());
            out.push(op.vector_token().into());
            ici_walk(a, vars, consts, out);
            ici_walk(b, vars, consts, out);
            out.push(")".into());
        }
        Expr::VecNeg(a) => {
            out.push("(".into());
            out.push("VecNeg".into());
            ici_walk(a, vars, consts, out);
            out.push(")".into());
        }
        Expr::Rot(a, s) => {
            out.push("(".into());
            out.push(if *s >= 0 { "<<" } else { ">>" }.into());
            ici_walk(a, vars, consts, out);
            out.push(format!("rot{}", s.unsigned_abs()));
            out.push(")".into());
        }
    }
}

/// The ICI canonical form of an expression: the token sequence joined with
/// spaces. Alpha-equivalent programs share the same canonical form, which the
/// dataset pipeline uses for deduplication and benchmark exclusion.
pub fn canonical_form(expr: &Expr) -> String {
    ici_tokens(expr).join(" ")
}

/// A fixed mapping from token strings to integer ids for the embedding layer.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Vocabulary {
    token_to_id: HashMap<String, usize>,
    id_to_token: Vec<String>,
}

impl Vocabulary {
    /// Builds the ICI vocabulary: special tokens, structural tokens,
    /// operators, rotation steps (bucketed), `v0..`, and `c0..`.
    pub fn ici() -> Self {
        let mut tokens: Vec<String> = vec![
            PAD_TOKEN.into(),
            CLS_TOKEN.into(),
            UNK_TOKEN.into(),
            "(".into(),
            ")".into(),
        ];
        for op in BinOp::ALL {
            tokens.push(op.token().into());
            tokens.push(op.vector_token().into());
        }
        for t in ["Vec", "VecNeg", "<<", ">>", "pt", "0", "1"] {
            tokens.push(t.into());
        }
        // Rotation step magnitudes are bucketed by powers of two up to 4096.
        let mut step = 1usize;
        while step <= 4096 {
            tokens.push(format!("rot{step}"));
            step *= 2;
        }
        for i in 0..MAX_ICI_VARIABLES {
            tokens.push(format!("v{i}"));
        }
        for i in 0..MAX_ICI_CONSTANTS {
            tokens.push(format!("c{i}"));
        }
        Self::from_tokens(tokens)
    }

    /// Builds a vocabulary from an explicit token list (first occurrence
    /// wins; duplicates are ignored).
    pub fn from_tokens(tokens: impl IntoIterator<Item = String>) -> Self {
        let mut token_to_id = HashMap::new();
        let mut id_to_token = Vec::new();
        for t in tokens {
            if !token_to_id.contains_key(&t) {
                token_to_id.insert(t.clone(), id_to_token.len());
                id_to_token.push(t);
            }
        }
        Vocabulary {
            token_to_id,
            id_to_token,
        }
    }

    /// Number of tokens in the vocabulary.
    pub fn len(&self) -> usize {
        self.id_to_token.len()
    }

    /// Returns `true` if the vocabulary is empty.
    pub fn is_empty(&self) -> bool {
        self.id_to_token.is_empty()
    }

    /// Id of a token, falling back to `<unk>`.
    pub fn id(&self, token: &str) -> usize {
        self.token_to_id
            .get(token)
            .copied()
            .unwrap_or_else(|| self.token_to_id[UNK_TOKEN])
    }

    /// Token string for an id.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn token(&self, id: usize) -> &str {
        &self.id_to_token[id]
    }

    /// Id of the padding token.
    pub fn pad_id(&self) -> usize {
        self.token_to_id[PAD_TOKEN]
    }

    /// Id of the `CLS` token.
    pub fn cls_id(&self) -> usize {
        self.token_to_id[CLS_TOKEN]
    }

    /// Encodes a token sequence into ids, prepending `CLS` and truncating or
    /// padding to `max_len`.
    pub fn encode(&self, tokens: &[String], max_len: usize) -> Vec<usize> {
        let mut ids = Vec::with_capacity(max_len);
        ids.push(self.cls_id());
        for t in tokens {
            if ids.len() >= max_len {
                break;
            }
            // Large rotation magnitudes map to their power-of-two bucket.
            if let Some(rest) = t.strip_prefix("rot") {
                if !self.token_to_id.contains_key(t.as_str()) {
                    if let Ok(step) = rest.parse::<u64>() {
                        let bucket = step.next_power_of_two().min(4096);
                        ids.push(self.id(&format!("rot{bucket}")));
                        continue;
                    }
                }
            }
            ids.push(self.id(t));
        }
        while ids.len() < max_len {
            ids.push(self.pad_id());
        }
        ids
    }

    /// Encodes an expression directly (ICI tokens, `CLS` prefix, padding).
    pub fn encode_expr(&self, expr: &Expr, max_len: usize) -> Vec<usize> {
        self.encode(&ici_tokens(expr), max_len)
    }
}

// ---------------------------------------------------------------------------
// Byte-pair encoding baseline
// ---------------------------------------------------------------------------

/// A classical byte-pair-encoding tokenizer trained on raw IR text, used as
/// the baseline in the tokenization ablation.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BpeTokenizer {
    merges: Vec<(String, String)>,
    vocab: Vec<String>,
}

impl BpeTokenizer {
    /// Trains a BPE tokenizer on a corpus of IR texts until the vocabulary
    /// reaches `vocab_size` (or no more pairs can be merged).
    pub fn train(corpus: &[String], vocab_size: usize) -> Self {
        // Word = whitespace-separated chunk, represented as a list of symbols.
        let mut words: Vec<(Vec<String>, usize)> = {
            let mut counts: HashMap<Vec<String>, usize> = HashMap::new();
            for text in corpus {
                for word in text.split_whitespace() {
                    let symbols: Vec<String> = word.chars().map(|c| c.to_string()).collect();
                    *counts.entry(symbols).or_insert(0) += 1;
                }
            }
            counts.into_iter().collect()
        };

        let mut vocab: Vec<String> = {
            let mut chars: Vec<String> = words
                .iter()
                .flat_map(|(w, _)| w.iter().cloned())
                .collect::<std::collections::BTreeSet<_>>()
                .into_iter()
                .collect();
            let mut v = vec![
                PAD_TOKEN.to_string(),
                CLS_TOKEN.to_string(),
                UNK_TOKEN.to_string(),
            ];
            v.append(&mut chars);
            v
        };

        let mut merges = Vec::new();
        while vocab.len() < vocab_size {
            // Count adjacent pairs.
            let mut pair_counts: HashMap<(String, String), usize> = HashMap::new();
            for (word, count) in &words {
                for pair in word.windows(2) {
                    *pair_counts
                        .entry((pair[0].clone(), pair[1].clone()))
                        .or_insert(0) += count;
                }
            }
            let Some((best_pair, best_count)) = pair_counts
                .into_iter()
                .max_by_key(|((a, b), c)| (*c, std::cmp::Reverse((a.clone(), b.clone()))))
            else {
                break;
            };
            if best_count < 2 {
                break;
            }
            let merged = format!("{}{}", best_pair.0, best_pair.1);
            vocab.push(merged.clone());
            merges.push(best_pair.clone());
            // Apply the merge to every word.
            for (word, _) in &mut words {
                let mut i = 0;
                while i + 1 < word.len() {
                    if word[i] == best_pair.0 && word[i + 1] == best_pair.1 {
                        word[i] = merged.clone();
                        word.remove(i + 1);
                    } else {
                        i += 1;
                    }
                }
            }
        }
        BpeTokenizer { merges, vocab }
    }

    /// Number of tokens in the learned vocabulary.
    pub fn vocab_size(&self) -> usize {
        self.vocab.len()
    }

    /// Number of learned merge rules.
    pub fn merge_count(&self) -> usize {
        self.merges.len()
    }

    /// Tokenizes a text by splitting on whitespace and greedily applying the
    /// learned merges within each word.
    pub fn tokenize(&self, text: &str) -> Vec<String> {
        let mut out = Vec::new();
        for word in text.split_whitespace() {
            let mut symbols: Vec<String> = word.chars().map(|c| c.to_string()).collect();
            for (a, b) in &self.merges {
                let mut i = 0;
                while i + 1 < symbols.len() {
                    if &symbols[i] == a && &symbols[i + 1] == b {
                        symbols[i] = format!("{a}{b}");
                        symbols.remove(i + 1);
                    } else {
                        i += 1;
                    }
                }
            }
            out.append(&mut symbols);
        }
        out
    }

    /// Tokenizes the textual form of an IR expression.
    pub fn tokenize_expr(&self, expr: &Expr) -> Vec<String> {
        self.tokenize(&expr.to_string())
    }

    /// Builds the vocabulary mapping for the learned tokens.
    pub fn vocabulary(&self) -> Vocabulary {
        Vocabulary::from_tokens(self.vocab.iter().cloned())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    #[test]
    fn ici_is_invariant_under_alpha_renaming() {
        let a = parse("(+ x (+ y z))").unwrap();
        let b = parse("(+ a (+ b c))").unwrap();
        assert_eq!(ici_tokens(&a), ici_tokens(&b));
        assert_eq!(canonical_form(&a), canonical_form(&b));
    }

    #[test]
    fn ici_distinguishes_structure() {
        let a = parse("(+ x (+ y z))").unwrap();
        let b = parse("(+ (+ x y) z)").unwrap();
        assert_ne!(canonical_form(&a), canonical_form(&b));
    }

    #[test]
    fn ici_tracks_repeated_variables() {
        let a = parse("(* x x)").unwrap();
        let b = parse("(* x y)").unwrap();
        assert_ne!(canonical_form(&a), canonical_form(&b));
        assert_eq!(canonical_form(&a), "( * v0 v0 )");
    }

    #[test]
    fn zero_and_one_are_kept_literal_but_other_constants_are_abstracted() {
        let a = parse("(+ (* x 7) (* y 7))").unwrap();
        let b = parse("(+ (* x 13) (* y 13))").unwrap();
        assert_eq!(canonical_form(&a), canonical_form(&b), "same reuse pattern");
        let c = parse("(+ (* x 7) (* y 13))").unwrap();
        assert_ne!(
            canonical_form(&a),
            canonical_form(&c),
            "different reuse pattern"
        );
        let with_one = parse("(* x 1)").unwrap();
        assert!(canonical_form(&with_one).contains(" 1 "));
    }

    #[test]
    fn plaintext_variables_keep_their_marker() {
        let e = parse("(* (pt w) x)").unwrap();
        assert_eq!(canonical_form(&e), "( * pt v0 v1 )");
    }

    #[test]
    fn rotations_record_direction_and_magnitude() {
        let left = parse("(<< (Vec a b) 2)").unwrap();
        let right = parse("(>> (Vec a b) 2)").unwrap();
        assert_ne!(canonical_form(&left), canonical_form(&right));
        assert!(canonical_form(&left).contains("rot2"));
    }

    #[test]
    fn vocabulary_encodes_with_cls_and_padding() {
        let vocab = Vocabulary::ici();
        let e = parse("(+ a b)").unwrap();
        let ids = vocab.encode_expr(&e, 12);
        assert_eq!(ids.len(), 12);
        assert_eq!(ids[0], vocab.cls_id());
        assert_eq!(*ids.last().unwrap(), vocab.pad_id());
        // Round-trip through token strings for the non-pad prefix.
        assert_eq!(vocab.token(ids[1]), "(");
        assert_eq!(vocab.token(ids[2]), "+");
        assert_eq!(vocab.token(ids[3]), "v0");
    }

    #[test]
    fn vocabulary_truncates_long_sequences() {
        let vocab = Vocabulary::ici();
        let e = parse("(+ (+ (+ a b) (+ c d)) (+ (+ e f) (+ g h)))").unwrap();
        let ids = vocab.encode_expr(&e, 5);
        assert_eq!(ids.len(), 5);
    }

    #[test]
    fn unknown_tokens_map_to_unk() {
        let vocab = Vocabulary::ici();
        let id = vocab.id("definitely-not-a-token");
        assert_eq!(vocab.token(id), UNK_TOKEN);
    }

    #[test]
    fn large_rotation_steps_bucket_to_powers_of_two() {
        let vocab = Vocabulary::ici();
        let ids = vocab.encode(&["rot1000".to_string()], 3);
        assert_eq!(vocab.token(ids[1]), "rot1024");
    }

    #[test]
    fn bpe_learns_frequent_pairs() {
        let corpus: Vec<String> = (0..20).map(|i| format!("(VecAdd x{i} y{i})")).collect();
        let bpe = BpeTokenizer::train(&corpus, 64);
        assert!(bpe.vocab_size() > 3);
        assert!(bpe.merge_count() > 0);
        let tokens = bpe.tokenize("(VecAdd x1 y1)");
        // The common substring "VecAdd" should compress into fewer tokens than characters.
        assert!(tokens.len() < "(VecAdd x1 y1)".replace(' ', "").len());
    }

    #[test]
    fn bpe_tokenization_is_slower_growing_than_ici() {
        // Sanity check used by the Figure 10 ablation: BPE produces at least
        // as many tokens per program as ICI for structurally small programs.
        let e = parse("(VecMul (Vec a b c d) (Vec e f g h))").unwrap();
        let corpus = vec![e.to_string()];
        let bpe = BpeTokenizer::train(&corpus, 16);
        assert!(bpe.tokenize_expr(&e).len() >= ici_tokens(&e).len());
    }
}
