//! Reference interpreter for the CHEHAB IR.
//!
//! Evaluation happens in the plaintext ring `Z_t` (the BFV plaintext space),
//! so rewrite-rule soundness established against this interpreter carries over
//! to homomorphic execution. Vectors are evaluated at their *logical* arity
//! with the zero-padded-slot semantics described in [`crate::expr`]:
//! element-wise operations zero-extend the shorter operand and rotations are
//! zero-fill shifts.

use crate::expr::{BinOp, Expr};
use crate::symbol::Symbol;
use std::collections::HashMap;
use std::fmt;

/// Default plaintext modulus used by the interpreter and the FHE backend:
/// a 20-bit prime with `t ≡ 1 (mod 2n)` for `n = 16384`, enabling batching.
pub const DEFAULT_PLAIN_MODULUS: u64 = 786_433;

/// The value of an IR expression: a scalar or a logical slot vector, with all
/// entries reduced modulo the plaintext modulus.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Value {
    /// A single plaintext residue.
    Scalar(u64),
    /// A logical vector of plaintext residues (live slots only).
    Vector(Vec<u64>),
}

impl Value {
    /// The live slots of the value (a scalar is a single slot).
    pub fn slots(&self) -> Vec<u64> {
        match self {
            Value::Scalar(v) => vec![*v],
            Value::Vector(v) => v.clone(),
        }
    }

    /// Returns the scalar payload, if this is a scalar.
    pub fn as_scalar(&self) -> Option<u64> {
        match self {
            Value::Scalar(v) => Some(*v),
            Value::Vector(_) => None,
        }
    }

    /// Returns the vector payload, if this is a vector.
    pub fn as_vector(&self) -> Option<&[u64]> {
        match self {
            Value::Scalar(_) => None,
            Value::Vector(v) => Some(v),
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Scalar(v) => write!(f, "{v}"),
            Value::Vector(v) => {
                write!(f, "[")?;
                for (i, x) in v.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{x}")?;
                }
                write!(f, "]")
            }
        }
    }
}

/// Errors produced by [`evaluate`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EvalError {
    /// A variable had no binding in the environment.
    UnboundVariable(Symbol),
    /// A scalar operator received a vector operand (or vice versa); the
    /// expression does not type-check.
    TypeMismatch(String),
}

impl fmt::Display for EvalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EvalError::UnboundVariable(s) => write!(f, "unbound variable `{s}`"),
            EvalError::TypeMismatch(m) => write!(f, "type mismatch: {m}"),
        }
    }
}

impl std::error::Error for EvalError {}

/// An evaluation environment binding input variables to plaintext values.
#[derive(Debug, Clone, Default)]
pub struct Env {
    modulus: u64,
    bindings: HashMap<Symbol, u64>,
}

impl Env {
    /// Creates an empty environment over [`DEFAULT_PLAIN_MODULUS`].
    pub fn new() -> Self {
        Self::with_modulus(DEFAULT_PLAIN_MODULUS)
    }

    /// Creates an empty environment over a custom plaintext modulus.
    ///
    /// # Panics
    ///
    /// Panics if `modulus < 2`.
    pub fn with_modulus(modulus: u64) -> Self {
        assert!(modulus >= 2, "plaintext modulus must be at least 2");
        Env {
            modulus,
            bindings: HashMap::new(),
        }
    }

    /// The plaintext modulus this environment reduces values by.
    pub fn modulus(&self) -> u64 {
        self.modulus
    }

    /// Binds a variable to a (signed) integer value, reducing it modulo `t`.
    pub fn bind(&mut self, name: impl Into<Symbol>, value: i64) -> &mut Self {
        let v = reduce(value, self.modulus);
        self.bindings.insert(name.into(), v);
        self
    }

    /// Looks up a binding.
    pub fn get(&self, name: &str) -> Option<u64> {
        self.bindings.get(name).copied()
    }

    /// Binds every variable of `expr` that is not yet bound, drawing values
    /// from the supplied closure (handy for property tests).
    pub fn bind_all(
        &mut self,
        expr: &Expr,
        mut value_for: impl FnMut(&Symbol) -> i64,
    ) -> &mut Self {
        for v in expr.variables() {
            if !self.bindings.contains_key(v.as_str()) {
                let val = value_for(&v);
                self.bind(v, val);
            }
        }
        self
    }
}

fn reduce(v: i64, m: u64) -> u64 {
    let m_i = m as i128;
    (((v as i128) % m_i + m_i) % m_i) as u64
}

fn bin(op: BinOp, a: u64, b: u64, m: u64) -> u64 {
    let (a, b, m) = (a as u128, b as u128, m as u128);
    let r = match op {
        BinOp::Add => (a + b) % m,
        BinOp::Sub => (a + m - (b % m)) % m,
        BinOp::Mul => (a * b) % m,
    };
    r as u64
}

fn neg(a: u64, m: u64) -> u64 {
    (m - (a % m)) % m
}

/// Evaluates `expr` under `env`.
///
/// # Errors
///
/// Returns [`EvalError::UnboundVariable`] if an input has no binding, or
/// [`EvalError::TypeMismatch`] if the expression does not type-check.
pub fn evaluate(expr: &Expr, env: &Env) -> Result<Value, EvalError> {
    let m = env.modulus;
    match expr {
        Expr::CtVar(s) | Expr::PtVar(s) => env
            .bindings
            .get(s.as_str())
            .map(|v| Value::Scalar(*v))
            .ok_or_else(|| EvalError::UnboundVariable(s.clone())),
        Expr::Const(v) => Ok(Value::Scalar(reduce(*v, m))),
        Expr::Bin(op, a, b) => {
            let (va, vb) = (evaluate(a, env)?, evaluate(b, env)?);
            match (va, vb) {
                (Value::Scalar(x), Value::Scalar(y)) => Ok(Value::Scalar(bin(*op, x, y, m))),
                _ => Err(EvalError::TypeMismatch(format!(
                    "scalar `{}` applied to vector operand",
                    op.token()
                ))),
            }
        }
        Expr::Neg(a) => match evaluate(a, env)? {
            Value::Scalar(x) => Ok(Value::Scalar(neg(x, m))),
            Value::Vector(_) => Err(EvalError::TypeMismatch(
                "scalar negation of a vector".into(),
            )),
        },
        Expr::Vec(elems) => {
            let mut out = Vec::with_capacity(elems.len());
            for e in elems {
                match evaluate(e, env)? {
                    Value::Scalar(x) => out.push(x),
                    Value::Vector(_) => {
                        return Err(EvalError::TypeMismatch("`Vec` element is a vector".into()))
                    }
                }
            }
            Ok(Value::Vector(out))
        }
        Expr::VecBin(op, a, b) => {
            let (va, vb) = (evaluate(a, env)?, evaluate(b, env)?);
            match (va, vb) {
                (Value::Vector(x), Value::Vector(y)) => {
                    let len = x.len().max(y.len());
                    let mut out = Vec::with_capacity(len);
                    for i in 0..len {
                        let xi = x.get(i).copied().unwrap_or(0);
                        let yi = y.get(i).copied().unwrap_or(0);
                        out.push(bin(*op, xi, yi, m));
                    }
                    Ok(Value::Vector(out))
                }
                _ => Err(EvalError::TypeMismatch(format!(
                    "vector `{}` applied to scalar operand",
                    op.vector_token()
                ))),
            }
        }
        Expr::VecNeg(a) => match evaluate(a, env)? {
            Value::Vector(x) => Ok(Value::Vector(x.into_iter().map(|v| neg(v, m)).collect())),
            Value::Scalar(_) => Err(EvalError::TypeMismatch(
                "vector negation of a scalar".into(),
            )),
        },
        Expr::Rot(a, steps) => match evaluate(a, env)? {
            Value::Vector(x) => Ok(Value::Vector(shift_zero_fill(&x, *steps))),
            Value::Scalar(_) => Err(EvalError::TypeMismatch("rotation of a scalar".into())),
        },
    }
}

/// Zero-fill shift of a logical slot vector: positive `steps` shift left
/// (towards slot 0), negative shift right.
pub fn shift_zero_fill(slots: &[u64], steps: i64) -> Vec<u64> {
    let n = slots.len();
    let mut out = vec![0u64; n];
    if steps >= 0 {
        let s = (steps as usize).min(n);
        let live = n - s;
        out[..live].copy_from_slice(&slots[s..]);
    } else {
        let s = ((-steps) as usize).min(n);
        out[s..].copy_from_slice(&slots[..n - s]);
    }
    out
}

/// Checks that two expressions agree on the first `live_slots` output slots
/// under the given environment (scalars are treated as single-slot vectors).
///
/// This is the soundness notion used for rewrite rules: a rewrite may change
/// the arity of intermediate vectors, but the program's live output slots must
/// be preserved.
pub fn equivalent_on_live_slots(
    a: &Expr,
    b: &Expr,
    env: &Env,
    live_slots: usize,
) -> Result<bool, EvalError> {
    let va = evaluate(a, env)?.slots();
    let vb = evaluate(b, env)?.slots();
    for i in 0..live_slots {
        let xa = va.get(i).copied().unwrap_or(0);
        let xb = vb.get(i).copied().unwrap_or(0);
        if xa != xb {
            return Ok(false);
        }
    }
    Ok(true)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    #[test]
    fn shifts_beyond_the_vector_length_zero_everything() {
        assert_eq!(shift_zero_fill(&[1, 2, 3], 5), vec![0, 0, 0]);
        assert_eq!(shift_zero_fill(&[1, 2, 3], -5), vec![0, 0, 0]);
        assert_eq!(shift_zero_fill(&[1, 2, 3], 3), vec![0, 0, 0]);
        assert_eq!(shift_zero_fill(&[1, 2, 3], 1), vec![2, 3, 0]);
        assert_eq!(shift_zero_fill(&[1, 2, 3], -1), vec![0, 1, 2]);
        assert_eq!(shift_zero_fill(&[], 2), Vec::<u64>::new());
    }

    fn env_abcd() -> Env {
        let mut env = Env::new();
        env.bind("a", 3)
            .bind("b", 5)
            .bind("c", 7)
            .bind("d", 11)
            .bind("e", 2)
            .bind("f", 4);
        env
    }

    #[test]
    fn evaluates_scalar_arithmetic() {
        let env = env_abcd();
        let e = parse("(+ (* a b) (- c d))").unwrap();
        let t = env.modulus() as i64;
        let expected = ((3 * 5 + (7 - 11)) % t + t) % t;
        assert_eq!(evaluate(&e, &env).unwrap(), Value::Scalar(expected as u64));
    }

    #[test]
    fn evaluates_vector_ops_elementwise() {
        let env = env_abcd();
        let e = parse("(VecMul (Vec a c) (Vec b d))").unwrap();
        assert_eq!(evaluate(&e, &env).unwrap(), Value::Vector(vec![15, 77]));
    }

    #[test]
    fn shorter_operand_is_zero_extended() {
        let env = env_abcd();
        let e = parse("(VecAdd (Vec a b c) (Vec d))").unwrap();
        assert_eq!(evaluate(&e, &env).unwrap(), Value::Vector(vec![14, 5, 7]));
    }

    #[test]
    fn rotation_shifts_with_zero_fill() {
        let env = env_abcd();
        let left = parse("(<< (Vec a b c d) 1)").unwrap();
        assert_eq!(
            evaluate(&left, &env).unwrap(),
            Value::Vector(vec![5, 7, 11, 0])
        );
        let right = parse("(>> (Vec a b c d) 2)").unwrap();
        assert_eq!(
            evaluate(&right, &env).unwrap(),
            Value::Vector(vec![0, 0, 3, 5])
        );
    }

    #[test]
    fn negation_wraps_modulo_t() {
        let env = env_abcd();
        let e = parse("(- a)").unwrap();
        assert_eq!(
            evaluate(&e, &env).unwrap(),
            Value::Scalar(env.modulus() - 3)
        );
    }

    #[test]
    fn negative_constants_reduce_into_range() {
        let env = Env::new();
        let e = parse("(* 1 -2)").unwrap();
        assert_eq!(
            evaluate(&e, &env).unwrap(),
            Value::Scalar(env.modulus() - 2)
        );
    }

    #[test]
    fn unbound_variable_is_an_error() {
        let env = Env::new();
        let e = parse("(+ a b)").unwrap();
        assert!(matches!(
            evaluate(&e, &env),
            Err(EvalError::UnboundVariable(_))
        ));
    }

    #[test]
    fn type_mismatch_is_an_error() {
        let env = env_abcd();
        let e = Expr::add(Expr::vec(vec![Expr::ct("a")]), Expr::ct("b"));
        assert!(matches!(
            evaluate(&e, &env),
            Err(EvalError::TypeMismatch(_))
        ));
    }

    #[test]
    fn factorization_rewrite_is_equivalent() {
        let env = env_abcd();
        let lhs = parse("(+ (* a b) (* a c))").unwrap();
        let rhs = parse("(* a (+ b c))").unwrap();
        assert!(equivalent_on_live_slots(&lhs, &rhs, &env, 1).unwrap());
    }

    #[test]
    fn vectorization_rewrite_is_equivalent_on_live_slots() {
        let env = env_abcd();
        let lhs = parse("(Vec (+ a b) (+ c d))").unwrap();
        let rhs = parse("(VecAdd (Vec a c) (Vec b d))").unwrap();
        assert!(equivalent_on_live_slots(&lhs, &rhs, &env, 2).unwrap());
    }

    #[test]
    fn rotation_composite_rewrite_preserves_live_slots() {
        // (Vec (+ (* a b) (* c d)) (+ (* e f) (* g h)))
        //   == first two slots of (VecAdd V (<< V 2))
        // with V = (VecMul (Vec a e c g) (Vec b f d h)).
        let mut env = env_abcd();
        env.bind("g", 6).bind("h", 9);
        let lhs = parse("(Vec (+ (* a b) (* c d)) (+ (* e f) (* g h)))").unwrap();
        let rhs = parse(
            "(VecAdd (VecMul (Vec a e c g) (Vec b f d h)) (<< (VecMul (Vec a e c g) (Vec b f d h)) 2))",
        )
        .unwrap();
        assert!(equivalent_on_live_slots(&lhs, &rhs, &env, 2).unwrap());
        // ...but not necessarily beyond the live slots.
        let va = evaluate(&lhs, &env).unwrap().slots();
        let vb = evaluate(&rhs, &env).unwrap().slots();
        assert_eq!(va.len(), 2);
        assert_eq!(vb.len(), 4);
    }

    #[test]
    fn bind_all_fills_missing_bindings() {
        let e = parse("(+ x (* y z))").unwrap();
        let mut env = Env::new();
        env.bind("x", 1);
        env.bind_all(&e, |_| 9);
        assert_eq!(env.get("x"), Some(1));
        assert_eq!(env.get("y"), Some(9));
        assert_eq!(env.get("z"), Some(9));
    }

    #[test]
    fn value_accessors() {
        assert_eq!(Value::Scalar(4).as_scalar(), Some(4));
        assert_eq!(Value::Scalar(4).as_vector(), None);
        assert_eq!(Value::Vector(vec![1, 2]).as_vector(), Some(&[1u64, 2][..]));
        assert_eq!(Value::Vector(vec![1, 2]).to_string(), "[1, 2]");
    }
}
