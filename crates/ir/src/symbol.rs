//! Cheap, clonable identifiers for program inputs.
//!
//! Expressions are cloned heavily during rewriting, so symbols are backed by a
//! reference-counted string slice rather than an owned [`String`].

use std::borrow::Borrow;
use std::fmt;
use std::sync::Arc;

/// An identifier naming a program input (ciphertext or plaintext variable).
///
/// `Symbol` is a thin wrapper around `Arc<str>`: cloning is O(1) and
/// comparisons are by string value.
///
/// # Examples
///
/// ```
/// use chehab_ir::Symbol;
///
/// let a = Symbol::new("v1");
/// let b: Symbol = "v1".into();
/// assert_eq!(a, b);
/// assert_eq!(a.as_str(), "v1");
/// ```
#[derive(Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Symbol(Arc<str>);

impl Symbol {
    /// Creates a symbol from anything string-like.
    pub fn new(name: impl AsRef<str>) -> Self {
        Symbol(Arc::from(name.as_ref()))
    }

    /// Returns the symbol's textual name.
    pub fn as_str(&self) -> &str {
        &self.0
    }
}

impl fmt::Display for Symbol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl fmt::Debug for Symbol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Symbol({})", self.0)
    }
}

impl From<&str> for Symbol {
    fn from(s: &str) -> Self {
        Symbol::new(s)
    }
}

impl From<String> for Symbol {
    fn from(s: String) -> Self {
        Symbol::new(s)
    }
}

impl Borrow<str> for Symbol {
    fn borrow(&self) -> &str {
        self.as_str()
    }
}

impl AsRef<str> for Symbol {
    fn as_ref(&self) -> &str {
        self.as_str()
    }
}

impl serde::Serialize for Symbol {
    fn serialize<S: serde::Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_str(self.as_str())
    }
}

impl<'de> serde::Deserialize<'de> for Symbol {
    fn deserialize<D: serde::Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        let s = String::deserialize(deserializer)?;
        Ok(Symbol::new(s))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn equality_is_by_value() {
        assert_eq!(Symbol::new("x"), Symbol::new("x"));
        assert_ne!(Symbol::new("x"), Symbol::new("y"));
    }

    #[test]
    fn usable_as_hash_key_via_str_borrow() {
        let mut set = HashSet::new();
        set.insert(Symbol::new("a"));
        assert!(set.contains("a"));
        assert!(!set.contains("b"));
    }

    #[test]
    fn display_and_debug_are_nonempty() {
        let s = Symbol::new("v0");
        assert_eq!(s.to_string(), "v0");
        assert!(format!("{s:?}").contains("v0"));
    }

    #[test]
    fn ordering_is_lexicographic() {
        assert!(Symbol::new("a") < Symbol::new("b"));
    }
}
