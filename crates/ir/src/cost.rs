//! The FHE-aware cost function of Section 5.3.1.
//!
//! `Cost(e) = w_ops · C_ops(e) + w_depth · D_circuit(e) + w_mult · D_mult(e)`
//!
//! where `C_ops` sums a per-operator latency estimate over every node of the
//! expression tree, `D_circuit` is the circuit depth and `D_mult` the
//! multiplicative depth. Operator latencies and the three weights are plain
//! data so experiments can sweep them (Table 1).

use crate::analysis::{circuit_depth, count_ops, multiplicative_depth, OpCounts};
use crate::expr::Expr;
use serde::{Deserialize, Serialize};

/// Relative latency assigned to each operator category.
///
/// Defaults follow the paper: vector additions/subtractions cost 1, vector
/// multiplications 100, rotations 50, and scalar ciphertext operations 250
/// (deliberately high to push the policy towards vectorized code).
/// Ciphertext–plaintext multiplications are cheaper than ciphertext–ciphertext
/// ones in BFV; they are given an intermediate cost.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct OpCosts {
    /// Vector ciphertext addition/subtraction/negation.
    pub vec_add: f64,
    /// Vector ciphertext–ciphertext multiplication.
    pub vec_mul_ct_ct: f64,
    /// Vector ciphertext–plaintext multiplication.
    pub vec_mul_ct_pt: f64,
    /// Ciphertext rotation.
    pub rotation: f64,
    /// Any scalar (non-vectorized) ciphertext operation.
    pub scalar_op: f64,
    /// Plaintext-only operation (folded away by the backend).
    pub plaintext_op: f64,
}

impl Default for OpCosts {
    fn default() -> Self {
        OpCosts {
            vec_add: 1.0,
            vec_mul_ct_ct: 100.0,
            vec_mul_ct_pt: 30.0,
            rotation: 50.0,
            scalar_op: 250.0,
            plaintext_op: 0.0,
        }
    }
}

/// The weights `(w_ops, w_depth, w_mult)` of the cost function.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CostWeights {
    /// Weight of the operation-cost term.
    pub w_ops: f64,
    /// Weight of the circuit-depth term.
    pub w_depth: f64,
    /// Weight of the multiplicative-depth term.
    pub w_mult: f64,
}

impl Default for CostWeights {
    fn default() -> Self {
        CostWeights {
            w_ops: 1.0,
            w_depth: 1.0,
            w_mult: 1.0,
        }
    }
}

impl CostWeights {
    /// Convenience constructor used by the Table 1 weight sweep.
    pub fn new(w_ops: f64, w_depth: f64, w_mult: f64) -> Self {
        CostWeights {
            w_ops,
            w_depth,
            w_mult,
        }
    }
}

/// The complete FHE cost model: per-operator latencies plus term weights.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct CostModel {
    /// Per-operator latency estimates.
    pub op_costs: OpCosts,
    /// Weights of the three cost terms.
    pub weights: CostWeights,
}

/// The three components of the cost of an expression, before weighting.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CostBreakdown {
    /// `C_ops`: summed operator latencies.
    pub ops_cost: f64,
    /// `D_circuit`: circuit depth.
    pub depth: usize,
    /// `D_mult`: multiplicative depth.
    pub multiplicative_depth: usize,
    /// Weighted total.
    pub total: f64,
}

impl CostModel {
    /// Creates a cost model with custom weights and default operator costs.
    pub fn with_weights(weights: CostWeights) -> Self {
        CostModel {
            op_costs: OpCosts::default(),
            weights,
        }
    }

    /// Sums the per-operator latency estimate over the operation counts.
    pub fn ops_cost_of_counts(&self, counts: &OpCounts) -> f64 {
        let c = &self.op_costs;
        (counts.vec_add_sub + counts.vec_neg) as f64 * c.vec_add
            + counts.vec_mul_ct_ct as f64 * c.vec_mul_ct_ct
            + counts.vec_mul_ct_pt as f64 * c.vec_mul_ct_pt
            + counts.rotations as f64 * c.rotation
            + counts.scalar_ciphertext_ops() as f64 * c.scalar_op
            + counts.plaintext_ops as f64 * c.plaintext_op
    }

    /// `C_ops(e)`: summed operator latencies of every node in the tree.
    pub fn ops_cost(&self, expr: &Expr) -> f64 {
        self.ops_cost_of_counts(&count_ops(expr))
    }

    /// Evaluates the full weighted cost of an expression and returns its
    /// breakdown.
    pub fn breakdown(&self, expr: &Expr) -> CostBreakdown {
        let ops_cost = self.ops_cost(expr);
        let depth = circuit_depth(expr);
        let mult = multiplicative_depth(expr);
        let total = self.weights.w_ops * ops_cost
            + self.weights.w_depth * depth as f64
            + self.weights.w_mult * mult as f64;
        CostBreakdown {
            ops_cost,
            depth,
            multiplicative_depth: mult,
            total,
        }
    }

    /// The weighted cost of an expression (lower is better).
    pub fn cost(&self, expr: &Expr) -> f64 {
        self.breakdown(expr).total
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    #[test]
    fn default_costs_match_the_paper() {
        let c = OpCosts::default();
        assert_eq!(c.vec_add, 1.0);
        assert_eq!(c.vec_mul_ct_ct, 100.0);
        assert_eq!(c.rotation, 50.0);
        assert_eq!(c.scalar_op, 250.0);
    }

    #[test]
    fn scalar_code_costs_more_than_its_vectorized_form() {
        let model = CostModel::default();
        let scalar = parse("(Vec (+ a b) (+ c d))").unwrap();
        let vectorized = parse("(VecAdd (Vec a c) (Vec b d))").unwrap();
        assert!(model.cost(&scalar) > model.cost(&vectorized));
    }

    #[test]
    fn rotations_are_cheaper_than_ct_ct_multiplications() {
        let model = CostModel::default();
        let with_rot = parse("(VecAdd (Vec a b) (<< (Vec c d) 1))").unwrap();
        let with_mul = parse("(VecAdd (Vec a b) (VecMul (Vec c d) (Vec e f)))").unwrap();
        assert!(model.cost(&with_rot) < model.cost(&with_mul));
    }

    #[test]
    fn breakdown_matches_weighted_sum() {
        let weights = CostWeights::new(1.0, 50.0, 50.0);
        let model = CostModel::with_weights(weights);
        let e = parse("(* (+ a b) (* c d))").unwrap();
        let b = model.breakdown(&e);
        let expected = b.ops_cost + 50.0 * b.depth as f64 + 50.0 * b.multiplicative_depth as f64;
        assert!((b.total - expected).abs() < 1e-9);
        assert_eq!(b.depth, 2);
        assert_eq!(b.multiplicative_depth, 2);
    }

    #[test]
    fn increasing_depth_weight_penalizes_deep_circuits() {
        let shallow =
            parse("(VecMul (VecMul (Vec a b) (Vec c d)) (VecMul (Vec e f) (Vec g h)))").unwrap();
        let deep =
            parse("(VecMul (Vec a b) (VecMul (Vec c d) (VecMul (Vec e f) (Vec g h))))").unwrap();
        let flat = CostModel::with_weights(CostWeights::new(1.0, 0.0, 0.0));
        // With no depth weight the two shapes have identical op costs.
        assert_eq!(flat.cost(&shallow), flat.cost(&deep));
        let depth_aware = CostModel::with_weights(CostWeights::new(1.0, 100.0, 100.0));
        assert!(depth_aware.cost(&shallow) < depth_aware.cost(&deep));
    }

    #[test]
    fn plaintext_only_work_is_free_by_default() {
        let model = CostModel::default();
        let e = parse("(+ (pt a) (* (pt b) 3))").unwrap();
        assert_eq!(model.ops_cost(&e), 0.0);
    }

    #[test]
    fn ct_pt_multiplication_is_cheaper_than_ct_ct() {
        let model = CostModel::default();
        let ct_pt = parse("(VecMul (Vec a b) (Vec 1 2))").unwrap();
        let ct_ct = parse("(VecMul (Vec a b) (Vec c d))").unwrap();
        assert!(model.cost(&ct_pt) < model.cost(&ct_ct));
    }
}
