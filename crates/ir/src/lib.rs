//! # chehab-ir
//!
//! The intermediate representation of the CHEHAB FHE compiler, reproduced
//! from *CHEHAB RL: Learning to Optimize Fully Homomorphic Encryption
//! Computations* (ASPLOS 2026).
//!
//! The crate provides:
//!
//! * the [`Expr`] expression tree over scalar and vector FHE operations,
//!   with s-expression [`parse`]/printing,
//! * a reference interpreter ([`evaluate`]) over the BFV plaintext ring used
//!   to establish rewrite soundness,
//! * the static analyses reported in the paper's evaluation
//!   ([`circuit_depth`], [`multiplicative_depth`], [`count_ops`]),
//! * the FHE-aware [`CostModel`] of Section 5.3.1,
//! * the ICI and BPE tokenizers of Section 5.1 ([`ici_tokens`],
//!   [`BpeTokenizer`]) and the [`Vocabulary`] used by the embedding model,
//! * the hash-consed [`CircuitDag`] used for CSE and code generation, and
//! * classic cleanup passes ([`constant_fold`], [`cleanup`]).
//!
//! ## Example
//!
//! ```
//! use chehab_ir::{parse, CostModel, multiplicative_depth};
//!
//! let scalar = parse("(Vec (+ (* a b) (* c d)) (+ (* e f) (* g h)))")?;
//! let vectorized = parse(
//!     "(VecAdd (VecMul (Vec a e) (Vec b f)) (VecMul (Vec c g) (Vec d h)))",
//! )?;
//!
//! let model = CostModel::default();
//! assert!(model.cost(&vectorized) < model.cost(&scalar));
//! assert_eq!(multiplicative_depth(&vectorized), 1);
//! # Ok::<(), chehab_ir::ParseError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod analysis;
mod cost;
mod dag;
mod eval;
mod expr;
mod parser;
mod passes;
mod symbol;
mod tokenize;

pub use analysis::{
    circuit_depth, count_ops, data_kind, multiplicative_depth, rotation_steps, summarize,
    CircuitSummary, DataKind, OpCounts,
};
pub use cost::{CostBreakdown, CostModel, CostWeights, OpCosts};
pub use dag::{CircuitDag, DagNode, NodeId};
pub use eval::{
    equivalent_on_live_slots, evaluate, shift_zero_fill, Env, EvalError, Value,
    DEFAULT_PLAIN_MODULUS,
};
pub use expr::{BinOp, Expr, Ty, TypeError};
pub use parser::{parse, ParseError};
pub use passes::{cleanup, constant_fold, merge_rotations};
pub use symbol::Symbol;
pub use tokenize::{
    canonical_form, ici_tokens, BpeTokenizer, Vocabulary, CLS_TOKEN, MAX_ICI_CONSTANTS,
    MAX_ICI_VARIABLES, PAD_TOKEN, UNK_TOKEN,
};
