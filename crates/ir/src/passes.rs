//! Classic compiler passes applied by the CHEHAB pipeline outside the
//! rewrite system: constant folding and algebraic identity cleanup.
//!
//! Common-subexpression elimination and dead-code elimination operate on the
//! DAG view and live in [`crate::dag`].

use crate::expr::{BinOp, Expr};

/// Folds plaintext-constant subexpressions into literal constants and applies
/// the safe algebraic identities `x*1 = x`, `1*x = x`, `x*0 = 0`, `0*x = 0`,
/// `x+0 = x`, `0+x = x` and `x-0 = x`.
///
/// Folding happens in the plaintext integer domain (`i64` with wrapping
/// arithmetic is never needed because folded constants stay well within the
/// plaintext modulus for realistic programs); the FHE backend reduces
/// constants modulo `t` when encoding them.
pub fn constant_fold(expr: &Expr) -> Expr {
    match expr {
        Expr::CtVar(_) | Expr::PtVar(_) | Expr::Const(_) => expr.clone(),
        Expr::Bin(op, a, b) => {
            let (a, b) = (constant_fold(a), constant_fold(b));
            if let (Expr::Const(x), Expr::Const(y)) = (&a, &b) {
                return Expr::Const(apply(*op, *x, *y));
            }
            match (op, &a, &b) {
                (BinOp::Mul, _, Expr::Const(1)) => a,
                (BinOp::Mul, Expr::Const(1), _) => b,
                (BinOp::Mul, _, Expr::Const(0)) | (BinOp::Mul, Expr::Const(0), _) => Expr::Const(0),
                (BinOp::Add, _, Expr::Const(0)) => a,
                (BinOp::Add, Expr::Const(0), _) => b,
                (BinOp::Sub, _, Expr::Const(0)) => a,
                _ => Expr::Bin(*op, Box::new(a), Box::new(b)),
            }
        }
        Expr::Neg(a) => {
            let a = constant_fold(a);
            if let Expr::Const(x) = a {
                Expr::Const(x.wrapping_neg())
            } else {
                Expr::Neg(Box::new(a))
            }
        }
        Expr::Vec(elems) => Expr::Vec(elems.iter().map(constant_fold).collect()),
        Expr::VecBin(op, a, b) => {
            Expr::VecBin(*op, Box::new(constant_fold(a)), Box::new(constant_fold(b)))
        }
        Expr::VecNeg(a) => Expr::VecNeg(Box::new(constant_fold(a))),
        Expr::Rot(a, s) => {
            let a = constant_fold(a);
            if *s == 0 {
                a
            } else {
                Expr::Rot(Box::new(a), *s)
            }
        }
    }
}

fn apply(op: BinOp, x: i64, y: i64) -> i64 {
    match op {
        BinOp::Add => x.wrapping_add(y),
        BinOp::Sub => x.wrapping_sub(y),
        BinOp::Mul => x.wrapping_mul(y),
    }
}

/// Merges nested rotations (`Rot(Rot(e, a), b)` becomes `Rot(e, a + b)`) and
/// removes zero-step rotations.
///
/// This is sound under the zero-fill shift semantics whenever the two steps
/// have the same sign (shifting left twice never resurrects slots that the
/// first shift discarded); opposite-sign rotations are left untouched because
/// `(<< (>> v 1) 1)` zeroes slot `k-1` and is *not* the identity.
pub fn merge_rotations(expr: &Expr) -> Expr {
    match expr {
        Expr::Rot(inner, s_outer) => {
            let folded = merge_rotations(inner);
            if let Expr::Rot(inner2, s_inner) = &folded {
                if (*s_outer >= 0) == (*s_inner >= 0) {
                    let combined = s_outer + s_inner;
                    return if combined == 0 {
                        (**inner2).clone()
                    } else {
                        Expr::Rot(inner2.clone(), combined)
                    };
                }
            }
            if *s_outer == 0 {
                folded
            } else {
                Expr::Rot(Box::new(folded), *s_outer)
            }
        }
        _ => {
            let children: Vec<Expr> = expr.children().into_iter().map(merge_rotations).collect();
            if children.is_empty() {
                expr.clone()
            } else {
                expr.with_children(children)
            }
        }
    }
}

/// Runs the full cleanup pipeline: constant folding followed by rotation
/// merging, repeated until a fixpoint is reached (at most a handful of
/// iterations in practice, bounded here for safety).
pub fn cleanup(expr: &Expr) -> Expr {
    let mut cur = expr.clone();
    for _ in 0..8 {
        let next = merge_rotations(&constant_fold(&cur));
        if next == cur {
            break;
        }
        cur = next;
    }
    cur
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::{equivalent_on_live_slots, Env};
    use crate::parser::parse;

    #[test]
    fn folds_constant_subtrees() {
        let e = parse("(* x (+ 2 3))").unwrap();
        assert_eq!(constant_fold(&e), parse("(* x 5)").unwrap());
    }

    #[test]
    fn applies_multiplicative_identities() {
        assert_eq!(
            constant_fold(&parse("(* x 1)").unwrap()),
            parse("x").unwrap()
        );
        assert_eq!(
            constant_fold(&parse("(* 1 x)").unwrap()),
            parse("x").unwrap()
        );
        assert_eq!(
            constant_fold(&parse("(* x 0)").unwrap()),
            parse("0").unwrap()
        );
        assert_eq!(
            constant_fold(&parse("(+ x 0)").unwrap()),
            parse("x").unwrap()
        );
        assert_eq!(
            constant_fold(&parse("(- x 0)").unwrap()),
            parse("x").unwrap()
        );
    }

    #[test]
    fn folds_negation_of_constants() {
        assert_eq!(constant_fold(&parse("(- 5)").unwrap()), Expr::Const(-5));
    }

    #[test]
    fn folding_recurses_into_vectors() {
        let e = parse("(Vec (+ 1 2) (* x 1))").unwrap();
        assert_eq!(constant_fold(&e), parse("(Vec 3 x)").unwrap());
    }

    #[test]
    fn merges_same_direction_rotations() {
        let e = parse("(<< (<< (Vec a b c d) 1) 2)").unwrap();
        assert_eq!(merge_rotations(&e), parse("(<< (Vec a b c d) 3)").unwrap());
        let e = parse("(>> (>> (Vec a b c d) 1) 1)").unwrap();
        assert_eq!(merge_rotations(&e), parse("(>> (Vec a b c d) 2)").unwrap());
    }

    #[test]
    fn does_not_merge_opposite_direction_rotations() {
        let e = parse("(<< (>> (Vec a b c d) 1) 1)").unwrap();
        assert_eq!(
            merge_rotations(&e),
            e,
            "opposite-direction rotations are not the identity"
        );
    }

    #[test]
    fn removes_zero_step_rotations() {
        let e = parse("(<< (Vec a b) 0)").unwrap();
        assert_eq!(constant_fold(&e), parse("(Vec a b)").unwrap());
    }

    #[test]
    fn cleanup_preserves_semantics() {
        let sources = [
            "(* (+ x 0) (+ 2 3))",
            "(<< (<< (Vec a b c d) 1) 1)",
            "(VecAdd (Vec (* x 1) (+ y 0)) (Vec 1 2))",
        ];
        for src in sources {
            let e = parse(src).unwrap();
            let cleaned = cleanup(&e);
            let mut env = Env::new();
            env.bind_all(&e, |s| s.as_str().len() as i64 + 3);
            let live = e.ty().unwrap().slots();
            assert!(
                equivalent_on_live_slots(&e, &cleaned, &env, live).unwrap(),
                "cleanup changed semantics of {src}"
            );
        }
    }

    #[test]
    fn cleanup_reaches_fixpoint() {
        let e = parse("(* (+ 0 x) 1)").unwrap();
        let once = cleanup(&e);
        assert_eq!(once, parse("x").unwrap());
        assert_eq!(cleanup(&once), once);
    }
}
