//! Static analyses over IR expressions: circuit depth, multiplicative depth,
//! and per-category operation counts.
//!
//! These are the quantities the paper's evaluation reports (Table 6) and the
//! ingredients of the FHE-aware cost function (Section 5.3.1).

use crate::expr::{BinOp, Expr};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Whether a (sub)expression carries encrypted data.
///
/// A node is a *ciphertext* node if any input underneath it is a
/// [`Expr::CtVar`]; otherwise it is plaintext-only and a compiler can fold it
/// or treat operations on it as plaintext precomputation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DataKind {
    /// Contains at least one encrypted input.
    Ciphertext,
    /// Built only from plaintext inputs and constants.
    Plaintext,
}

impl DataKind {
    fn join(self, other: DataKind) -> DataKind {
        if self == DataKind::Ciphertext || other == DataKind::Ciphertext {
            DataKind::Ciphertext
        } else {
            DataKind::Plaintext
        }
    }
}

/// Classifies a node as ciphertext- or plaintext-valued.
pub fn data_kind(expr: &Expr) -> DataKind {
    match expr {
        Expr::CtVar(_) => DataKind::Ciphertext,
        Expr::PtVar(_) | Expr::Const(_) => DataKind::Plaintext,
        _ => expr
            .children()
            .into_iter()
            .map(data_kind)
            .fold(DataKind::Plaintext, DataKind::join),
    }
}

/// Per-category operation counts of an expression tree.
///
/// Counts follow the notation of the paper's Table 5/6: ciphertext additions
/// and subtractions (`⊕`), ciphertext–ciphertext multiplications (`⊗`),
/// ciphertext–plaintext multiplications (`⊙`) and rotations (`⟳`), split into
/// scalar and vector variants, plus plaintext-only operations (which a
/// backend folds away).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct OpCounts {
    /// Scalar ciphertext additions/subtractions.
    pub scalar_add_sub: usize,
    /// Scalar ciphertext–ciphertext multiplications.
    pub scalar_mul_ct_ct: usize,
    /// Scalar ciphertext–plaintext multiplications.
    pub scalar_mul_ct_pt: usize,
    /// Scalar ciphertext negations.
    pub scalar_neg: usize,
    /// Vector ciphertext additions/subtractions.
    pub vec_add_sub: usize,
    /// Vector ciphertext–ciphertext multiplications.
    pub vec_mul_ct_ct: usize,
    /// Vector ciphertext–plaintext multiplications.
    pub vec_mul_ct_pt: usize,
    /// Vector ciphertext negations.
    pub vec_neg: usize,
    /// Ciphertext rotations.
    pub rotations: usize,
    /// Operations whose operands are all plaintext (free after folding).
    pub plaintext_ops: usize,
    /// `Vec` constructors that pack at least one ciphertext element.
    pub packs: usize,
}

impl OpCounts {
    /// All ciphertext additions/subtractions (scalar + vector).
    pub fn additions(&self) -> usize {
        self.scalar_add_sub + self.vec_add_sub
    }

    /// All ciphertext–ciphertext multiplications (scalar + vector).
    pub fn ct_ct_muls(&self) -> usize {
        self.scalar_mul_ct_ct + self.vec_mul_ct_ct
    }

    /// All ciphertext–plaintext multiplications (scalar + vector).
    pub fn ct_pt_muls(&self) -> usize {
        self.scalar_mul_ct_pt + self.vec_mul_ct_pt
    }

    /// Total number of ciphertext operations of any kind.
    pub fn total_ciphertext_ops(&self) -> usize {
        self.scalar_add_sub
            + self.scalar_mul_ct_ct
            + self.scalar_mul_ct_pt
            + self.scalar_neg
            + self.vec_add_sub
            + self.vec_mul_ct_ct
            + self.vec_mul_ct_pt
            + self.vec_neg
            + self.rotations
    }

    /// Total number of *scalar* ciphertext operations. Zero means the
    /// expression is fully vectorized.
    pub fn scalar_ciphertext_ops(&self) -> usize {
        self.scalar_add_sub + self.scalar_mul_ct_ct + self.scalar_mul_ct_pt + self.scalar_neg
    }
}

/// Counts the operations of `expr` by category.
///
/// Counting is performed on the hash-consed circuit DAG: structurally
/// identical subexpressions are computed once in the generated circuit (the
/// compiler always applies common-subexpression elimination), so they are
/// counted once here. This matches how the paper reports operation counts
/// and keeps the cost model faithful for rewrites such as rotate-and-add
/// reductions whose *tree* form repeats the packed operand.
pub fn count_ops(expr: &Expr) -> OpCounts {
    let dag = crate::dag::CircuitDag::from_expr(expr);
    let nodes = dag.nodes();
    // Bottom-up data-kind per DAG node.
    let mut kinds = vec![DataKind::Plaintext; nodes.len()];
    for (id, node) in nodes.iter().enumerate() {
        kinds[id] = match node {
            crate::dag::DagNode::CtVar(_) => DataKind::Ciphertext,
            crate::dag::DagNode::PtVar(_) | crate::dag::DagNode::Const(_) => DataKind::Plaintext,
            _ => node
                .operands()
                .into_iter()
                .map(|o| kinds[o])
                .fold(DataKind::Plaintext, DataKind::join),
        };
    }
    let mut counts = OpCounts::default();
    for (id, node) in nodes.iter().enumerate() {
        let kind = kinds[id];
        match node {
            crate::dag::DagNode::CtVar(_)
            | crate::dag::DagNode::PtVar(_)
            | crate::dag::DagNode::Const(_) => {}
            crate::dag::DagNode::Bin(op, a, b) => {
                if kind == DataKind::Plaintext {
                    counts.plaintext_ops += 1;
                } else {
                    match op {
                        BinOp::Add | BinOp::Sub => counts.scalar_add_sub += 1,
                        BinOp::Mul => {
                            if kinds[*a] == DataKind::Ciphertext
                                && kinds[*b] == DataKind::Ciphertext
                            {
                                counts.scalar_mul_ct_ct += 1;
                            } else {
                                counts.scalar_mul_ct_pt += 1;
                            }
                        }
                    }
                }
            }
            crate::dag::DagNode::Neg(_) => {
                if kind == DataKind::Plaintext {
                    counts.plaintext_ops += 1;
                } else {
                    counts.scalar_neg += 1;
                }
            }
            crate::dag::DagNode::Vec(_) => {
                if kind == DataKind::Ciphertext {
                    counts.packs += 1;
                }
            }
            crate::dag::DagNode::VecBin(op, a, b) => {
                if kind == DataKind::Plaintext {
                    counts.plaintext_ops += 1;
                } else {
                    match op {
                        BinOp::Add | BinOp::Sub => counts.vec_add_sub += 1,
                        BinOp::Mul => {
                            if kinds[*a] == DataKind::Ciphertext
                                && kinds[*b] == DataKind::Ciphertext
                            {
                                counts.vec_mul_ct_ct += 1;
                            } else {
                                counts.vec_mul_ct_pt += 1;
                            }
                        }
                    }
                }
            }
            crate::dag::DagNode::VecNeg(_) => {
                if kind == DataKind::Plaintext {
                    counts.plaintext_ops += 1;
                } else {
                    counts.vec_neg += 1;
                }
            }
            crate::dag::DagNode::Rot(_, _) => {
                if kind == DataKind::Plaintext {
                    counts.plaintext_ops += 1;
                } else {
                    counts.rotations += 1;
                }
            }
        }
    }
    counts
}

/// Circuit depth: the maximum number of operation nodes on any path from an
/// input (or constant) to the root. Leaves have depth 0; `Vec` constructors
/// are data packing, not arithmetic, and do not add to the depth.
pub fn circuit_depth(expr: &Expr) -> usize {
    match expr {
        Expr::CtVar(_) | Expr::PtVar(_) | Expr::Const(_) => 0,
        Expr::Vec(elems) => elems.iter().map(circuit_depth).max().unwrap_or(0),
        _ => {
            1 + expr
                .children()
                .into_iter()
                .map(circuit_depth)
                .max()
                .unwrap_or(0)
        }
    }
}

/// Multiplicative depth: the maximum number of ciphertext–ciphertext
/// multiplications on any path from an input to the root.
///
/// Only multiplications where *both* operands carry ciphertext data count,
/// since those dominate noise growth in BFV; ciphertext–plaintext
/// multiplications grow noise far more slowly and are tracked separately by
/// [`count_ops`].
pub fn multiplicative_depth(expr: &Expr) -> usize {
    match expr {
        Expr::CtVar(_) | Expr::PtVar(_) | Expr::Const(_) => 0,
        Expr::Bin(BinOp::Mul, a, b) | Expr::VecBin(BinOp::Mul, a, b) => {
            let child_max = multiplicative_depth(a).max(multiplicative_depth(b));
            let is_ct_ct =
                data_kind(a) == DataKind::Ciphertext && data_kind(b) == DataKind::Ciphertext;
            child_max + usize::from(is_ct_ct)
        }
        _ => expr
            .children()
            .into_iter()
            .map(multiplicative_depth)
            .max()
            .unwrap_or(0),
    }
}

/// Collects every distinct rotation step used in the expression together with
/// the number of times it occurs (input to rotation-key selection).
pub fn rotation_steps(expr: &Expr) -> HashMap<i64, usize> {
    let mut steps = HashMap::new();
    expr.for_each_preorder(&mut |e| {
        if let Expr::Rot(_, s) = e {
            *steps.entry(*s).or_insert(0) += 1;
        }
    });
    steps
}

/// A bundled summary of all analyses, convenient for reporting.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CircuitSummary {
    /// Circuit depth (all operation kinds).
    pub depth: usize,
    /// Multiplicative depth (ciphertext–ciphertext multiplications only).
    pub multiplicative_depth: usize,
    /// Operation counts by category.
    pub ops: OpCounts,
    /// Total nodes in the expression tree.
    pub nodes: usize,
}

/// Computes a [`CircuitSummary`] for `expr`.
pub fn summarize(expr: &Expr) -> CircuitSummary {
    CircuitSummary {
        depth: circuit_depth(expr),
        multiplicative_depth: multiplicative_depth(expr),
        ops: count_ops(expr),
        nodes: expr.node_count(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    #[test]
    fn data_kind_propagates_ciphertext() {
        assert_eq!(data_kind(&parse("(+ a b)").unwrap()), DataKind::Ciphertext);
        assert_eq!(
            data_kind(&parse("(+ (pt a) 3)").unwrap()),
            DataKind::Plaintext
        );
        assert_eq!(
            data_kind(&parse("(* (pt w) x)").unwrap()),
            DataKind::Ciphertext
        );
    }

    #[test]
    fn depth_of_leaf_is_zero() {
        assert_eq!(circuit_depth(&parse("a").unwrap()), 0);
        assert_eq!(circuit_depth(&parse("7").unwrap()), 0);
    }

    #[test]
    fn depth_counts_operations_on_longest_path() {
        // ((a*b)*(c*d)) has depth 2; adding an outer + makes it 3.
        let e = parse("(+ (* (* a b) (* c d)) e)").unwrap();
        assert_eq!(circuit_depth(&e), 3);
    }

    #[test]
    fn vec_constructor_does_not_add_depth() {
        let e = parse("(VecAdd (Vec (* a b) c) (Vec d e))").unwrap();
        assert_eq!(circuit_depth(&e), 2);
    }

    #[test]
    fn multiplicative_depth_counts_only_ct_ct_muls() {
        let e = parse("(* (* a b) (* c d))").unwrap();
        assert_eq!(multiplicative_depth(&e), 2);
        // A plaintext multiplier does not add multiplicative depth.
        let e = parse("(* (pt w) (* a b))").unwrap();
        assert_eq!(multiplicative_depth(&e), 1);
        // Additions never add multiplicative depth.
        let e = parse("(+ (+ a b) (+ c d))").unwrap();
        assert_eq!(multiplicative_depth(&e), 0);
    }

    #[test]
    fn motivating_example_depths() {
        // Equation (1) of the paper: mult depth 3, circuit depth 4.
        let e = parse(
            "(* (+ (* (* v1 v2) (* v3 v4)) (* (* v3 v4) (* v5 v6))) (* (* v7 v8) (* v9 v10)))",
        )
        .unwrap();
        assert_eq!(multiplicative_depth(&e), 3);
        assert_eq!(circuit_depth(&e), 4);
        let counts = count_ops(&e);
        // 10 multiplications in the tree, 9 in the circuit DAG because
        // (* v3 v4) is shared — the paper reports 9.
        assert_eq!(counts.scalar_mul_ct_ct, 9);
        assert_eq!(counts.scalar_add_sub, 1);
    }

    #[test]
    fn op_counts_distinguish_ct_ct_and_ct_pt() {
        let e =
            parse("(VecAdd (VecMul (Vec a b) (Vec c d)) (VecMul (Vec e f) (Vec 1 2)))").unwrap();
        let counts = count_ops(&e);
        assert_eq!(counts.vec_mul_ct_ct, 1);
        assert_eq!(counts.vec_mul_ct_pt, 1);
        assert_eq!(counts.vec_add_sub, 1);
        assert_eq!(counts.rotations, 0);
        assert_eq!(counts.packs, 3);
    }

    #[test]
    fn plaintext_only_ops_are_counted_separately() {
        let e = parse("(* (+ (pt a) 3) x)").unwrap();
        let counts = count_ops(&e);
        assert_eq!(counts.plaintext_ops, 1);
        assert_eq!(counts.scalar_mul_ct_pt, 1);
        assert_eq!(counts.scalar_mul_ct_ct, 0);
    }

    #[test]
    fn rotations_are_counted_and_steps_collected() {
        let e = parse("(VecAdd (<< (Vec a b c d) 2) (>> (Vec a b c d) 1))").unwrap();
        let counts = count_ops(&e);
        assert_eq!(counts.rotations, 2);
        let steps = rotation_steps(&e);
        assert_eq!(steps.get(&2), Some(&1));
        assert_eq!(steps.get(&-1), Some(&1));
    }

    #[test]
    fn summary_is_consistent_with_individual_analyses() {
        let e = parse("(* (+ a b) (* c d))").unwrap();
        let s = summarize(&e);
        assert_eq!(s.depth, circuit_depth(&e));
        assert_eq!(s.multiplicative_depth, multiplicative_depth(&e));
        assert_eq!(s.ops, count_ops(&e));
        assert_eq!(s.nodes, e.node_count());
    }

    #[test]
    fn fully_vectorized_expression_has_no_scalar_ops() {
        let e = parse("(VecMul (VecAdd (Vec a b) (Vec c d)) (Vec e f))").unwrap();
        assert_eq!(count_ops(&e).scalar_ciphertext_ops(), 0);
        let scalar = parse("(* (+ a b) c)").unwrap();
        assert!(count_ops(&scalar).scalar_ciphertext_ops() > 0);
    }
}
