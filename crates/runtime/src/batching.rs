//! Cross-request SIMD batching: a request coalescer that packs many users
//! into one ciphertext.
//!
//! The serving engine spends one ciphertext per scalar request lane while
//! most BFV slots sit idle: a kernel touching a handful of slots wastes the
//! other ~16k of a `degree`-slot vector. This module adds the second level
//! of the two-level parallelization scheme (Bogdanov et al.): the dataflow
//! scheduler parallelizes *within* a request, and the [`RequestCoalescer`]
//! amortizes *across* requests by gathering compatible same-program
//! requests, packing their scalar inputs into disjoint slot **lanes** of
//! shared ciphertexts, executing the program once per batch, and scattering
//! per-user results back to each caller's own
//! [`RequestHandle`](crate::RequestHandle).
//!
//! # Why lane batching is exact
//!
//! Rotation in this runtime is **cyclic** (`slots[i] = a.slots[(i + step) %
//! n]`), so every scheduled instruction — slot-wise add/sub/neg/mul and
//! cyclic rotation — commutes with translating a user's data by a fixed
//! base offset, as long as no two users' *supports* ever overlap. The
//! [`lane_geometry`] analysis bounds, per register, the interval of slots a
//! user's data can occupy relative to its lane base (rotations shift the
//! interval, packs spread it, binary ops union it) and sizes the lane
//! stride to the global envelope: with stride `G` covering every
//! intermediate's excursion and `B <= n / G` lanes, the per-user windows
//! tile the slot vector without wrapping into each other, and batched
//! execution is **bit-identical per user** to running each request alone.
//!
//! # Batch formation
//!
//! [`BatchPolicy`] governs admission: a batch flushes when it reaches
//! `max_batch` requests, when the oldest member has lingered `max_linger`,
//! or — with a per-request `deadline` — early enough that no member misses
//! its deadline waiting for stragglers. Batch-size, linger-time and
//! lane-occupancy histograms are recorded into [`CoalescerStats`].

use crate::faults::CancellationToken;
use crate::schedule::{Instr, Schedule};
use crate::serving::DEFAULT_QUEUE_CAPACITY;
use crate::serving::{HandleShared, RequestHandle, ServingError, TrySubmitError};
use crate::telemetry::Histogram;
use std::collections::VecDeque;
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Admission policy of a [`RequestCoalescer`]: when a gathering batch stops
/// waiting for more requests and flushes to the executor.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BatchPolicy {
    /// Flush as soon as this many requests have gathered (clamped to at
    /// least 1).
    pub max_batch: usize,
    /// Flush once the *first* request of the batch has waited this long —
    /// the latency each request is willing to trade for amortization.
    pub max_linger: Duration,
    /// Optional per-request deadline (measured from submission): the batch
    /// flushes early enough that no gathered member exceeds it waiting.
    pub deadline: Option<Duration>,
}

impl Default for BatchPolicy {
    fn default() -> Self {
        BatchPolicy {
            max_batch: 16,
            max_linger: Duration::from_millis(2),
            deadline: None,
        }
    }
}

impl BatchPolicy {
    /// Replaces the batch-size bound.
    pub fn with_max_batch(mut self, max_batch: usize) -> Self {
        self.max_batch = max_batch.max(1);
        self
    }

    /// Replaces the linger bound.
    pub fn with_max_linger(mut self, max_linger: Duration) -> Self {
        self.max_linger = max_linger;
        self
    }

    /// Sets a per-request deadline.
    pub fn with_deadline(mut self, deadline: Duration) -> Self {
        self.deadline = Some(deadline);
        self
    }
}

/// The slot-lane layout one batched execution runs under: consecutive users
/// are placed `stride` slots apart, and `lanes` users share the ciphertext.
///
/// Executors receive this through `ExecResources::lanes` so the one
/// lane-sensitive instruction — run-time packing of *plaintext* elements —
/// can replicate each plaintext value into every live lane (every other
/// instruction is slot-wise or cyclic and needs no lane awareness at all).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LaneGeometry {
    /// Slots between consecutive lane bases (user `k` owns base `k *
    /// stride`).
    pub stride: usize,
    /// Live lanes in this execution: the actual batch size, not the
    /// capacity.
    pub lanes: usize,
}

impl LaneGeometry {
    /// The lane base of user `lane`.
    pub fn base(&self, lane: usize) -> usize {
        lane * self.stride
    }
}

/// Sizes the lane stride of a compiled schedule by bounding, per register,
/// the slot interval a user's data can occupy relative to its lane base.
///
/// `prebound_widths[slot]` is the structural width of each pre-bound
/// register (0 for slots instructions produce); `output_slots` is how many
/// slots of the output register the per-user scatter reads; `vector_slots`
/// is the ciphertext slot count `n`. The returned geometry's `lanes` field
/// is the **capacity** `max(1, n / stride)`.
///
/// The analysis walks the schedule in order, tracking per register a
/// conservative `[lo, hi]` support interval (relative to the lane base):
///
/// - pre-bound registers of width `w` occupy `[0, w-1]`;
/// - binary ops union their operands' intervals, negation copies;
/// - a rotation by cumulative step `s` shifts the interval by `-s`
///   (`rotate` moves the value at slot `j` to slot `j - s`), and every
///   realized interim step is folded into the envelope too;
/// - run-time packing places element `i` at displacement `+i`.
///
/// The global envelope is the union over all registers (plus `[0,
/// output_slots-1]` for the scatter); a stride of its span keeps every
/// user's every intermediate inside its own window, which is what makes
/// batched execution exact (see the module docs).
pub fn lane_geometry(
    schedule: &Schedule,
    prebound_widths: &[usize],
    output_slots: usize,
    vector_slots: usize,
) -> LaneGeometry {
    assert_eq!(
        prebound_widths.len(),
        schedule.slot_count(),
        "one width per register slot"
    );
    let mut intervals: Vec<(i64, i64)> = prebound_widths
        .iter()
        .map(|&w| (0, w.max(1) as i64 - 1))
        .collect();
    // The envelope starts at the scatter window plus every pre-bound
    // register actually bound (width >= 1).
    let mut env = (0i64, output_slots.max(1) as i64 - 1);
    let fold = |env: &mut (i64, i64), interval: (i64, i64)| {
        env.0 = env.0.min(interval.0);
        env.1 = env.1.max(interval.1);
    };
    for &w in prebound_widths.iter().filter(|&&w| w >= 1) {
        fold(&mut env, (0, w as i64 - 1));
    }
    for si in schedule.instrs() {
        let interval = match &si.instr {
            Instr::Bin { a, b, .. } => {
                let (alo, ahi) = intervals[*a];
                let (blo, bhi) = intervals[*b];
                (alo.min(blo), ahi.max(bhi))
            }
            Instr::Neg { a } => intervals[*a],
            Instr::Rot { a, parts } => {
                let (lo, hi) = intervals[*a];
                let mut cumulative = 0i64;
                let mut interim = (lo, hi);
                for part in parts {
                    cumulative += part;
                    interim = (lo - cumulative, hi - cumulative);
                    // Interim rotation results are materialized registers
                    // too: their excursions must stay inside the window.
                    fold(&mut env, interim);
                }
                interim
            }
            Instr::Pack { elems } => {
                let mut packed = (i64::MAX, i64::MIN);
                for (i, &elem) in elems.iter().enumerate() {
                    let (lo, hi) = intervals[elem];
                    packed.0 = packed.0.min(lo + i as i64);
                    packed.1 = packed.1.max(hi + i as i64);
                }
                if elems.is_empty() {
                    packed = (0, 0);
                }
                packed
            }
        };
        intervals[si.dst] = interval;
        fold(&mut env, interval);
    }
    let span = (env.1 - env.0 + 1).max(1) as usize;
    if span >= vector_slots {
        // Degenerate: one user needs (almost) the whole vector — no SIMD
        // sharing, but batched execution still works one lane at a time.
        return LaneGeometry {
            stride: vector_slots.max(1),
            lanes: 1,
        };
    }
    LaneGeometry {
        stride: span,
        lanes: (vector_slots / span).max(1),
    }
}

/// Sizing knobs of a [`RequestCoalescer`].
#[derive(Debug, Clone, Copy)]
pub struct CoalescerConfig {
    /// When a gathering batch flushes.
    pub policy: BatchPolicy,
    /// Gather workers forming and executing batches concurrently (clamped
    /// to at least 1). One worker keeps batches maximal; more trade
    /// occupancy for pipeline overlap.
    pub workers: usize,
    /// Maximum queued (submitted but not yet gathered) requests before
    /// [`RequestCoalescer::submit`] blocks.
    pub queue_capacity: usize,
    /// Lane capacity of the executor (users one ciphertext can carry),
    /// denominating the lane-occupancy histogram.
    pub lane_capacity: usize,
}

impl Default for CoalescerConfig {
    fn default() -> Self {
        let policy = BatchPolicy::default();
        CoalescerConfig {
            policy,
            workers: 1,
            queue_capacity: DEFAULT_QUEUE_CAPACITY,
            lane_capacity: policy.max_batch,
        }
    }
}

/// A point-in-time snapshot of one coalescer's batching counters.
#[derive(Debug, Clone)]
pub struct CoalescerStats {
    /// Requests accepted so far.
    pub submitted: u64,
    /// Requests whose batch has executed and scattered.
    pub completed: u64,
    /// Batches flushed to the executor.
    pub batches_formed: u64,
    /// Batch-size distribution (recorded as raw counts, not durations).
    pub batch_size: Histogram,
    /// How long each flushed batch's first request lingered gathering.
    pub linger: Histogram,
    /// Lane occupancy per batch, in percent of
    /// [`CoalescerConfig::lane_capacity`] (recorded as raw percentages).
    pub lane_occupancy: Histogram,
    /// Batches whose handler panicked (or miscounted results) and were
    /// re-tried member by member.
    pub batch_panics: u64,
    /// Solo re-executions run while isolating a poisoned batch's offender.
    pub solo_retries: u64,
    /// Wall-clock since the coalescer started.
    pub elapsed: Duration,
}

impl CoalescerStats {
    /// Mean batch size across flushed batches, if any flushed.
    pub fn mean_batch_size(&self) -> Option<f64> {
        self.batch_size.mean().map(|m| m.as_nanos() as f64)
    }
}

/// Accumulating side of [`CoalescerStats`], updated by the gather workers.
#[derive(Default)]
struct StatsAgg {
    completed: u64,
    batches_formed: u64,
    batch_size: Histogram,
    linger: Histogram,
    lane_occupancy: Histogram,
    batch_panics: u64,
    solo_retries: u64,
}

/// One queued request: id, payload, result cell, and submission time (for
/// deadline-aware flushing).
struct BatchJob<T, R> {
    id: u64,
    request: T,
    handle: Arc<HandleShared<R>>,
    enqueued: Instant,
}

struct BatchQueue<T, R> {
    queue: VecDeque<BatchJob<T, R>>,
    shutting_down: bool,
    submitted: u64,
}

struct CoalescerShared<T, R> {
    state: Mutex<BatchQueue<T, R>>,
    /// Signals gather workers that the queue gained a job (or shutdown).
    not_empty: Condvar,
    /// Signals blocked submitters that the queue lost jobs.
    not_full: Condvar,
    stats: Mutex<StatsAgg>,
    policy: BatchPolicy,
    queue_capacity: usize,
    lane_capacity: usize,
    started: Instant,
}

/// The request coalescer: gathers compatible requests under a
/// [`BatchPolicy`], hands each flushed batch to one shared batch handler
/// (for FHE serving, a closure over `FheSession::run_batched` — see
/// `chehab_core::FheSession::serve_batched`), and scatters the per-user
/// results to each caller's own [`RequestHandle`].
///
/// The handler receives the whole batch as `(request id, request)` pairs
/// and must return exactly one result per request, in order. A panicking
/// (or miscounting) handler poisons the batch, but the members are not
/// abandoned wholesale: each one is retried **solo** exactly once, so only
/// the offending request's waiters re-raise while innocent batch-mates
/// still get their results (the gather worker survives either way).
/// Dropping a coalescer shuts it down gracefully (drains queued work,
/// joins workers); call [`RequestCoalescer::shutdown`] to also retrieve
/// the final stats.
pub struct RequestCoalescer<T, R> {
    shared: Arc<CoalescerShared<T, R>>,
    workers: Vec<JoinHandle<()>>,
}

impl<T, R> std::fmt::Debug for RequestCoalescer<T, R> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RequestCoalescer")
            .field("workers", &self.workers.len())
            .field("policy", &self.shared.policy)
            .finish_non_exhaustive()
    }
}

impl<T: Clone + Send + 'static, R: Send + 'static> RequestCoalescer<T, R> {
    /// Starts a coalescer: spawns `config.workers` gather threads that form
    /// batches under `config.policy` and execute them through `handler`.
    ///
    /// Requests must be `Clone` so that a poisoned batch can be re-tried
    /// member by member (see the type-level docs on panic isolation).
    pub fn new<F>(config: CoalescerConfig, handler: F) -> Self
    where
        F: Fn(Vec<(u64, T)>) -> Vec<R> + Send + Sync + 'static,
    {
        let shared = Arc::new(CoalescerShared {
            state: Mutex::new(BatchQueue {
                queue: VecDeque::new(),
                shutting_down: false,
                submitted: 0,
            }),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
            stats: Mutex::new(StatsAgg::default()),
            policy: BatchPolicy {
                max_batch: config.policy.max_batch.max(1),
                ..config.policy
            },
            queue_capacity: config.queue_capacity.max(1),
            lane_capacity: config.lane_capacity.max(1),
            started: Instant::now(),
        });
        let handler = Arc::new(handler);
        let workers = (0..config.workers.max(1))
            .map(|_| {
                let shared = Arc::clone(&shared);
                let handler = Arc::clone(&handler);
                std::thread::spawn(move || gather_loop(&shared, &*handler))
            })
            .collect();
        RequestCoalescer { shared, workers }
    }
}

impl<T, R> RequestCoalescer<T, R> {
    /// Enqueues one request and returns its handle. Blocks while the queue
    /// is at capacity (back-pressure on producers).
    ///
    /// # Errors
    ///
    /// [`ServingError::ShutDown`] once shutdown has started.
    pub fn submit(&self, request: T) -> Result<RequestHandle<R>, ServingError> {
        let mut state = self.shared.state.lock().unwrap();
        loop {
            if state.shutting_down {
                return Err(ServingError::ShutDown);
            }
            if state.queue.len() < self.shared.queue_capacity {
                break;
            }
            state = self.shared.not_full.wait(state).unwrap();
        }
        Ok(self.enqueue(state, request))
    }

    /// Non-blocking submission: hands the request back instead of waiting
    /// on a full queue, so overload policy stays with the caller.
    ///
    /// # Errors
    ///
    /// [`TrySubmitError::ShutDown`] once shutdown has started,
    /// [`TrySubmitError::QueueFull`] while the queue is at capacity; both
    /// carry the request back.
    pub fn try_submit(&self, request: T) -> Result<RequestHandle<R>, TrySubmitError<T>> {
        let state = self.shared.state.lock().unwrap();
        if state.shutting_down {
            return Err(TrySubmitError::ShutDown(request));
        }
        if state.queue.len() >= self.shared.queue_capacity {
            return Err(TrySubmitError::QueueFull(request));
        }
        Ok(self.enqueue(state, request))
    }

    fn enqueue(
        &self,
        mut state: std::sync::MutexGuard<'_, BatchQueue<T, R>>,
        request: T,
    ) -> RequestHandle<R> {
        let id = state.submitted;
        state.submitted += 1;
        let handle = HandleShared::new();
        state.queue.push_back(BatchJob {
            id,
            request,
            handle: Arc::clone(&handle),
            enqueued: Instant::now(),
        });
        drop(state);
        self.shared.not_empty.notify_one();
        // Lane-batched execution cannot cancel one member mid-flight (its
        // slots are packed into the shared ciphertext), so the token only
        // carries the policy deadline for observability.
        let token = match self.shared.policy.deadline {
            Some(deadline) => CancellationToken::deadline_in(deadline),
            None => CancellationToken::new(),
        };
        RequestHandle::from_shared(id, handle, token)
    }

    /// A point-in-time snapshot of the coalescer's batching counters.
    pub fn stats(&self) -> CoalescerStats {
        let submitted = self.shared.state.lock().unwrap().submitted;
        let agg = self.shared.stats.lock().unwrap();
        CoalescerStats {
            submitted,
            completed: agg.completed,
            batches_formed: agg.batches_formed,
            batch_size: agg.batch_size.clone(),
            linger: agg.linger.clone(),
            lane_occupancy: agg.lane_occupancy.clone(),
            batch_panics: agg.batch_panics,
            solo_retries: agg.solo_retries,
            elapsed: self.shared.started.elapsed(),
        }
    }

    /// Stops intake, flushes and executes everything already queued, joins
    /// the gather workers, and returns the final stats. Concurrent
    /// submitters receive [`ServingError::ShutDown`].
    pub fn shutdown(mut self) -> CoalescerStats {
        self.halt();
        self.stats()
    }

    /// Idempotent part of shutdown: flips the flag, wakes everyone, joins.
    fn halt(&mut self) {
        self.shared.state.lock().unwrap().shutting_down = true;
        self.shared.not_empty.notify_all();
        self.shared.not_full.notify_all();
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

impl<T, R> Drop for RequestCoalescer<T, R> {
    fn drop(&mut self) {
        self.halt();
    }
}

/// One gather worker: wait for a first request, linger for companions under
/// the policy, execute the flushed batch, scatter, repeat. Shutdown flushes
/// the gathering batch immediately and drains the queue before exiting.
fn gather_loop<T: Clone, R>(
    shared: &CoalescerShared<T, R>,
    handler: &(dyn Fn(Vec<(u64, T)>) -> Vec<R> + Send + Sync),
) {
    let policy = shared.policy;
    loop {
        let mut state = shared.state.lock().unwrap();
        // Wait for the batch's first request (or for shutdown + drained).
        let first = loop {
            if let Some(job) = state.queue.pop_front() {
                break job;
            }
            if state.shutting_down {
                return;
            }
            state = shared.not_empty.wait(state).unwrap();
        };
        let gather_start = Instant::now();
        // The batch must flush early enough that no member overshoots its
        // deadline waiting; the linger clock runs from the first member.
        let mut flush_by = gather_start + policy.max_linger;
        let deadline_of = |job: &BatchJob<T, R>| policy.deadline.map(|d| job.enqueued + d);
        if let Some(deadline) = deadline_of(&first) {
            flush_by = flush_by.min(deadline);
        }
        let mut batch = vec![first];
        while batch.len() < policy.max_batch {
            while batch.len() < policy.max_batch {
                let Some(job) = state.queue.pop_front() else {
                    break;
                };
                if let Some(deadline) = deadline_of(&job) {
                    flush_by = flush_by.min(deadline);
                }
                batch.push(job);
            }
            if batch.len() >= policy.max_batch || state.shutting_down {
                break;
            }
            let now = Instant::now();
            if now >= flush_by {
                break;
            }
            let (next, timeout) = shared
                .not_empty
                .wait_timeout(state, flush_by - now)
                .unwrap();
            state = next;
            if timeout.timed_out() && state.queue.is_empty() {
                break;
            }
        }
        drop(state);
        shared.not_full.notify_all();

        let linger = gather_start.elapsed();
        let size = batch.len();
        {
            let mut agg = shared.stats.lock().unwrap();
            agg.batches_formed += 1;
            agg.batch_size.record_nanos(size as u64);
            agg.linger.record(linger);
            agg.lane_occupancy
                .record_nanos((100 * size.min(shared.lane_capacity) / shared.lane_capacity) as u64);
        }

        let mut handles = Vec::with_capacity(size);
        let mut requests = Vec::with_capacity(size);
        for job in batch {
            handles.push(job.handle);
            requests.push((job.id, job.request));
        }
        // A panicking (or miscounting) handler poisons the whole batch:
        // every member's inputs shared the ciphertext, so no member has a
        // trustworthy result. Keep a clone around (only when a retry is
        // meaningful, i.e. the batch has companions) so survivors can be
        // re-run solo and only the offender's waiters re-raise.
        let retry_pool: Option<Vec<(u64, T)>> = (size > 1).then(|| requests.clone());
        let results = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| handler(requests)))
            .ok()
            .filter(|results| results.len() == handles.len());
        match results {
            Some(results) => {
                for (handle, result) in handles.iter().zip(results) {
                    handle.fulfill(Some(result));
                }
            }
            None => {
                shared.stats.lock().unwrap().batch_panics += 1;
                match retry_pool {
                    Some(solo_requests) => {
                        // Isolate the offender: each member runs alone,
                        // exactly once, under its own unwind guard.
                        for (handle, (id, request)) in handles.iter().zip(solo_requests) {
                            shared.stats.lock().unwrap().solo_retries += 1;
                            let solo =
                                std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                                    handler(vec![(id, request)])
                                }))
                                .ok()
                                .filter(|results| results.len() == 1);
                            handle.fulfill(solo.map(|mut results| {
                                results.pop().expect("filtered to exactly one result")
                            }));
                        }
                    }
                    // A solo batch already isolates its offender: poison it.
                    None => handles[0].fulfill(None),
                }
            }
        }
        shared.stats.lock().unwrap().completed += size as u64;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schedule::{data_kinds, lower_with_default_costs};
    use chehab_ir::{parse, CircuitDag, DagNode, DataKind};
    use std::sync::atomic::{AtomicUsize, Ordering};

    fn doubling_coalescer(policy: BatchPolicy, capacity: usize) -> RequestCoalescer<u64, u64> {
        RequestCoalescer::new(
            CoalescerConfig {
                policy,
                workers: 1,
                queue_capacity: capacity,
                lane_capacity: policy.max_batch,
            },
            |requests| requests.into_iter().map(|(_, v)| v * 2).collect(),
        )
    }

    #[test]
    fn scatters_each_users_own_result() {
        let coalescer = doubling_coalescer(BatchPolicy::default().with_max_batch(4), 64);
        let handles: Vec<_> = (0..10).map(|v| coalescer.submit(v).unwrap()).collect();
        for (v, handle) in handles.into_iter().enumerate() {
            assert_eq!(handle.id(), v as u64);
            assert_eq!(handle.wait(), v as u64 * 2);
        }
        let stats = coalescer.shutdown();
        assert_eq!(stats.submitted, 10);
        assert_eq!(stats.completed, 10);
        assert!(stats.batches_formed >= 3, "max_batch 4 forces >= 3 batches");
        assert_eq!(stats.batch_size.count(), stats.batches_formed);
        assert!(stats.batch_size.max().unwrap() <= Duration::from_nanos(4));
        assert_eq!(stats.lane_occupancy.count(), stats.batches_formed);
    }

    #[test]
    fn full_batches_flush_without_waiting_out_the_linger() {
        // A generous linger must not delay a batch that is already full.
        let coalescer = doubling_coalescer(
            BatchPolicy::default()
                .with_max_batch(2)
                .with_max_linger(Duration::from_secs(60)),
            64,
        );
        let a = coalescer.submit(3).unwrap();
        let b = coalescer.submit(4).unwrap();
        assert_eq!(a.wait(), 6);
        assert_eq!(b.wait(), 8);
        let stats = coalescer.shutdown();
        assert!(stats.linger.max().unwrap() < Duration::from_secs(10));
    }

    #[test]
    fn linger_flushes_a_partial_batch() {
        let coalescer = doubling_coalescer(
            BatchPolicy::default()
                .with_max_batch(64)
                .with_max_linger(Duration::from_millis(5)),
            64,
        );
        let handle = coalescer.submit(21).unwrap();
        // No companions ever arrive: the linger timer alone must flush.
        assert_eq!(handle.wait(), 42);
        let stats = coalescer.shutdown();
        assert_eq!(stats.batches_formed, 1);
        assert_eq!(stats.batch_size.max(), Some(Duration::from_nanos(1)));
    }

    #[test]
    fn deadline_beats_a_longer_linger() {
        let coalescer = doubling_coalescer(
            BatchPolicy::default()
                .with_max_batch(64)
                .with_max_linger(Duration::from_secs(60))
                .with_deadline(Duration::from_millis(5)),
            64,
        );
        let started = Instant::now();
        let handle = coalescer.submit(5).unwrap();
        assert_eq!(handle.wait(), 10);
        assert!(
            started.elapsed() < Duration::from_secs(30),
            "deadline must flush long before the linger"
        );
        coalescer.shutdown();
    }

    #[test]
    fn try_submit_sheds_load_on_a_full_queue() {
        // Gate the single gather worker so the queue backs up.
        let gate = Arc::new(Mutex::new(()));
        let guard = gate.lock().unwrap();
        let handler_gate = Arc::clone(&gate);
        let coalescer: RequestCoalescer<u32, u32> = RequestCoalescer::new(
            CoalescerConfig {
                policy: BatchPolicy::default().with_max_batch(1),
                workers: 1,
                queue_capacity: 1,
                lane_capacity: 1,
            },
            move |requests| {
                drop(handler_gate.lock().unwrap());
                requests.into_iter().map(|(_, v)| v + 1).collect()
            },
        );
        let first = coalescer.submit(1).unwrap();
        // Wait until the gather worker owns the first job, then fill the
        // queue back up to capacity.
        while !coalescer.shared.state.lock().unwrap().queue.is_empty() {
            std::thread::sleep(Duration::from_millis(1));
        }
        let second = coalescer.try_submit(2).expect("queue has room");
        let rejected = coalescer.try_submit(3).expect_err("queue is at capacity");
        assert_eq!(rejected, TrySubmitError::QueueFull(3));
        assert_eq!(rejected.into_request(), 3);
        drop(guard);
        assert_eq!(first.wait(), 2);
        assert_eq!(second.wait(), 3);
        let mut coalescer = coalescer;
        coalescer.halt();
        assert_eq!(
            coalescer.try_submit(9).unwrap_err(),
            TrySubmitError::ShutDown(9)
        );
    }

    #[test]
    fn batch_poison_retries_survivors_solo_and_fails_only_the_offender() {
        let calls = Arc::new(AtomicUsize::new(0));
        let counter = Arc::clone(&calls);
        let coalescer: RequestCoalescer<u32, u32> = RequestCoalescer::new(
            CoalescerConfig {
                policy: BatchPolicy::default()
                    .with_max_batch(2)
                    .with_max_linger(Duration::from_millis(1)),
                workers: 1,
                queue_capacity: 8,
                lane_capacity: 2,
            },
            move |requests| {
                counter.fetch_add(1, Ordering::Relaxed);
                assert!(!requests.iter().any(|&(_, v)| v == 13), "unlucky batch");
                requests.into_iter().map(|(_, v)| v).collect()
            },
        );
        let bad = coalescer.submit(13).unwrap();
        let survivor = coalescer.submit(7).unwrap();
        // The batched run panics; each member is retried solo. Only the
        // offender's waiter re-raises — the innocent batch-mate still gets
        // its result, and the gather worker survives.
        let reraised = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| bad.wait()));
        assert!(reraised.is_err(), "the offending request re-raises");
        assert_eq!(survivor.wait(), 7);
        let good = coalescer.submit(4).unwrap();
        assert_eq!(good.wait(), 4);
        // One poisoned batch run + two solo retries + the follow-up batch.
        assert!(calls.load(Ordering::Relaxed) >= 4);
        let stats = coalescer.shutdown();
        assert_eq!(stats.completed, 3);
        assert_eq!(stats.batch_panics, 1);
        assert_eq!(stats.solo_retries, 2);
    }

    #[test]
    fn solo_batches_fail_fast_without_a_pointless_retry() {
        let calls = Arc::new(AtomicUsize::new(0));
        let counter = Arc::clone(&calls);
        let coalescer: RequestCoalescer<u32, u32> = RequestCoalescer::new(
            CoalescerConfig {
                policy: BatchPolicy::default()
                    .with_max_batch(1)
                    .with_max_linger(Duration::from_millis(1)),
                workers: 1,
                queue_capacity: 8,
                lane_capacity: 1,
            },
            move |_| {
                counter.fetch_add(1, Ordering::Relaxed);
                panic!("always poisoned")
            },
        );
        let doomed = coalescer.submit(1).unwrap();
        let reraised = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| doomed.wait()));
        assert!(reraised.is_err());
        // Wait until the worker has recorded the poisoned batch before
        // asserting on the counters.
        while coalescer.stats().batch_panics < 1 {
            std::thread::sleep(Duration::from_millis(1));
        }
        assert_eq!(
            calls.load(Ordering::Relaxed),
            1,
            "no solo retry of a solo batch"
        );
        let stats = coalescer.shutdown();
        assert_eq!(stats.solo_retries, 0);
    }

    #[test]
    fn adversarial_bursts_fill_batches_while_all_results_stay_exact() {
        // Open-loop bursts: 4 bursts of 8 arrive faster than the worker can
        // drain, separated by pauses longer than the linger. Every request
        // must still get its own doubled value.
        let coalescer = doubling_coalescer(
            BatchPolicy::default()
                .with_max_batch(8)
                .with_max_linger(Duration::from_millis(2)),
            256,
        );
        let mut handles = Vec::new();
        for burst in 0..4u64 {
            for i in 0..8u64 {
                handles.push((burst * 8 + i, coalescer.submit(burst * 8 + i).unwrap()));
            }
            std::thread::sleep(Duration::from_millis(6));
        }
        for (v, handle) in handles {
            assert_eq!(handle.wait(), v * 2);
        }
        let stats = coalescer.shutdown();
        assert_eq!(stats.completed, 32);
        assert!(
            stats.batches_formed >= 4,
            "bursts separated by > linger cannot share one batch"
        );
        assert_eq!(stats.batch_size.count(), stats.batches_formed);
    }

    #[test]
    fn adversarial_slow_trickle_pays_at_most_the_linger_per_request() {
        // A trickle slower than the linger: every batch flushes solo after
        // its full linger, and no request waits on a companion that never
        // comes.
        let linger = Duration::from_millis(3);
        let coalescer = doubling_coalescer(
            BatchPolicy::default()
                .with_max_batch(16)
                .with_max_linger(linger),
            64,
        );
        for v in 0..5u64 {
            let submitted = Instant::now();
            let handle = coalescer.submit(v).unwrap();
            assert_eq!(handle.wait(), v * 2);
            assert!(
                submitted.elapsed() < linger + Duration::from_secs(2),
                "a trickle request must not wait unboundedly for companions"
            );
            std::thread::sleep(linger * 2);
        }
        let stats = coalescer.shutdown();
        assert_eq!(
            stats.batches_formed, 5,
            "each trickle request flushes alone"
        );
        assert_eq!(stats.batch_size.max(), Some(Duration::from_nanos(1)));
    }

    #[test]
    fn adversarial_deadline_skew_flushes_by_the_tightest_member() {
        // The first member has burned most of its deadline budget before a
        // late companion arrives; the batch must flush by the *earliest*
        // absolute deadline, not restart the clock per member.
        let coalescer = doubling_coalescer(
            BatchPolicy::default()
                .with_max_batch(64)
                .with_max_linger(Duration::from_secs(60))
                .with_deadline(Duration::from_millis(40)),
            64,
        );
        let started = Instant::now();
        let old = coalescer.submit(1).unwrap();
        std::thread::sleep(Duration::from_millis(10));
        let young = coalescer.submit(2).unwrap();
        assert_eq!(old.wait(), 2);
        assert_eq!(young.wait(), 4);
        assert!(
            started.elapsed() < Duration::from_secs(30),
            "the old member's deadline must flush the batch long before the linger"
        );
        let stats = coalescer.shutdown();
        assert_eq!(stats.batches_formed, 1, "the young member rides along");
        coalescer_deadline_sanity(&stats);
    }

    /// Shared sanity assertions for deadline-policy tests.
    fn coalescer_deadline_sanity(stats: &CoalescerStats) {
        assert_eq!(stats.batch_panics, 0);
        assert_eq!(stats.solo_retries, 0);
        assert_eq!(stats.submitted, stats.completed);
    }

    #[test]
    fn shutdown_drains_queued_requests() {
        let coalescer = doubling_coalescer(
            BatchPolicy::default()
                .with_max_batch(4)
                .with_max_linger(Duration::from_secs(60)),
            64,
        );
        // Fewer than max_batch queued, linger effectively infinite: only
        // the shutdown flush can complete these.
        let handles: Vec<_> = (0..3).map(|v| coalescer.submit(v).unwrap()).collect();
        let stats = coalescer.shutdown();
        assert_eq!(stats.completed, 3);
        for (v, handle) in handles.into_iter().enumerate() {
            assert_eq!(handle.try_poll(), Some(v as u64 * 2));
        }
    }

    /// Mirrors the compiler's default client-side layout (as in the
    /// schedule tests): leaves, plaintext subcircuits, and leaf-only
    /// vectors are pre-bound.
    fn client_prebound(dag: &CircuitDag) -> Vec<bool> {
        let kinds = data_kinds(dag);
        dag.nodes()
            .iter()
            .enumerate()
            .map(|(id, n)| {
                n.is_leaf()
                    || kinds[id] == DataKind::Plaintext
                    || matches!(n, DagNode::Vec(elems)
                        if elems.iter().all(|&e| dag.nodes()[e].is_leaf()))
            })
            .collect()
    }

    fn structural_width(dag: &CircuitDag, id: usize, widths: &mut Vec<usize>) -> usize {
        if widths[id] != 0 {
            return widths[id];
        }
        let w = match &dag.nodes()[id] {
            DagNode::CtVar(_) | DagNode::PtVar(_) | DagNode::Const(_) => 1,
            DagNode::Vec(elems) => elems.len().max(1),
            node => node
                .operands()
                .into_iter()
                .map(|op| structural_width(dag, op, widths))
                .max()
                .unwrap_or(1),
        };
        widths[id] = w;
        w
    }

    fn geometry_of(source: &str, output_slots: usize, vector_slots: usize) -> LaneGeometry {
        let expr = parse(source).unwrap();
        let dag = CircuitDag::from_expr(&expr).eliminate_dead_code();
        let prebound = client_prebound(&dag);
        let schedule = lower_with_default_costs(&dag, &prebound, |step| vec![step]);
        let mut widths = vec![0usize; dag.len()];
        let prebound_widths: Vec<usize> = (0..dag.len())
            .map(|id| {
                if prebound[id] {
                    structural_width(&dag, id, &mut widths)
                } else {
                    0
                }
            })
            .collect();
        lane_geometry(&schedule, &prebound_widths, output_slots, vector_slots)
    }

    #[test]
    fn rotation_free_kernels_get_width_sized_lanes() {
        // Width-2 vectors, no rotations: the envelope is [0, 1], so the
        // stride is 2 and half the slots' worth of users fit.
        let geometry = geometry_of("(VecAdd (Vec a b) (Vec c d))", 2, 1024);
        assert_eq!(geometry.stride, 2);
        assert_eq!(geometry.lanes, 512);
    }

    #[test]
    fn rotations_widen_the_stride_by_their_excursion() {
        // rotate(x, 3) moves slot j to j - 3: the envelope grows to
        // [-3, 3] and the stride to 7.
        let geometry = geometry_of("(<< (VecMul (Vec a b c d) (Vec e f g h)) 3)", 4, 1024);
        assert_eq!(geometry.stride, 7);
        assert_eq!(geometry.lanes, 1024 / 7);
    }

    #[test]
    fn degenerate_envelopes_fall_back_to_one_lane() {
        let geometry = geometry_of("(<< (VecMul (Vec a b c d) (Vec e f g h)) 3)", 4, 4);
        assert_eq!(geometry.lanes, 1);
        assert_eq!(geometry.stride, 4);
    }
}
