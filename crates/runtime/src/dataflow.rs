//! The dataflow executor: dependency-counting, work-stealing, barrier-free
//! execution of instruction schedules.
//!
//! The [`WavefrontExecutor`](crate::WavefrontExecutor) synchronizes workers
//! with a barrier between topological levels, so every level pays for its
//! slowest instruction — `ExecutionReport::timing.levels` shows that slack
//! directly on uneven levels (a level with one ct-ct multiplication and
//! thirty additions idles most of the pool for the multiplication's whole
//! span). The [`DataflowExecutor`] removes the barriers: [`Schedule::lower`]
//! emits each instruction's remaining-dependency count and dependent list
//! (the transpose of the operand graph), and an instruction becomes runnable
//! the instant its last operand is written.
//!
//! Scheduling follows the classic work-stealing shape:
//!
//! - each worker owns a **local deque**, kept sorted by critical-path
//!   priority: instructions a worker makes ready go to its own deque first
//!   (the operands are hot in its cache);
//! - a shared **injector** heap seeds the initially-ready instructions;
//! - an idle worker pops its own deque from the front (highest priority),
//!   then the injector, then **steals** from the back of the richest
//!   victim's deque (lowest-priority entry — the one the victim would run
//!   last), counting every steal;
//! - ready order is *critical-path-first*: priorities are the longest
//!   remaining dependency chain under a cost table
//!   ([`Schedule::critical_path_priorities`]), so the instructions that gate
//!   the most downstream work run first. Sessions recompute priorities from
//!   the accumulated [`CalibratedCostModel`] — the timer-augmented cost
//!   function of McDoniel & Bientinesi applied to ready-queue ordering.
//!
//! Intra-op parallelism composes dynamically: when fewer instructions are
//! ready than the pool has threads, the spare threads flow into the heavy
//! ready instructions' payload loops ([`dynamic_intra_op_grant`]), clamped
//! so outstanding grants plus the ready-queue width never oversubscribe the
//! pool.
//!
//! Results are bit-identical to sequential execution at every worker count
//! and steal order: every homomorphic operation is a pure function of its
//! operands, and a register is written exactly once before any dependent
//! reads it.

use crate::calibrate::CalibratedCostModel;
use crate::exec::{
    dispatch_instr, publish_and_reap, validate_operands, ExecResources, Register, RegisterFile,
    SchedulerKind, TimingBreakdown, WavefrontOutcome,
};
use crate::schedule::Schedule;
use crate::telemetry::TraceBuffer;
use chehab_fhe::{Evaluator, EvaluatorStats, FheError};
use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};
use std::time::{Duration, Instant};

/// The intra-op worker budget of one instruction popped from the ready
/// queue, clamped so the pool is never oversubscribed: `outstanding` threads
/// are already granted to in-flight instructions, and `ready` queued
/// instructions are each about to claim at least one thread, so this
/// instruction may use what is left (never less than one).
///
/// The clamp matters on small hosts: on the 1-CPU build machine an
/// oversubscribed pool shows up as a measured regression (context-switch
/// thrash inside payload loops), not as noise.
pub fn dynamic_intra_op_grant(pool: usize, outstanding: usize, ready: usize) -> usize {
    pool.max(1).saturating_sub(outstanding + ready).max(1)
}

/// A ready instruction travelling through the scheduler queues.
#[derive(Debug, Clone, Copy)]
struct Ready {
    /// Critical-path priority (longest remaining dependency chain).
    priority: f64,
    /// Index into [`Schedule::instrs`].
    index: usize,
    /// When the last dependency was satisfied (queue-wait epoch).
    since: Instant,
}

/// Scheduler state shared by every worker, behind one mutex: per-worker
/// local deques, the injector, dependency counters and the grant ledger.
/// FHE instructions cost tens of microseconds to milliseconds, so one
/// uncontended lock per pop/complete is noise; correctness (no lost
/// wakeups, exact grant accounting) is what matters here.
struct SchedState {
    /// Per-worker local deques, each sorted by descending priority (owners
    /// pop the front, thieves steal the back).
    locals: Vec<VecDeque<Ready>>,
    /// Initially-ready instructions, shared by everyone.
    injector: Vec<Ready>,
    /// Remaining-dependency count per instruction.
    pending: Vec<usize>,
    /// Instructions not yet completed (termination condition).
    remaining: usize,
    /// Ready instructions currently queued anywhere.
    ready_count: usize,
    /// Intra-op threads currently granted to in-flight instructions.
    granted: usize,
    /// Ready instructions taken from another worker's local deque.
    steals: u64,
    /// Set when a worker hit an error: everyone drains and exits.
    abort: bool,
    failure: Option<FheError>,
}

impl SchedState {
    /// Pops the next instruction for `worker`: own deque front, then the
    /// injector (highest priority), then a steal from the back of the
    /// richest victim's deque. The second element is the steal provenance:
    /// `Some(victim)` when the instruction was taken from another worker's
    /// deque, `None` for own/injector pops — recorded on trace spans.
    fn pop(&mut self, worker: usize) -> Option<(Ready, Option<usize>)> {
        if let Some(ready) = self.locals[worker].pop_front() {
            return Some((ready, None));
        }
        if !self.injector.is_empty() {
            // The injector is kept sorted ascending; the best is at the end.
            return self.injector.pop().map(|ready| (ready, None));
        }
        let victim = self
            .locals
            .iter()
            .enumerate()
            .filter(|(v, deque)| *v != worker && !deque.is_empty())
            .max_by(|(a_idx, a), (b_idx, b)| a.len().cmp(&b.len()).then(b_idx.cmp(a_idx)))
            .map(|(v, _)| v)?;
        self.steals += 1;
        self.locals[victim]
            .pop_back()
            .map(|ready| (ready, Some(victim)))
    }

    /// Inserts a newly-ready instruction into `worker`'s deque, keeping it
    /// sorted by descending priority (front = next to run).
    fn push_local(&mut self, worker: usize, ready: Ready) {
        let deque = &mut self.locals[worker];
        let pos = deque
            .iter()
            .position(|r| {
                (r.priority, ready.index).partial_cmp(&(ready.priority, r.index))
                    == Some(std::cmp::Ordering::Less)
            })
            .unwrap_or(deque.len());
        deque.insert(pos, ready);
        self.ready_count += 1;
    }
}

/// Executes instruction schedules barrier-free on a pool of worker threads,
/// dependency counts deciding readiness and work stealing deciding
/// placement. Drop-in alternative to
/// [`WavefrontExecutor`](crate::WavefrontExecutor) with bit-identical
/// outputs.
#[derive(Debug, Clone, Copy)]
pub struct DataflowExecutor {
    threads: usize,
}

impl DataflowExecutor {
    /// Creates an executor with the given worker-thread count (clamped to at
    /// least one).
    pub fn new(threads: usize) -> Self {
        DataflowExecutor {
            threads: threads.max(1),
        }
    }

    /// The configured worker-thread count.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Runs a schedule with critical-path priorities derived from the static
    /// cost estimates the schedule was lowered with. See
    /// [`DataflowExecutor::execute_with_priorities`] for the contract.
    ///
    /// # Errors
    ///
    /// Returns the first [`FheError`] any worker hit.
    pub fn execute(
        &self,
        schedule: &Schedule,
        initial: Vec<Option<Register>>,
        res: &ExecResources<'_>,
    ) -> Result<WavefrontOutcome, FheError> {
        self.execute_with_priorities(schedule, initial, res, &schedule.default_priorities())
    }

    /// Runs a schedule against a register file whose pre-bound slots are
    /// filled, popping ready instructions in descending `priorities` order
    /// (one entry per instruction, e.g. from
    /// [`Schedule::critical_path_priorities`] under a calibrated cost
    /// table).
    ///
    /// # Errors
    ///
    /// Returns the first [`FheError`] any worker hit; remaining work is
    /// abandoned (every in-flight instruction still completes).
    ///
    /// # Panics
    ///
    /// Panics if the schedule references a slot that is neither pre-bound
    /// nor produced by an earlier instruction, or if `priorities` is shorter
    /// than the instruction list. Both checks run up front on the calling
    /// thread.
    pub fn execute_with_priorities(
        &self,
        schedule: &Schedule,
        initial: Vec<Option<Register>>,
        res: &ExecResources<'_>,
        priorities: &[f64],
    ) -> Result<WavefrontOutcome, FheError> {
        assert_eq!(
            initial.len(),
            schedule.slot_count(),
            "register file size mismatch"
        );
        assert!(
            priorities.len() >= schedule.instrs().len(),
            "need one priority per instruction"
        );
        let mut rf = RegisterFile::new(initial, schedule);
        validate_operands(schedule, &rf);

        let n = schedule.instrs().len();
        // Unlike the leveled executor, the ready set can span levels, so the
        // useful worker bound is the instruction count, not the widest level.
        let workers = self.threads.min(n.max(1));
        // Dynamic intra-op grants only pay off when payloads are large
        // enough for the evaluator to actually split them. The split axis is
        // the whole `limb_count · degree` component stripe: a multi-limb
        // session splits limb-first (each chunk is one limb's coefficient
        // range) even when a single limb would stay below the threshold.
        let splittable = self.threads > 1
            && res.ctx.params().payload_degree * res.ctx.params().limb_count
                >= Evaluator::INTRA_OP_MIN_DEGREE;
        let started = Instant::now();
        let result = if n == 0 {
            Ok((EvaluatorStats::default(), TimingBreakdown::empty(workers)))
        } else if workers == 1 {
            self.execute_single(schedule, &rf, res, priorities, splittable)
        } else {
            // Grants draw on the full *requested* pool, not the clamped
            // worker count: a 3-instruction schedule under 8 threads still
            // has 8 threads' worth of cores to chunk payloads across.
            execute_parallel(
                schedule,
                &rf,
                res,
                priorities,
                workers,
                self.threads,
                splittable,
            )
        };

        // On success, take the output before sweeping the file; on failure
        // (error, cancellation, injected fault) leave it in place so the
        // sweep reclaims it too. Either way every register still held by the
        // file goes back to the pool — an aborted request must not leak its
        // buffers.
        let output = result.as_ref().ok().map(|_| {
            rf.take_output()
                .expect("output register is pre-bound or produced by the schedule")
        });
        let mut arena = res.arenas.checkout();
        rf.recycle_remaining(&mut arena);
        res.arenas.restore(arena);
        let (stats, mut timing) = result?;
        timing.wall = started.elapsed();
        if n > 0 {
            timing.reclaimed_slack = schedule
                .makespan(&timing.instr_times, workers)
                .saturating_sub(schedule.dataflow_makespan(&timing.instr_times, workers));
        }
        Ok(WavefrontOutcome {
            output: output.expect("output taken on the success path"),
            stats,
            timing,
        })
    }

    /// One worker, no queues to contend on: a priority-ordered topological
    /// walk. The whole requested pool chunks *inside* each heavy op — with a
    /// single instruction stream there is never a competing ready
    /// instruction to reserve threads for.
    fn execute_single(
        &self,
        schedule: &Schedule,
        rf: &RegisterFile,
        res: &ExecResources<'_>,
        priorities: &[f64],
        splittable: bool,
    ) -> Result<(EvaluatorStats, TimingBreakdown), FheError> {
        let n = schedule.instrs().len();
        let mut evaluator = Evaluator::with_arena(res.ctx, res.arenas.checkout());
        let grant = if splittable { self.threads } else { 1 };
        if splittable {
            evaluator.set_intra_op_threads(self.threads);
        }
        let mut tracer = res
            .trace
            .map(|sink| TraceBuffer::new(sink, "dataflow worker 0"));
        let mut calibration = CalibratedCostModel::new();
        let mut instr_times = vec![Duration::ZERO; n];
        let mut queue_waits = vec![Duration::ZERO; n];
        let mut pending = schedule.dep_counts().to_vec();
        let mut ready: Vec<Ready> = (0..n)
            .filter(|&i| pending[i] == 0)
            .map(|index| Ready {
                priority: priorities[index],
                index,
                since: Instant::now(),
            })
            .collect();
        let mut completed = 0usize;
        let mut failure: Option<FheError> = None;
        while let Some(pos) = best_ready(&ready) {
            let item = ready.swap_remove(pos);
            let si = &schedule.instrs()[item.index];
            let wait = item.since.elapsed();
            queue_waits[item.index] = wait;
            let instr_started = Instant::now();
            match dispatch_instr(si, rf, &mut evaluator, res, &mut calibration) {
                Ok(register) => {
                    let elapsed = instr_started.elapsed();
                    instr_times[item.index] = elapsed;
                    if let Some(tracer) = tracer.as_mut() {
                        tracer.record(
                            si.instr.label(),
                            "instr",
                            instr_started,
                            elapsed,
                            Some(item.index),
                            Some(wait),
                            Some(grant),
                            None,
                        );
                    }
                    publish_and_reap(rf, si, register, &mut evaluator);
                }
                Err(e) => {
                    failure = Some(e);
                    break;
                }
            }
            completed += 1;
            for &d in &schedule.dependents()[item.index] {
                pending[d] -= 1;
                if pending[d] == 0 {
                    ready.push(Ready {
                        priority: priorities[d],
                        index: d,
                        since: Instant::now(),
                    });
                }
            }
        }
        res.arenas.restore(evaluator.take_arena());
        if let Some(error) = failure {
            return Err(error);
        }
        assert_eq!(completed, n, "dataflow walk drained every instruction");
        let timing = TimingBreakdown {
            scheduler: SchedulerKind::Dataflow,
            threads: 1,
            levels: Vec::new(),
            wall: Duration::ZERO, // stamped by the caller
            per_op: calibration,
            instr_times,
            queue_waits,
            steals: 0,
            reclaimed_slack: Duration::ZERO, // stamped by the caller
            intra_op_splits: evaluator.intra_op_splits(),
        };
        Ok((evaluator.stats(), timing))
    }
}

/// The highest-priority entry of an unordered ready list (lowest index on
/// ties, for determinism).
fn best_ready(ready: &[Ready]) -> Option<usize> {
    ready
        .iter()
        .enumerate()
        .max_by(|(_, a), (_, b)| {
            a.priority
                .total_cmp(&b.priority)
                .then(b.index.cmp(&a.index))
        })
        .map(|(pos, _)| pos)
}

fn execute_parallel(
    schedule: &Schedule,
    rf: &RegisterFile,
    res: &ExecResources<'_>,
    priorities: &[f64],
    workers: usize,
    pool: usize,
    splittable: bool,
) -> Result<(EvaluatorStats, TimingBreakdown), FheError> {
    let n = schedule.instrs().len();
    let mut injector: Vec<Ready> = (0..n)
        .filter(|&i| schedule.dep_counts()[i] == 0)
        .map(|index| Ready {
            priority: priorities[index],
            index,
            since: Instant::now(),
        })
        .collect();
    // Ascending sort: `SchedState::pop` takes the best from the end.
    injector.sort_by(|a, b| {
        a.priority
            .total_cmp(&b.priority)
            .then(b.index.cmp(&a.index))
    });
    let ready_count = injector.len();
    let state = Mutex::new(SchedState {
        locals: (0..workers).map(|_| VecDeque::new()).collect(),
        injector,
        pending: schedule.dep_counts().to_vec(),
        remaining: n,
        ready_count,
        granted: 0,
        steals: 0,
        abort: false,
        failure: None,
    });
    let work_available = Condvar::new();
    type Merged = (EvaluatorStats, CalibratedCostModel, u64);
    let merged: Mutex<(Merged, Vec<Duration>, Vec<Duration>)> = Mutex::new((
        (EvaluatorStats::default(), CalibratedCostModel::new(), 0),
        vec![Duration::ZERO; n],
        vec![Duration::ZERO; n],
    ));

    std::thread::scope(|scope| {
        for worker in 0..workers {
            let state = &state;
            let work_available = &work_available;
            let merged = &merged;
            scope.spawn(move || {
                let mut evaluator = Evaluator::with_arena(res.ctx, res.arenas.checkout());
                let mut calibration = CalibratedCostModel::new();
                let mut tracer = res
                    .trace
                    .map(|sink| TraceBuffer::new(sink, format!("dataflow worker {worker}")));
                // (index, queue wait, run span) of every instruction this
                // worker executed.
                let mut timed: Vec<(usize, Duration, Duration)> = Vec::new();
                loop {
                    let popped = {
                        let mut st = state.lock().unwrap();
                        loop {
                            if st.abort || st.remaining == 0 {
                                break None;
                            }
                            if let Some((item, stolen_from)) = st.pop(worker) {
                                st.ready_count -= 1;
                                let grant = if splittable {
                                    dynamic_intra_op_grant(pool, st.granted, st.ready_count)
                                } else {
                                    1
                                };
                                st.granted += grant;
                                break Some((item, grant, stolen_from));
                            }
                            st = work_available.wait(st).unwrap();
                        }
                    };
                    let Some((item, grant, stolen_from)) = popped else {
                        break;
                    };

                    let si = &schedule.instrs()[item.index];
                    let wait = item.since.elapsed();
                    evaluator.set_intra_op_threads(grant);
                    let instr_started = Instant::now();
                    let result = dispatch_instr(si, rf, &mut evaluator, res, &mut calibration);
                    let span = instr_started.elapsed();

                    match result {
                        Ok(register) => {
                            if let Some(tracer) = tracer.as_mut() {
                                tracer.record(
                                    si.instr.label(),
                                    "instr",
                                    instr_started,
                                    span,
                                    Some(item.index),
                                    Some(wait),
                                    Some(grant),
                                    stolen_from,
                                );
                            }
                            publish_and_reap(rf, si, register, &mut evaluator);
                            timed.push((item.index, wait, span));
                            let mut st = state.lock().unwrap();
                            st.granted -= grant;
                            st.remaining -= 1;
                            for &d in &schedule.dependents()[item.index] {
                                st.pending[d] -= 1;
                                if st.pending[d] == 0 {
                                    st.push_local(
                                        worker,
                                        Ready {
                                            priority: priorities[d],
                                            index: d,
                                            since: Instant::now(),
                                        },
                                    );
                                }
                            }
                            // Every completion can end the run or expose
                            // stealable work; waking everyone is cheap at
                            // FHE-op granularity and can never lose a
                            // wakeup.
                            drop(st);
                            work_available.notify_all();
                        }
                        Err(e) => {
                            let mut st = state.lock().unwrap();
                            st.granted -= grant;
                            st.failure.get_or_insert(e);
                            st.abort = true;
                            drop(st);
                            work_available.notify_all();
                            break;
                        }
                    }
                }
                res.arenas.restore(evaluator.take_arena());
                let mut m = merged.lock().unwrap();
                m.0 .0.merge(&evaluator.stats());
                m.0 .1.merge(&calibration);
                m.0 .2 += evaluator.intra_op_splits();
                for (index, wait, span) in timed {
                    m.1[index] = span;
                    m.2[index] = wait;
                }
            });
        }
    });

    let state = state.into_inner().unwrap();
    if let Some(error) = state.failure {
        return Err(error);
    }
    assert_eq!(
        state.remaining, 0,
        "dataflow pool drained every instruction"
    );
    let ((stats, per_op, intra_op_splits), instr_times, queue_waits) = merged.into_inner().unwrap();
    Ok((
        stats,
        TimingBreakdown {
            scheduler: SchedulerKind::Dataflow,
            threads: workers,
            levels: Vec::new(),
            wall: Duration::ZERO, // stamped by the caller
            per_op,
            instr_times,
            queue_waits,
            steals: state.steals,
            reclaimed_slack: Duration::ZERO, // stamped by the caller
            intra_op_splits,
        },
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grant_is_clamped_by_outstanding_and_ready_width() {
        // A lone worker with an empty queue gets the whole pool.
        assert_eq!(dynamic_intra_op_grant(8, 0, 0), 8);
        // Queued ready instructions reserve a thread each.
        assert_eq!(dynamic_intra_op_grant(8, 0, 3), 5);
        // Outstanding grants are subtracted before granting more.
        assert_eq!(dynamic_intra_op_grant(8, 8, 0), 1);
        assert_eq!(dynamic_intra_op_grant(8, 5, 2), 1);
        // Never below one, even on degenerate pools.
        assert_eq!(dynamic_intra_op_grant(0, 0, 0), 1);
        assert_eq!(dynamic_intra_op_grant(1, 4, 9), 1);
    }

    #[test]
    fn grants_never_oversubscribe_the_pool() {
        // Simulate a sequence of pops: the ledger (outstanding) plus the new
        // grant never exceeds the pool unless the 1-thread floor forces it.
        for pool in 1..=16usize {
            let mut outstanding = 0usize;
            let mut grants = Vec::new();
            for ready in (0..pool * 2).rev() {
                let grant = dynamic_intra_op_grant(pool, outstanding, ready);
                assert!(
                    outstanding + grant <= pool || grant == 1,
                    "pool {pool}: grant {grant} with {outstanding} outstanding"
                );
                outstanding += grant;
                grants.push(grant);
            }
            assert!(grants.iter().all(|&g| g >= 1));
        }
    }

    #[test]
    fn local_deques_stay_priority_sorted_and_steals_take_the_back() {
        let mut st = SchedState {
            locals: vec![VecDeque::new(), VecDeque::new()],
            injector: Vec::new(),
            pending: Vec::new(),
            remaining: 3,
            ready_count: 0,
            granted: 0,
            steals: 0,
            abort: false,
            failure: None,
        };
        let at = Instant::now();
        for (priority, index) in [(1.0, 0), (5.0, 1), (3.0, 2)] {
            st.push_local(
                0,
                Ready {
                    priority,
                    index,
                    since: at,
                },
            );
        }
        // Owner pops the highest priority (no steal provenance)...
        let (item, stolen_from) = st.pop(0).unwrap();
        assert_eq!((item.index, stolen_from), (1, None));
        // ...a thief steals the lowest-priority entry from the back, and the
        // pop reports which victim it came from.
        let (item, stolen_from) = st.pop(1).unwrap();
        assert_eq!((item.index, stolen_from), (0, Some(0)));
        assert_eq!(st.steals, 1);
        // The owner keeps the middle entry.
        let (item, stolen_from) = st.pop(0).unwrap();
        assert_eq!((item.index, stolen_from), (2, None));
        assert_eq!(st.steals, 1);
        assert!(st.pop(0).is_none());
    }
}
