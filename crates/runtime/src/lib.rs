//! # chehab-runtime
//!
//! A two-level parallel execution runtime for compiled CHEHAB FHE circuits.
//!
//! The compile pipeline of the reproduction (DSL → IR → TRS/RL rewriting →
//! BFV codegen) produces a hash-consed circuit DAG that the seed executor
//! walked one operation at a time. This crate replaces that walk with a
//! runtime organized around two observations from the DSMC parallelization
//! literature that transfer directly to FHE serving:
//!
//! 1. **Two-level parallelism** (after Bogdanov et al., *Algorithms of
//!    Two-Level Parallelization for DSMC*): the coarse level runs many
//!    independent encrypted requests against one compiled program
//!    ([`BatchExecutor`]); the fine level runs the independent homomorphic
//!    operations inside one request concurrently — barrier-free
//!    dependency-counting work stealing by default ([`DataflowExecutor`]),
//!    or the level-synchronized [`WavefrontExecutor`], both over the same
//!    lowered [`Schedule`] and bit-identical to sequential execution.
//! 2. **Timer-augmented costs** (after McDoniel & Bientinesi, *A
//!    Timer-Augmented Cost Function for Load Balanced DSMC*): the static
//!    per-operator cost table the optimizer ranks rewrites with is replaced
//!    by measured per-operation latencies ([`CalibratedCostModel`]), recorded
//!    for free while executing — and fed straight back into the dataflow
//!    executor's critical-path ready-queue priorities
//!    ([`Schedule::critical_path_priorities`]).
//! 3. **Persistent serving** (the persistent-worker scheme of the same
//!    two-level literature): a [`ServingEngine`] keeps a bounded request
//!    queue drained by long-lived worker threads, so expensive per-program
//!    state lives across requests instead of being rebuilt per call;
//!    [`RequestHandle`]s give submit/wait/try_poll semantics and
//!    [`ServingStats`] track queue depth and throughput.
//! 4. **Cross-request SIMD batching**: a [`RequestCoalescer`] gathers
//!    compatible requests under a [`BatchPolicy`] and packs many users into
//!    the slot lanes of shared ciphertexts (see the [`batching`
//!    module](crate::RequestCoalescer) docs for why lane batching is
//!    bit-exact per user), amortizing every homomorphic operation across
//!    the whole batch.
//!
//! The crate deliberately depends only on `chehab-ir` (for the circuit DAG
//! and cost tables) and `chehab-fhe` (for the evaluator): `chehab-core`
//! integrates it behind `CompiledProgram::execute_parallel` /
//! `CompiledProgram::execute_batch`, and re-exports it through the `chehab`
//! facade as `chehab::runtime`.
//!
//! ## Example
//!
//! Lowering and executing a circuit by hand (the compiler normally does
//! this):
//!
//! ```
//! use chehab_fhe::{BfvParameters, Decryptor, Encryptor, FheContext, KeyGenerator};
//! use chehab_ir::{parse, CircuitDag};
//! use chehab_runtime::{
//!     lower_with_default_costs, ExecResources, Register, WavefrontExecutor,
//! };
//!
//! // (a*b) + (c*d): the two multiplications share a wavefront level.
//! let expr = parse("(VecAdd (VecMul (Vec a b) (Vec c d)) (VecMul (Vec e f) (Vec g h)))").unwrap();
//! let dag = CircuitDag::from_expr(&expr).eliminate_dead_code();
//!
//! let ctx = FheContext::new(BfvParameters::insecure_test())?;
//! let mut keygen = KeyGenerator::new(ctx.params(), 1);
//! let mut encryptor = Encryptor::new(&ctx, &keygen.public_key());
//! let decryptor = Decryptor::new(&ctx, &keygen.secret_key());
//! let relin_keys = keygen.relin_keys();
//! let galois_keys = keygen.default_galois_keys();
//!
//! // Pre-bind the leaf vectors (client-side packing), lower the rest.
//! let mut registers: Vec<Option<Register>> = vec![None; dag.len()];
//! let values = [("a", 1), ("b", 2), ("c", 3), ("d", 4), ("e", 5), ("f", 6), ("g", 7), ("h", 8)];
//! let lookup = |name: &str| values.iter().find(|(n, _)| *n == name).unwrap().1;
//! let mut prebound = vec![false; dag.len()];
//! for (id, node) in dag.nodes().iter().enumerate() {
//!     if let chehab_ir::DagNode::Vec(elems) = node {
//!         let packed: Vec<i64> = elems
//!             .iter()
//!             .map(|&e| match &dag.nodes()[e] {
//!                 chehab_ir::DagNode::CtVar(s) => lookup(s.as_str()),
//!                 _ => unreachable!(),
//!             })
//!             .collect();
//!         registers[id] = Some(Register::cipher(encryptor.encrypt_values(&packed)?));
//!         prebound[id] = true;
//!     } else if node.is_leaf() {
//!         prebound[id] = true; // packed into the vectors above
//!     }
//! }
//!
//! let schedule = lower_with_default_costs(&dag, &prebound, |step| vec![step]);
//! assert_eq!(schedule.level_count(), 2);
//!
//! let arenas = chehab_fhe::ArenaPool::new();
//! let resources = ExecResources {
//!     ctx: &ctx,
//!     relin_keys: &relin_keys,
//!     galois_keys: &galois_keys,
//!     // No runtime `Pack` instructions in this schedule, so no zero
//!     // ciphertext fallback is needed.
//!     zero: None,
//!     arenas: &arenas,
//!     // Tracing off: the executor records no spans.
//!     trace: None,
//!     // Single-user layout: no cross-request lane batching.
//!     lanes: None,
//!     // No cancellation token or deadline: the request runs to completion.
//!     cancel: None,
//!     // No fault injection.
//!     faults: None,
//! };
//! let outcome = WavefrontExecutor::new(2).execute(&schedule, registers, &resources)?;
//! let Register::Cipher(output) = outcome.output else { panic!("ciphertext output") };
//! assert_eq!(ctx.decode(&decryptor.decrypt(&output)?, 2), vec![1 * 3 + 5 * 7, 2 * 4 + 6 * 8]);
//! # Ok::<(), chehab_fhe::FheError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod batch;
mod batching;
mod calibrate;
mod dataflow;
mod exec;
mod faults;
mod schedule;
mod serving;
pub mod telemetry;

pub use batch::BatchExecutor;
pub use batching::{
    lane_geometry, BatchPolicy, CoalescerConfig, CoalescerStats, LaneGeometry, RequestCoalescer,
};
pub use calibrate::{CalibratedCostModel, OpKind, OP_KINDS};
pub use dataflow::{dynamic_intra_op_grant, DataflowExecutor};
pub use exec::{
    ExecResources, LevelTiming, PlainValue, Register, RegisterFile, SchedulerKind, TimingBreakdown,
    WavefrontExecutor, WavefrontOutcome,
};
pub use faults::{CancellationToken, FaultPlan};
pub use schedule::{
    data_kinds, lower_with_default_costs, CostTerms, Instr, Schedule, ScheduledInstr, Slot,
};
pub use serving::{
    default_workers, LatencySnapshot, RequestError, RequestHandle, ResilienceSnapshot,
    ResilienceStats, SchedulerMetrics, SchedulerStatsSnapshot, ServingConfig, ServingEngine,
    ServingError, ServingStats, TrySubmitError, DEFAULT_QUEUE_CAPACITY,
};
pub use telemetry::{
    Counter, Gauge, Histogram, MetricsRegistry, SpanEvent, Trace, TraceBuffer, TraceSink,
};
