//! Timer-augmented cost calibration.
//!
//! The static [`chehab_ir::CostModel`] ranks rewrites with hand-assigned
//! operator latencies (add = 1, rotation = 50, ct-ct mul = 100, ...). The
//! runtime measures the *actual* per-operation latencies on the hardware it
//! runs on, accumulates them here, and can project the measurements back into
//! an [`OpCosts`] table — so the greedy/RL optimizers rank rewrites by
//! observed hardware cost instead of static guesses. This mirrors the
//! timer-augmented cost function of McDoniel & Bientinesi's load-balanced
//! DSMC: replace a modeled per-particle cost with a measured one, keep the
//! balancing machinery unchanged.

use chehab_ir::{CostModel, OpCosts};
use std::time::Duration;

/// The operation categories the runtime times individually.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OpKind {
    /// Ciphertext addition or subtraction (ct-ct or ct-pt).
    Addition,
    /// Ciphertext negation.
    Negation,
    /// Ciphertext–ciphertext multiplication (with relinearization).
    MulCtCt,
    /// Ciphertext–plaintext multiplication.
    MulCtPt,
    /// One realized rotation step.
    Rotation,
    /// Run-time packing of a vector node (rotate-and-accumulate).
    Pack,
}

/// Every [`OpKind`], in a fixed order.
pub const OP_KINDS: [OpKind; 6] = [
    OpKind::Addition,
    OpKind::Negation,
    OpKind::MulCtCt,
    OpKind::MulCtPt,
    OpKind::Rotation,
    OpKind::Pack,
];

impl OpKind {
    /// Stable index into the per-kind tables.
    fn index(self) -> usize {
        match self {
            OpKind::Addition => 0,
            OpKind::Negation => 1,
            OpKind::MulCtCt => 2,
            OpKind::MulCtPt => 3,
            OpKind::Rotation => 4,
            OpKind::Pack => 5,
        }
    }

    /// Human-readable label used in reports.
    pub fn label(self) -> &'static str {
        match self {
            OpKind::Addition => "addition",
            OpKind::Negation => "negation",
            OpKind::MulCtCt => "ct-ct multiplication",
            OpKind::MulCtPt => "ct-pt multiplication",
            OpKind::Rotation => "rotation",
            OpKind::Pack => "runtime pack",
        }
    }
}

/// Measured per-operation-kind latencies, accumulated across executions.
///
/// Cheap to merge, so every worker keeps a private instance and the runtime
/// combines them after the wavefront finishes.
#[derive(Debug, Clone, Default)]
pub struct CalibratedCostModel {
    totals: [Duration; 6],
    counts: [u64; 6],
}

impl CalibratedCostModel {
    /// An empty calibration.
    pub fn new() -> Self {
        CalibratedCostModel::default()
    }

    /// Records one measured operation.
    pub fn record(&mut self, kind: OpKind, elapsed: Duration) {
        self.totals[kind.index()] += elapsed;
        self.counts[kind.index()] += 1;
    }

    /// Accumulates another calibration into this one.
    pub fn merge(&mut self, other: &CalibratedCostModel) {
        for i in 0..6 {
            self.totals[i] += other.totals[i];
            self.counts[i] += other.counts[i];
        }
    }

    /// Number of recorded samples of a kind.
    pub fn count(&self, kind: OpKind) -> u64 {
        self.counts[kind.index()]
    }

    /// Total time spent in operations of a kind.
    pub fn total(&self, kind: OpKind) -> Duration {
        self.totals[kind.index()]
    }

    /// Mean latency of a kind, if any sample was recorded.
    pub fn mean(&self, kind: OpKind) -> Option<Duration> {
        let count = self.counts[kind.index()];
        (count > 0).then(|| self.totals[kind.index()] / count as u32)
    }

    /// Total number of samples across all kinds.
    pub fn sample_count(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Projects the measured latencies into an [`OpCosts`] table, keeping the
    /// static model's convention that one vector addition costs 1.0.
    ///
    /// Kinds with no samples keep their `fallback` estimate, as does the
    /// scalar-op penalty (a compiler-side fiction the runtime cannot
    /// observe: scalar ops execute as 1-slot vector ops, and the penalty
    /// exists to push the optimizer towards vectorized code).
    pub fn to_op_costs(&self, fallback: &OpCosts) -> OpCosts {
        let unit = match self.mean(OpKind::Addition) {
            Some(mean) if mean > Duration::ZERO => mean.as_secs_f64(),
            _ => return *fallback,
        };
        let relative = |kind: OpKind, fallback_value: f64| -> f64 {
            self.mean(kind)
                .map_or(fallback_value, |m| m.as_secs_f64() / unit)
        };
        OpCosts {
            vec_add: 1.0,
            vec_mul_ct_ct: relative(OpKind::MulCtCt, fallback.vec_mul_ct_ct),
            vec_mul_ct_pt: relative(OpKind::MulCtPt, fallback.vec_mul_ct_pt),
            rotation: relative(OpKind::Rotation, fallback.rotation),
            scalar_op: fallback.scalar_op,
            plaintext_op: fallback.plaintext_op,
        }
    }

    /// Builds a full [`CostModel`] with calibrated operator costs and the
    /// base model's term weights, ready to hand to the greedy or RL
    /// optimizer.
    pub fn to_cost_model(&self, base: &CostModel) -> CostModel {
        CostModel {
            op_costs: self.to_op_costs(&base.op_costs),
            weights: base.weights,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn means_and_merges_accumulate() {
        let mut a = CalibratedCostModel::new();
        a.record(OpKind::Addition, Duration::from_micros(10));
        a.record(OpKind::Addition, Duration::from_micros(30));
        let mut b = CalibratedCostModel::new();
        b.record(OpKind::MulCtCt, Duration::from_micros(800));
        a.merge(&b);
        assert_eq!(a.count(OpKind::Addition), 2);
        assert_eq!(a.mean(OpKind::Addition), Some(Duration::from_micros(20)));
        assert_eq!(a.mean(OpKind::MulCtCt), Some(Duration::from_micros(800)));
        assert_eq!(a.sample_count(), 3);
        assert_eq!(a.mean(OpKind::Rotation), None);
    }

    #[test]
    fn calibrated_costs_are_relative_to_additions() {
        let mut cal = CalibratedCostModel::new();
        for _ in 0..4 {
            cal.record(OpKind::Addition, Duration::from_micros(10));
        }
        cal.record(OpKind::MulCtCt, Duration::from_micros(750));
        cal.record(OpKind::Rotation, Duration::from_micros(320));
        let costs = cal.to_op_costs(&OpCosts::default());
        assert_eq!(costs.vec_add, 1.0);
        assert!((costs.vec_mul_ct_ct - 75.0).abs() < 1e-9);
        assert!((costs.rotation - 32.0).abs() < 1e-9);
        // Unmeasured kinds keep the static estimate.
        assert_eq!(costs.vec_mul_ct_pt, OpCosts::default().vec_mul_ct_pt);
        assert_eq!(costs.scalar_op, OpCosts::default().scalar_op);
    }

    #[test]
    fn empty_calibration_falls_back_to_the_static_model() {
        let cal = CalibratedCostModel::new();
        let base = CostModel::default();
        let model = cal.to_cost_model(&base);
        assert_eq!(model.op_costs, base.op_costs);
        assert_eq!(model.weights, base.weights);
    }
}
