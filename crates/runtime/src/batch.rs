//! The outer parallelism level: executing many independent requests against
//! one compiled program.
//!
//! This is the serving scenario the ROADMAP targets — one circuit compiled
//! once, then evaluated for a stream of independently encrypted input sets.
//! Requests are embarrassingly parallel (they share nothing mutable), so a
//! [`BatchExecutor`] simply drains them from an atomic queue with a pool of
//! request workers, preserving input order in the results. Combined with the
//! per-request [`WavefrontExecutor`](crate::WavefrontExecutor) this gives the
//! two-level scheme of Bogdanov et al.'s two-level DSMC parallelization:
//! coarse-grained across requests, fine-grained across the independent ops
//! inside one request.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// A fixed-size pool of request workers for batch execution.
#[derive(Debug, Clone, Copy)]
pub struct BatchExecutor {
    threads: usize,
}

impl BatchExecutor {
    /// Creates a batch executor with the given request-level worker count
    /// (clamped to at least one).
    pub fn new(threads: usize) -> Self {
        BatchExecutor {
            threads: threads.max(1),
        }
    }

    /// The configured request-level worker count.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Runs `handler` over every request, in parallel across the pool, and
    /// returns the results in request order.
    ///
    /// The handler receives the request index and the request itself; use a
    /// `Result` result type to make per-request failures inspectable.
    pub fn run<T, R, F>(&self, requests: Vec<T>, handler: F) -> Vec<R>
    where
        T: Send,
        R: Send,
        F: Fn(usize, T) -> R + Sync,
    {
        let workers = self.threads.min(requests.len());
        if workers <= 1 {
            return requests
                .into_iter()
                .enumerate()
                .map(|(i, r)| handler(i, r))
                .collect();
        }

        let slots: Vec<Mutex<Option<T>>> =
            requests.into_iter().map(|r| Mutex::new(Some(r))).collect();
        let results: Vec<Mutex<Option<R>>> = slots.iter().map(|_| Mutex::new(None)).collect();
        let cursor = AtomicUsize::new(0);
        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| loop {
                    let index = cursor.fetch_add(1, Ordering::Relaxed);
                    if index >= slots.len() {
                        break;
                    }
                    let request = slots[index]
                        .lock()
                        .unwrap()
                        .take()
                        .expect("each request taken once");
                    let result = handler(index, request);
                    *results[index].lock().unwrap() = Some(result);
                });
            }
        });
        results
            .into_iter()
            .map(|cell| {
                cell.into_inner()
                    .unwrap()
                    .expect("every request produced a result")
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn results_preserve_request_order() {
        let pool = BatchExecutor::new(4);
        let inputs: Vec<usize> = (0..64).collect();
        let outputs = pool.run(inputs, |index, value| {
            assert_eq!(index, value);
            value * 10
        });
        assert_eq!(outputs, (0..64).map(|v| v * 10).collect::<Vec<_>>());
    }

    #[test]
    fn every_request_runs_exactly_once() {
        let counter = AtomicUsize::new(0);
        let pool = BatchExecutor::new(8);
        let outputs = pool.run(vec![(); 100], |_, ()| {
            counter.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(outputs.len(), 100);
        assert_eq!(counter.load(Ordering::Relaxed), 100);
    }

    #[test]
    fn single_threaded_pool_runs_inline() {
        let pool = BatchExecutor::new(1);
        assert_eq!(pool.run(vec![1, 2, 3], |_, v| v + 1), vec![2, 3, 4]);
    }

    #[test]
    fn empty_batches_are_fine() {
        let pool = BatchExecutor::new(4);
        let outputs: Vec<i32> = pool.run(Vec::<i32>::new(), |_, v| v);
        assert!(outputs.is_empty());
    }
}
