//! The telemetry engine: structured spans, Chrome-trace export, latency
//! histograms and a unified metrics registry.
//!
//! Every prior layer of the runtime justified itself with measurement, but
//! the instruments were scattered: per-request timing lived in
//! [`TimingBreakdown`](crate::TimingBreakdown), scheduler counters in
//! [`SchedulerMetrics`](crate::SchedulerMetrics), and allocation/transform
//! counters in process-global atomics of `chehab-fhe`. This module is the
//! common substrate those consumers converge on:
//!
//! - **Spans** ([`SpanEvent`] / [`TraceSink`] / [`TraceBuffer`]): when a
//!   caller opts in by handing the executors a [`TraceSink`], every worker
//!   records instruction-level spans (operation label, instruction index,
//!   queue wait, intra-op thread grant, steal provenance) into a private,
//!   lock-free [`TraceBuffer`] that flushes to the sink once at the end of
//!   the run. Tracing is **off by default**: with no sink installed the hot
//!   path pays one pointer-null check per instruction.
//! - **Chrome trace export** ([`Trace::to_chrome_json`]): a finished trace
//!   serializes to the Chrome/Perfetto `traceEvents` JSON format (`ph:"X"`
//!   duration events, one track per worker), loadable in `chrome://tracing`
//!   or <https://ui.perfetto.dev>.
//! - **Latency histograms** ([`Histogram`]): fixed-footprint log-bucketed
//!   histograms with mergeable buckets and p50/p95/p99/max readouts; the
//!   serving engine records per-request wall and queue-wait latency into
//!   them (see [`ServingStats::latency`](crate::ServingStats::latency)).
//! - **Metrics registry** ([`MetricsRegistry`] / [`Counter`] / [`Gauge`]):
//!   named handles with a Prometheus-style text exposition
//!   ([`MetricsRegistry::render_text`]), unifying the scattered counters
//!   (arena fresh/reuse, NTT transforms, key generations, dataflow steals)
//!   behind one export surface.
//!
//! Trace capture never perturbs results: spans only *observe* timings, and
//! the executors' outputs are bit-identical at every worker count and steal
//! order by construction, so a traced run decrypts to exactly the bytes an
//! untraced run does.

use serde::Value;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

// ---------------------------------------------------------------------------
// Histogram
// ---------------------------------------------------------------------------

/// Linear sub-buckets per power of two: 2^5 = 32, bounding the relative
/// quantization error of a recorded value at 1/32 (about 3%).
const SUB_BITS: u32 = 5;
/// Number of linear sub-buckets per power of two.
const SUB_BUCKETS: u64 = 1 << SUB_BITS;
/// Total bucket count covering the full `u64` nanosecond range.
const BUCKET_COUNT: usize = ((64 - SUB_BITS as usize) + 1) << SUB_BITS;

/// The bucket index of a nanosecond value (log-linear: values below
/// [`SUB_BUCKETS`] map exactly, larger values keep [`SUB_BITS`] bits of
/// mantissa).
fn bucket_of(value: u64) -> usize {
    if value < SUB_BUCKETS {
        value as usize
    } else {
        let top = 63 - value.leading_zeros();
        let shift = top - SUB_BITS;
        let sub = (value >> shift) as usize & (SUB_BUCKETS as usize - 1);
        ((shift as usize + 1) << SUB_BITS) + sub
    }
}

/// The smallest nanosecond value a bucket covers (the representative value
/// reported by [`Histogram::percentile`] — percentiles therefore
/// under-report by at most the 1/32 bucket width).
fn bucket_floor(index: usize) -> u64 {
    if index < SUB_BUCKETS as usize {
        index as u64
    } else {
        let shift = (index >> SUB_BITS) as u32 - 1;
        let sub = (index & (SUB_BUCKETS as usize - 1)) as u64;
        (SUB_BUCKETS + sub) << shift
    }
}

/// A fixed-footprint log-bucketed latency histogram.
///
/// Values (durations, recorded at nanosecond resolution) land in log-linear
/// buckets: 32 linear sub-buckets per power of two, so any recorded value is
/// represented with at most ~3% quantization error while the whole structure
/// stays a flat 15 KiB regardless of sample count. Histograms merge by
/// bucket-wise addition ([`Histogram::merge`]), so per-worker instances can
/// be combined without losing percentile fidelity.
///
/// All readouts are guarded: an empty histogram reports `None` percentiles
/// and max rather than `NaN` or garbage.
///
/// ```
/// use chehab_runtime::Histogram;
/// use std::time::Duration;
///
/// let mut h = Histogram::new();
/// for ms in 1..=100u64 {
///     h.record(Duration::from_millis(ms));
/// }
/// assert_eq!(h.count(), 100);
/// let p50 = h.percentile(0.50).unwrap();
/// assert!(p50 >= Duration::from_millis(48) && p50 <= Duration::from_millis(52));
/// assert_eq!(h.max(), Some(Duration::from_millis(100)));
/// ```
#[derive(Debug, Clone)]
pub struct Histogram {
    buckets: Vec<u64>,
    count: u64,
    sum_ns: u128,
    max_ns: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: vec![0; BUCKET_COUNT],
            count: 0,
            sum_ns: 0,
            max_ns: 0,
        }
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Histogram::default()
    }

    /// Records one duration sample.
    pub fn record(&mut self, sample: Duration) {
        self.record_nanos(u64::try_from(sample.as_nanos()).unwrap_or(u64::MAX));
    }

    /// Records one raw nanosecond sample.
    pub fn record_nanos(&mut self, nanos: u64) {
        self.buckets[bucket_of(nanos)] += 1;
        self.count += 1;
        self.sum_ns += u128::from(nanos);
        self.max_ns = self.max_ns.max(nanos);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// `true` when no sample has been recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// The exact maximum recorded sample, `None` when empty.
    pub fn max(&self) -> Option<Duration> {
        (self.count > 0).then(|| Duration::from_nanos(self.max_ns))
    }

    /// The mean of the recorded samples, `None` when empty (never `NaN`).
    pub fn mean(&self) -> Option<Duration> {
        (self.count > 0).then(|| {
            let mean = self.sum_ns / u128::from(self.count);
            Duration::from_nanos(u64::try_from(mean).unwrap_or(u64::MAX))
        })
    }

    /// The `pct`-percentile (`0.0..=1.0`, clamped) of the recorded samples,
    /// `None` when empty. The returned value is the lower bound of the
    /// bucket holding the ranked sample, capped at the exact recorded
    /// maximum — so `percentile(1.0)` never exceeds [`Histogram::max`].
    pub fn percentile(&self, pct: f64) -> Option<Duration> {
        if self.count == 0 {
            return None;
        }
        let pct = pct.clamp(0.0, 1.0);
        // Nearest-rank on the ranked sample index, matching the convention
        // of `TimingBreakdown::queue_wait_percentile`.
        let rank = ((self.count - 1) as f64 * pct).round() as u64;
        let mut seen = 0u64;
        for (index, &bucket) in self.buckets.iter().enumerate() {
            seen += bucket;
            if bucket > 0 && seen > rank {
                return Some(Duration::from_nanos(bucket_floor(index).min(self.max_ns)));
            }
        }
        // Unreachable while `count` equals the bucket sum; stay safe anyway.
        Some(Duration::from_nanos(self.max_ns))
    }

    /// Median latency (`percentile(0.50)`).
    pub fn p50(&self) -> Option<Duration> {
        self.percentile(0.50)
    }

    /// 95th-percentile latency.
    pub fn p95(&self) -> Option<Duration> {
        self.percentile(0.95)
    }

    /// 99th-percentile latency.
    pub fn p99(&self) -> Option<Duration> {
        self.percentile(0.99)
    }

    /// Adds every sample of `other` into this histogram (bucket-wise, so
    /// merged percentiles are exactly what a single histogram recording both
    /// sample streams would report).
    pub fn merge(&mut self, other: &Histogram) {
        for (mine, theirs) in self.buckets.iter_mut().zip(&other.buckets) {
            *mine += theirs;
        }
        self.count += other.count;
        self.sum_ns += other.sum_ns;
        self.max_ns = self.max_ns.max(other.max_ns);
    }
}

// ---------------------------------------------------------------------------
// Metrics registry
// ---------------------------------------------------------------------------

/// A monotonically increasing named metric handle (cloned handles share one
/// underlying cell). Obtained from [`MetricsRegistry::counter`].
#[derive(Debug, Clone)]
pub struct Counter {
    cell: std::sync::Arc<AtomicU64>,
}

impl Counter {
    /// Increments the counter by one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n` to the counter.
    pub fn add(&self, n: u64) {
        self.cell.fetch_add(n, Ordering::Relaxed);
    }

    /// The current value.
    pub fn get(&self) -> u64 {
        self.cell.load(Ordering::Relaxed)
    }

    /// Overwrites the value — for counters that *mirror* an external source
    /// of truth (e.g. the process-global arena or NTT counters of
    /// `chehab-fhe`, synced into the registry at snapshot time) rather than
    /// being incremented directly.
    pub fn store(&self, value: u64) {
        self.cell.store(value, Ordering::Relaxed);
    }
}

/// A named metric handle for values that go up and down (stored as `f64`).
/// Obtained from [`MetricsRegistry::gauge`].
#[derive(Debug, Clone)]
pub struct Gauge {
    bits: std::sync::Arc<AtomicU64>,
}

impl Gauge {
    /// Sets the gauge.
    pub fn set(&self, value: f64) {
        self.bits.store(value.to_bits(), Ordering::Relaxed);
    }

    /// The current value.
    pub fn get(&self) -> f64 {
        f64::from_bits(self.bits.load(Ordering::Relaxed))
    }
}

/// The kind of a registered metric, driving the `# TYPE` exposition line.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum MetricKind {
    Counter,
    Gauge,
}

#[derive(Debug)]
struct MetricEntry {
    name: String,
    help: String,
    kind: MetricKind,
    cell: std::sync::Arc<AtomicU64>,
}

/// A registry of named [`Counter`]/[`Gauge`] handles with a Prometheus-style
/// text exposition.
///
/// Registration is idempotent: asking for an already-registered name returns
/// a handle onto the same cell, so independent layers can share a metric by
/// name without threading handles through every signature.
///
/// ```
/// use chehab_runtime::MetricsRegistry;
///
/// let registry = MetricsRegistry::new();
/// let served = registry.counter("requests_served_total", "Requests served");
/// served.add(3);
/// let text = registry.render_text();
/// assert!(text.contains("# TYPE requests_served_total counter"));
/// assert!(text.contains("requests_served_total 3"));
/// ```
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    entries: Mutex<Vec<MetricEntry>>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        MetricsRegistry::default()
    }

    fn cell_of(&self, name: &str, help: &str, kind: MetricKind) -> std::sync::Arc<AtomicU64> {
        let mut entries = self
            .entries
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        if let Some(entry) = entries.iter().find(|e| e.name == name) {
            assert_eq!(
                entry.kind, kind,
                "metric {name:?} registered with conflicting kinds"
            );
            return std::sync::Arc::clone(&entry.cell);
        }
        let cell = std::sync::Arc::new(AtomicU64::new(0));
        entries.push(MetricEntry {
            name: name.to_string(),
            help: help.to_string(),
            kind,
            cell: std::sync::Arc::clone(&cell),
        });
        cell
    }

    /// Registers (or re-fetches) a counter by name.
    ///
    /// # Panics
    ///
    /// Panics if `name` is already registered as a gauge.
    pub fn counter(&self, name: &str, help: &str) -> Counter {
        Counter {
            cell: self.cell_of(name, help, MetricKind::Counter),
        }
    }

    /// Registers (or re-fetches) a gauge by name.
    ///
    /// # Panics
    ///
    /// Panics if `name` is already registered as a counter.
    pub fn gauge(&self, name: &str, help: &str) -> Gauge {
        let gauge = Gauge {
            bits: self.cell_of(name, help, MetricKind::Gauge),
        };
        // A fresh cell holds integer 0, which is also `f64::from_bits(0)` =
        // 0.0 — no fix-up needed.
        gauge
    }

    /// Renders every registered metric in the Prometheus text exposition
    /// format (`# HELP` / `# TYPE` preamble plus one `name value` sample
    /// line), sorted by metric name for deterministic output.
    pub fn render_text(&self) -> String {
        let entries = self
            .entries
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        let mut sorted: Vec<&MetricEntry> = entries.iter().collect();
        sorted.sort_by(|a, b| a.name.cmp(&b.name));
        let mut out = String::new();
        for entry in sorted {
            out.push_str("# HELP ");
            out.push_str(&entry.name);
            out.push(' ');
            out.push_str(&entry.help);
            out.push('\n');
            out.push_str("# TYPE ");
            out.push_str(&entry.name);
            out.push(' ');
            out.push_str(match entry.kind {
                MetricKind::Counter => "counter",
                MetricKind::Gauge => "gauge",
            });
            out.push('\n');
            out.push_str(&entry.name);
            out.push(' ');
            match entry.kind {
                MetricKind::Counter => {
                    out.push_str(&entry.cell.load(Ordering::Relaxed).to_string());
                }
                MetricKind::Gauge => {
                    let value = f64::from_bits(entry.cell.load(Ordering::Relaxed));
                    out.push_str(&format!("{value}"));
                }
            }
            out.push('\n');
        }
        out
    }
}

// ---------------------------------------------------------------------------
// Spans and traces
// ---------------------------------------------------------------------------

/// One recorded duration span: an instruction, a session phase, or a served
/// request, stamped with its track and scheduler context.
#[derive(Debug, Clone)]
pub struct SpanEvent {
    /// Short operation label (e.g. `"mul"`, `"rot"`, `"bind"`, `"request"`).
    pub name: &'static str,
    /// Event category (`"instr"`, `"session"`, `"request"`), exported as the
    /// Chrome-trace `cat` field.
    pub cat: &'static str,
    /// The track (Chrome-trace `tid`) the span belongs to — one per worker,
    /// allocated by [`TraceSink::allocate_track`], so spans on one track are
    /// always recorded sequentially by a single thread and never overlap.
    pub track: usize,
    /// Span start, in nanoseconds since the sink's epoch.
    pub start_ns: u64,
    /// Span duration in nanoseconds.
    pub dur_ns: u64,
    /// Index into the schedule's instruction list, for instruction spans.
    pub instr: Option<usize>,
    /// Time the work item waited between becoming ready and starting.
    pub queue_wait_ns: Option<u64>,
    /// Intra-op worker threads granted to the operation.
    pub grant: Option<usize>,
    /// For dataflow instruction spans that were stolen: the scheduler-local
    /// index of the worker whose deque the instruction was taken from.
    pub stolen_from: Option<usize>,
}

/// The shared collection point of one traced run: executors' per-worker
/// [`TraceBuffer`]s flush into it, and [`TraceSink::into_trace`] yields the
/// finished [`Trace`].
///
/// A sink carries the run's epoch (the zero point of every span timestamp)
/// and allocates one track per recording thread. It is installed by setting
/// [`ExecResources::trace`](crate::ExecResources::trace) — when absent
/// (the default), the executors skip all span recording at the cost of one
/// null check per instruction.
#[derive(Debug)]
pub struct TraceSink {
    epoch: Instant,
    next_track: AtomicUsize,
    shared: Mutex<TraceShared>,
}

#[derive(Debug, Default)]
struct TraceShared {
    events: Vec<SpanEvent>,
    /// Track labels indexed by track id (exported as Chrome-trace thread
    /// names).
    tracks: Vec<String>,
}

impl Default for TraceSink {
    fn default() -> Self {
        TraceSink::new()
    }
}

impl TraceSink {
    /// A fresh sink whose epoch is *now*.
    pub fn new() -> Self {
        TraceSink {
            epoch: Instant::now(),
            next_track: AtomicUsize::new(0),
            shared: Mutex::new(TraceShared::default()),
        }
    }

    /// Nanoseconds from the sink's epoch to `at` (zero for instants that
    /// precede the epoch).
    pub fn offset_ns(&self, at: Instant) -> u64 {
        u64::try_from(at.saturating_duration_since(self.epoch).as_nanos()).unwrap_or(u64::MAX)
    }

    /// Allocates the next track id and registers its display label.
    pub fn allocate_track(&self, label: impl Into<String>) -> usize {
        let track = self.next_track.fetch_add(1, Ordering::Relaxed);
        let mut shared = self
            .shared
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        if shared.tracks.len() <= track {
            shared.tracks.resize(track + 1, String::new());
        }
        shared.tracks[track] = label.into();
        track
    }

    /// Appends one span directly (used for session/request-level spans that
    /// are recorded once, outside any per-worker buffer).
    pub fn push(&self, event: SpanEvent) {
        self.shared
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .events
            .push(event);
    }

    /// Appends a batch of spans (one lock for a whole worker's buffer).
    pub fn extend(&self, events: Vec<SpanEvent>) {
        if events.is_empty() {
            return;
        }
        self.shared
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .events
            .extend(events);
    }

    /// Finishes the capture: returns the collected spans sorted by track and
    /// start time.
    pub fn into_trace(self) -> Trace {
        let shared = self
            .shared
            .into_inner()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        let mut events = shared.events;
        events.sort_by_key(|e| (e.track, e.start_ns));
        Trace {
            events,
            tracks: shared.tracks,
        }
    }
}

/// A per-worker span buffer: records locally with no synchronization and
/// flushes to the shared [`TraceSink`] once, when dropped (or explicitly via
/// [`TraceBuffer::flush`]).
#[derive(Debug)]
pub struct TraceBuffer<'a> {
    sink: &'a TraceSink,
    track: usize,
    events: Vec<SpanEvent>,
}

impl<'a> TraceBuffer<'a> {
    /// Opens a buffer on a freshly allocated track labelled `label`.
    pub fn new(sink: &'a TraceSink, label: impl Into<String>) -> Self {
        TraceBuffer {
            track: sink.allocate_track(label),
            sink,
            events: Vec::new(),
        }
    }

    /// The buffer's track id.
    pub fn track(&self) -> usize {
        self.track
    }

    /// Records one span that started at `started` and ran for `dur`.
    #[allow(clippy::too_many_arguments)]
    pub fn record(
        &mut self,
        name: &'static str,
        cat: &'static str,
        started: Instant,
        dur: Duration,
        instr: Option<usize>,
        queue_wait: Option<Duration>,
        grant: Option<usize>,
        stolen_from: Option<usize>,
    ) {
        self.events.push(SpanEvent {
            name,
            cat,
            track: self.track,
            start_ns: self.sink.offset_ns(started),
            dur_ns: u64::try_from(dur.as_nanos()).unwrap_or(u64::MAX),
            instr,
            queue_wait_ns: queue_wait.map(|w| u64::try_from(w.as_nanos()).unwrap_or(u64::MAX)),
            grant,
            stolen_from,
        });
    }

    /// Flushes the buffered spans to the sink now (otherwise done on drop).
    pub fn flush(&mut self) {
        self.sink.extend(std::mem::take(&mut self.events));
    }
}

impl Drop for TraceBuffer<'_> {
    fn drop(&mut self) {
        self.flush();
    }
}

/// A finished span capture, ready for inspection or Chrome-trace export.
#[derive(Debug, Clone)]
pub struct Trace {
    events: Vec<SpanEvent>,
    tracks: Vec<String>,
}

impl Trace {
    /// The recorded spans, sorted by `(track, start_ns)`.
    pub fn events(&self) -> &[SpanEvent] {
        &self.events
    }

    /// The registered track labels, indexed by track id.
    pub fn track_labels(&self) -> &[String] {
        &self.tracks
    }

    /// Serializes the trace to the Chrome/Perfetto JSON event format: a
    /// `traceEvents` array of `ph:"X"` (complete duration) events with one
    /// `tid` (track) per worker, timestamps in microseconds since the
    /// capture epoch, plus `ph:"M"` metadata events naming each track. The
    /// output loads directly in `chrome://tracing` and
    /// <https://ui.perfetto.dev>.
    pub fn to_chrome_json(&self) -> String {
        let mut events: Vec<Value> = Vec::with_capacity(self.events.len() + self.tracks.len());
        for (track, label) in self.tracks.iter().enumerate() {
            events.push(Value::Object(vec![
                ("name".into(), Value::Str("thread_name".into())),
                ("ph".into(), Value::Str("M".into())),
                ("pid".into(), Value::UInt(1)),
                ("tid".into(), Value::UInt(track as u64)),
                (
                    "args".into(),
                    Value::Object(vec![("name".into(), Value::Str(label.clone()))]),
                ),
            ]));
        }
        for event in &self.events {
            let mut args: Vec<(String, Value)> = Vec::new();
            if let Some(instr) = event.instr {
                args.push(("instr".into(), Value::UInt(instr as u64)));
            }
            if let Some(wait) = event.queue_wait_ns {
                args.push(("queue_wait_us".into(), Value::Float(wait as f64 / 1_000.0)));
            }
            if let Some(grant) = event.grant {
                args.push(("grant".into(), Value::UInt(grant as u64)));
            }
            if let Some(victim) = event.stolen_from {
                args.push(("stolen_from".into(), Value::UInt(victim as u64)));
            }
            events.push(Value::Object(vec![
                ("name".into(), Value::Str(event.name.into())),
                ("cat".into(), Value::Str(event.cat.into())),
                ("ph".into(), Value::Str("X".into())),
                ("pid".into(), Value::UInt(1)),
                ("tid".into(), Value::UInt(event.track as u64)),
                ("ts".into(), Value::Float(event.start_ns as f64 / 1_000.0)),
                ("dur".into(), Value::Float(event.dur_ns as f64 / 1_000.0)),
                ("args".into(), Value::Object(args)),
            ]));
        }
        let document = Value::Object(vec![
            ("traceEvents".into(), Value::Array(events)),
            ("displayTimeUnit".into(), Value::Str("ms".into())),
        ]);
        serde_json::to_string_pretty(&document).expect("stub serializer is infallible")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_bucket_boundaries_are_exact_below_the_linear_range() {
        // Values below 32ns map to their own bucket: floor(bucket(v)) == v.
        for v in 0..SUB_BUCKETS {
            assert_eq!(bucket_floor(bucket_of(v)), v, "value {v}");
        }
        // Larger values land in a bucket whose floor is within 1/32 below.
        for v in [
            32u64,
            33,
            63,
            64,
            1_000,
            1_000_000,
            123_456_789,
            u64::MAX / 2,
            u64::MAX,
        ] {
            let floor = bucket_floor(bucket_of(v));
            assert!(floor <= v, "floor {floor} above value {v}");
            assert!(
                v - floor <= v / SUB_BUCKETS,
                "value {v} quantized too coarsely (floor {floor})"
            );
        }
        // Bucket floors are monotone, so cumulative ranking is well ordered.
        let floors: Vec<u64> = (0..BUCKET_COUNT).map(bucket_floor).collect();
        assert!(floors.windows(2).all(|w| w[0] < w[1] || w[0] == 0));
    }

    #[test]
    fn histogram_percentiles_are_guarded_and_accurate() {
        let empty = Histogram::new();
        assert_eq!(empty.percentile(0.5), None);
        assert_eq!(empty.max(), None);
        assert_eq!(empty.mean(), None);
        assert!(empty.is_empty());

        let mut h = Histogram::new();
        for ms in 1..=1000u64 {
            h.record(Duration::from_millis(ms));
        }
        assert_eq!(h.count(), 1000);
        assert_eq!(h.max(), Some(Duration::from_millis(1000)));
        let expect_within = |got: Duration, want_ms: u64| {
            let want = Duration::from_millis(want_ms);
            let slack = want / 16; // two bucket widths of headroom
            assert!(
                got >= want.saturating_sub(slack) && got <= want + slack,
                "got {got:?}, wanted ~{want:?}"
            );
        };
        expect_within(h.p50().unwrap(), 500);
        expect_within(h.p95().unwrap(), 950);
        expect_within(h.p99().unwrap(), 990);
        // Clamped percentile arguments and the extremes stay in range.
        assert!(h.percentile(-1.0).unwrap() >= Duration::from_micros(990));
        assert_eq!(h.percentile(2.0), h.percentile(1.0));
        assert!(h.percentile(1.0).unwrap() <= h.max().unwrap());
        expect_within(h.mean().unwrap(), 500);
    }

    #[test]
    fn histogram_merge_matches_recording_both_streams() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        let mut combined = Histogram::new();
        for i in 0..500u64 {
            let short = Duration::from_micros(10 + i);
            let long = Duration::from_millis(5 + i);
            a.record(short);
            b.record(long);
            combined.record(short);
            combined.record(long);
        }
        a.merge(&b);
        assert_eq!(a.count(), combined.count());
        assert_eq!(a.max(), combined.max());
        for pct in [0.0, 0.25, 0.5, 0.9, 0.95, 0.99, 1.0] {
            assert_eq!(a.percentile(pct), combined.percentile(pct), "pct {pct}");
        }
    }

    #[test]
    fn registry_renders_prometheus_text_and_dedupes_names() {
        let registry = MetricsRegistry::new();
        let steals = registry.counter("steals_total", "Work-stealing pops");
        steals.add(7);
        // Re-registering returns a handle onto the same cell.
        let again = registry.counter("steals_total", "ignored duplicate help");
        again.inc();
        assert_eq!(steals.get(), 8);
        let depth = registry.gauge("queue_depth", "Requests queued");
        depth.set(2.5);
        assert!((depth.get() - 2.5).abs() < f64::EPSILON);

        let text = registry.render_text();
        assert!(text.contains("# HELP steals_total Work-stealing pops"));
        assert!(text.contains("# TYPE steals_total counter"));
        assert!(text.contains("steals_total 8"));
        assert!(text.contains("# TYPE queue_depth gauge"));
        assert!(text.contains("queue_depth 2.5"));
        // Deterministic ordering: gauge name sorts before the counter.
        assert!(text.find("queue_depth").unwrap() < text.find("steals_total").unwrap());
    }

    #[test]
    #[should_panic(expected = "conflicting kinds")]
    fn registry_rejects_kind_conflicts() {
        let registry = MetricsRegistry::new();
        registry.counter("x", "a counter");
        registry.gauge("x", "now a gauge");
    }

    #[test]
    fn trace_sink_collects_sorted_spans_and_exports_chrome_json() {
        let sink = TraceSink::new();
        let epoch = Instant::now();
        {
            let mut buffer = TraceBuffer::new(&sink, "worker-0");
            buffer.record(
                "mul",
                "instr",
                epoch,
                Duration::from_micros(120),
                Some(3),
                Some(Duration::from_micros(4)),
                Some(2),
                Some(1),
            );
            buffer.record(
                "add",
                "instr",
                epoch + Duration::from_micros(200),
                Duration::from_micros(10),
                Some(4),
                None,
                None,
                None,
            );
        } // drop flushes
        let trace = sink.into_trace();
        assert_eq!(trace.events().len(), 2);
        assert_eq!(trace.track_labels(), &["worker-0".to_string()]);
        assert!(trace.events()[0].start_ns <= trace.events()[1].start_ns);

        let json = trace.to_chrome_json();
        let value: Value = serde_json::from_str(&json).expect("export is valid JSON");
        let events = value
            .field("traceEvents")
            .expect("traceEvents array present");
        let Value::Array(events) = events else {
            panic!("traceEvents is an array")
        };
        // One metadata event plus the two spans.
        assert_eq!(events.len(), 3);
        let phases: Vec<String> = events
            .iter()
            .map(|e| match e.field("ph") {
                Ok(Value::Str(s)) => s.clone(),
                other => panic!("ph field missing: {other:?}"),
            })
            .collect();
        assert_eq!(phases, ["M", "X", "X"]);
    }
}
