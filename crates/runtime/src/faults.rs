//! Cancellation tokens and deterministic fault injection.
//!
//! Production serving needs two things a well-behaved benchmark never
//! exercises: a way to *stop* work that is no longer wanted (explicit
//! cancellation, expired deadlines) and a way to *prove* the engine survives
//! misbehaving work (worker panics, latency spikes, saturated queues). This
//! module provides both as plain shared-state handles:
//!
//! * [`CancellationToken`] — a cloneable flag + optional deadline carried in
//!   [`ExecResources`](crate::ExecResources) and checked at every instruction
//!   dispatch by both executors, so a cancelled request stops scheduling its
//!   remaining instructions *mid-flight* rather than only at dequeue.
//! * [`FaultPlan`] — a hermetic, seeded fault-injection plan (panic at
//!   dispatch N, artificial latency spikes, forced queue-full rejections,
//!   cancel-a-token-at-dispatch-N) whose global dispatch counter doubles as
//!   the instruction-count telemetry the cancellation tests assert against.
//!
//! Everything is deterministic: a plan derives its fault points from an
//! explicit seed (or explicit builder calls), never from wall-clock time or
//! an ambient RNG, so a fault storm replays identically across runs.

use chehab_fhe::FheError;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// A cloneable cancellation flag with an optional deadline.
///
/// Clones share state: cancelling any clone cancels them all. The token is
/// checked by [`check`](CancellationToken::check) at instruction-dispatch
/// granularity inside both executors, which is what makes mid-flight
/// cancellation possible without interrupting an individual homomorphic op.
#[derive(Debug, Clone, Default)]
pub struct CancellationToken {
    inner: Arc<TokenInner>,
}

#[derive(Debug, Default)]
struct TokenInner {
    cancelled: AtomicBool,
    /// The instant at which the deadline expires; `None` when the token has
    /// no deadline.
    deadline: Option<Instant>,
}

impl CancellationToken {
    /// A token with no deadline that only cancels explicitly.
    pub fn new() -> Self {
        Self::default()
    }

    /// A token that reports [`FheError::DeadlineExceeded`] once `deadline`
    /// has passed (and can still be cancelled explicitly before then).
    pub fn with_deadline(deadline: Instant) -> Self {
        CancellationToken {
            inner: Arc::new(TokenInner {
                cancelled: AtomicBool::new(false),
                deadline: Some(deadline),
            }),
        }
    }

    /// A token whose deadline is `timeout` from now.
    pub fn deadline_in(timeout: Duration) -> Self {
        Self::with_deadline(Instant::now() + timeout)
    }

    /// Flags the token as cancelled; every clone observes it.
    pub fn cancel(&self) {
        self.inner.cancelled.store(true, Ordering::Release);
    }

    /// Whether [`cancel`](CancellationToken::cancel) has been called on any
    /// clone. Does **not** consider the deadline.
    pub fn is_cancelled(&self) -> bool {
        self.inner.cancelled.load(Ordering::Acquire)
    }

    /// The token's deadline, if one was set at construction.
    pub fn deadline(&self) -> Option<Instant> {
        self.inner.deadline
    }

    /// Whether the token's deadline (if any) has already passed.
    pub fn deadline_expired(&self) -> bool {
        self.inner.deadline.is_some_and(|d| Instant::now() >= d)
    }

    /// The dispatch-time check: `Err(Cancelled)` if the token was cancelled,
    /// `Err(DeadlineExceeded)` if its deadline has passed, `Ok(())` otherwise.
    /// Explicit cancellation wins over deadline expiry when both hold.
    pub fn check(&self) -> Result<(), FheError> {
        if self.is_cancelled() {
            return Err(FheError::Cancelled);
        }
        if self.deadline_expired() {
            return Err(FheError::DeadlineExceeded);
        }
        Ok(())
    }
}

/// SplitMix64: the standard 64-bit seed scrambler. Deterministic and
/// dependency-free, which is all fault-point derivation needs.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[derive(Debug, Default)]
struct PlanInner {
    /// Global dispatch indices (0-based, pre-increment) at which the
    /// dispatching worker panics. Sorted for binary search.
    panic_at: Vec<u64>,
    /// `(period, spike)`: every `period`-th dispatch sleeps for `spike`.
    latency_every: Option<(u64, Duration)>,
    /// Remaining forced `QueueFull` rejections the serving engine will
    /// report before admitting work again.
    queue_full_budget: AtomicU64,
    /// Remaining worker kills: a serving worker that draws one panics
    /// *outside* the handler's `catch_unwind`, killing the thread — the
    /// hard-failure mode the abandoned-handle machinery defends against.
    kill_worker_budget: AtomicU64,
    /// Tokens to cancel when the dispatch counter reaches the given index.
    cancel_at: Mutex<Vec<(u64, CancellationToken)>>,
    /// Instructions dispatched under this plan, across all executors and
    /// worker threads. This is the telemetry the cancellation acceptance
    /// test asserts against.
    dispatched: AtomicU64,
}

/// A deterministic, seeded fault-injection plan.
///
/// Clones share state (one global dispatch counter, one queue-full budget).
/// Wire a plan through [`ExecResources::faults`](crate::ExecResources) to
/// inject executor-level faults, and through
/// [`ServingConfig::faults`](crate::ServingConfig) to inject submission-level
/// faults. A default plan injects nothing and costs one atomic increment per
/// dispatched instruction.
#[derive(Debug, Clone, Default)]
pub struct FaultPlan {
    inner: Arc<PlanInner>,
}

impl FaultPlan {
    /// A plan that injects no faults but still counts dispatches — useful as
    /// pure instruction-count telemetry.
    pub fn new() -> Self {
        Self::default()
    }

    /// A seeded storm: `panics` panic points and a latency spike cadence are
    /// derived deterministically from `seed` over the dispatch range
    /// `[0, span)`. The same `(seed, span, panics)` always yields the same
    /// plan.
    pub fn storm(seed: u64, span: u64, panics: usize) -> Self {
        let mut state = seed;
        let mut panic_at: Vec<u64> = (0..panics)
            .map(|_| splitmix64(&mut state) % span.max(1))
            .collect();
        panic_at.sort_unstable();
        panic_at.dedup();
        // A spike roughly every 1/8th of the span, 1–4ms long.
        let period = (span / 8).max(1);
        let spike = Duration::from_millis(1 + splitmix64(&mut state) % 4);
        FaultPlan {
            inner: Arc::new(PlanInner {
                panic_at,
                latency_every: Some((period, spike)),
                ..PlanInner::default()
            }),
        }
    }

    /// A plan that panics at exactly the given global dispatch indices.
    pub fn panic_at(indices: &[u64]) -> Self {
        let mut panic_at = indices.to_vec();
        panic_at.sort_unstable();
        panic_at.dedup();
        FaultPlan {
            inner: Arc::new(PlanInner {
                panic_at,
                ..PlanInner::default()
            }),
        }
    }

    /// A plan that sleeps `spike` on every `period`-th dispatch.
    pub fn latency_spikes(period: u64, spike: Duration) -> Self {
        FaultPlan {
            inner: Arc::new(PlanInner {
                latency_every: Some((period.max(1), spike)),
                ..PlanInner::default()
            }),
        }
    }

    /// Arms `budget` forced queue-full rejections: the serving engine's
    /// submission paths report `QueueFull` until the budget is spent.
    pub fn force_queue_full(&self, budget: u64) {
        self.inner
            .queue_full_budget
            .store(budget, Ordering::Release);
    }

    /// Arms `budget` worker kills: serving workers that pop a job while the
    /// budget lasts die outright (their thread panics outside the handler's
    /// `catch_unwind`), exercising the abandoned-handle path.
    pub fn kill_workers(&self, budget: u64) {
        self.inner
            .kill_worker_budget
            .store(budget, Ordering::Release);
    }

    /// Consumes one unit of the worker-kill budget. Returns `true` when the
    /// drawing worker should die.
    pub fn take_worker_kill(&self) -> bool {
        self.inner
            .kill_worker_budget
            .fetch_update(Ordering::AcqRel, Ordering::Acquire, |b| b.checked_sub(1))
            .is_ok()
    }

    /// Registers `token` to be cancelled when the global dispatch counter
    /// reaches `index` (0-based). Several tokens may be registered.
    pub fn cancel_token_at(&self, index: u64, token: &CancellationToken) {
        self.inner
            .cancel_at
            .lock()
            .expect("fault plan lock")
            .push((index, token.clone()));
    }

    /// Instructions dispatched under this plan so far, across all threads.
    pub fn instructions_dispatched(&self) -> u64 {
        self.inner.dispatched.load(Ordering::Acquire)
    }

    /// Consumes one unit of the forced queue-full budget. Returns `true`
    /// when the submission should be rejected as `QueueFull`.
    pub fn take_forced_queue_full(&self) -> bool {
        self.inner
            .queue_full_budget
            .fetch_update(Ordering::AcqRel, Ordering::Acquire, |b| b.checked_sub(1))
            .is_ok()
    }

    /// The dispatch hook, called by both executors immediately before each
    /// instruction runs. Increments the dispatch counter, applies any
    /// registered token cancellations and latency spikes for this index, and
    /// **panics deliberately** when the index is a planned panic point — the
    /// executors run this under `catch_unwind` and convert the panic into
    /// [`FheError::WorkerPanic`].
    pub fn before_instr(&self) {
        let index = self.inner.dispatched.fetch_add(1, Ordering::AcqRel);
        {
            let pending = self.inner.cancel_at.lock().expect("fault plan lock");
            for (at, token) in pending.iter() {
                if index >= *at {
                    token.cancel();
                }
            }
        }
        if let Some((period, spike)) = self.inner.latency_every {
            if index % period == period - 1 {
                std::thread::sleep(spike);
            }
        }
        if self.inner.panic_at.binary_search(&index).is_ok() {
            panic!("injected fault: worker panic at dispatch index {index}");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn a_cancelled_token_is_seen_by_every_clone() {
        let token = CancellationToken::new();
        let clone = token.clone();
        assert!(token.check().is_ok());
        clone.cancel();
        assert!(token.is_cancelled());
        assert_eq!(token.check(), Err(FheError::Cancelled));
    }

    #[test]
    fn an_expired_deadline_reports_deadline_exceeded() {
        let token = CancellationToken::with_deadline(Instant::now() - Duration::from_millis(1));
        assert!(token.deadline_expired());
        assert_eq!(token.check(), Err(FheError::DeadlineExceeded));
        // Explicit cancellation takes precedence over the expired deadline.
        token.cancel();
        assert_eq!(token.check(), Err(FheError::Cancelled));
    }

    #[test]
    fn storms_are_deterministic_in_the_seed() {
        let a = FaultPlan::storm(42, 1000, 5);
        let b = FaultPlan::storm(42, 1000, 5);
        let c = FaultPlan::storm(43, 1000, 5);
        assert_eq!(a.inner.panic_at, b.inner.panic_at);
        assert_ne!(a.inner.panic_at, c.inner.panic_at);
    }

    #[test]
    fn the_dispatch_hook_counts_cancels_and_panics() {
        let plan = FaultPlan::panic_at(&[2]);
        let token = CancellationToken::new();
        plan.cancel_token_at(1, &token);
        plan.before_instr(); // index 0
        assert!(!token.is_cancelled());
        plan.before_instr(); // index 1: cancels the token
        assert!(token.is_cancelled());
        let panic = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            plan.before_instr() // index 2: planned panic
        }));
        assert!(panic.is_err());
        assert_eq!(plan.instructions_dispatched(), 3);
    }

    #[test]
    fn the_queue_full_budget_is_consumed_exactly() {
        let plan = FaultPlan::new();
        assert!(!plan.take_forced_queue_full());
        plan.force_queue_full(2);
        assert!(plan.take_forced_queue_full());
        assert!(plan.take_forced_queue_full());
        assert!(!plan.take_forced_queue_full());
    }
}
