//! Lowering a circuit DAG into a flat, topologically-leveled instruction
//! schedule.
//!
//! The hash-consed [`CircuitDag`] orders nodes so operands precede uses,
//! which suffices for sequential execution. The runtime instead wants the
//! *wavefront* view: instructions grouped into levels such that every operand
//! of a level-`L` instruction is produced at a level strictly below `L` (or
//! arrives pre-bound from the client). All instructions inside one level are
//! mutually independent and can execute concurrently.
//!
//! Within a level, instructions are ordered by descending estimated cost
//! (longest-processing-time-first): combined with the runtime's shared work
//! queue this is the classic greedy bound for balancing heterogeneous ops
//! (a ct-ct multiplication costs ~100x an addition) across workers.
//!
//! Beyond the level grouping, lowering also emits the *dataflow* view the
//! barrier-free [`DataflowExecutor`](crate::DataflowExecutor) consumes: the
//! per-instruction remaining-dependency count ([`Schedule::dep_counts`]) and
//! the transpose of the operand graph ([`Schedule::dependents`]), plus
//! additive [`CostTerms`] per instruction so critical-path priorities can be
//! recomputed under any (e.g. timer-calibrated) cost table without
//! re-lowering.

use chehab_ir::{BinOp, CircuitDag, CostModel, DagNode, DataKind, NodeId, OpCosts};
use std::ops::Range;
use std::time::Duration;

/// A register slot: instruction destinations and operands use the circuit
/// DAG's node ids directly, so the register file is indexed by [`NodeId`].
pub type Slot = NodeId;

/// One flat server-side instruction of a compiled circuit.
///
/// Leaves, plaintext-only subcircuits and client-packed vectors never become
/// instructions: they are bound into the register file before execution
/// starts.
#[derive(Debug, Clone, PartialEq)]
pub enum Instr {
    /// Element-wise binary operation; whether the ct-ct or ct-pt backend call
    /// is issued depends on the operand registers at run time.
    Bin {
        /// The operator.
        op: BinOp,
        /// Left operand slot.
        a: Slot,
        /// Right operand slot.
        b: Slot,
    },
    /// Element-wise negation.
    Neg {
        /// Operand slot.
        a: Slot,
    },
    /// Slot rotation, already realized into the per-step key sequence of the
    /// rotation-key plan (NAF decomposition, Appendix B).
    Rot {
        /// Operand slot.
        a: Slot,
        /// The realized rotation steps, applied left to right.
        parts: Vec<i64>,
    },
    /// Run-time packing: element `i` is placed into vector slot `i` with a
    /// right rotation and accumulated with additions; plaintext elements are
    /// folded in with a single plaintext addition.
    Pack {
        /// Source slot of each vector element, in slot order.
        elems: Vec<Slot>,
    },
}

impl Instr {
    /// The register slots this instruction reads, in operand order
    /// (duplicates preserved — `a * a` lists its operand twice).
    pub fn operands(&self) -> Vec<Slot> {
        match self {
            Instr::Bin { a, b, .. } => vec![*a, *b],
            Instr::Neg { a } | Instr::Rot { a, .. } => vec![*a],
            Instr::Pack { elems } => elems.clone(),
        }
    }

    /// A short static label of the instruction's operator, used as the span
    /// name in telemetry traces (`"add"`, `"sub"`, `"mul"`, `"neg"`,
    /// `"rot"`, `"pack"`).
    pub fn label(&self) -> &'static str {
        match self {
            Instr::Bin { op: BinOp::Add, .. } => "add",
            Instr::Bin { op: BinOp::Sub, .. } => "sub",
            Instr::Bin { op: BinOp::Mul, .. } => "mul",
            Instr::Neg { .. } => "neg",
            Instr::Rot { .. } => "rot",
            Instr::Pack { .. } => "pack",
        }
    }
}

/// The additive cost composition of one instruction: how many of each
/// primitive operation it performs. Its cost under *any* [`OpCosts`] table is
/// the dot product [`CostTerms::cost`], which is what lets critical-path
/// priorities be recomputed under a timer-calibrated table
/// ([`crate::CalibratedCostModel::to_op_costs`]) without re-lowering the
/// schedule.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct CostTerms {
    /// Vector additions / subtractions / negations.
    pub adds: f64,
    /// Realized rotation steps.
    pub rotations: f64,
    /// Ciphertext–ciphertext multiplications.
    pub ct_ct_muls: f64,
    /// Ciphertext–plaintext multiplications.
    pub ct_pt_muls: f64,
}

impl CostTerms {
    /// The instruction cost under a concrete per-operator cost table.
    pub fn cost(&self, costs: &OpCosts) -> f64 {
        self.adds * costs.vec_add
            + self.rotations * costs.rotation
            + self.ct_ct_muls * costs.vec_mul_ct_ct
            + self.ct_pt_muls * costs.vec_mul_ct_pt
    }
}

/// An instruction bound to its destination register and wavefront level.
#[derive(Debug, Clone)]
pub struct ScheduledInstr {
    /// Destination register (the circuit DAG node this computes).
    pub dst: Slot,
    /// The operation.
    pub instr: Instr,
    /// Wavefront level; every operand is produced strictly below it.
    pub level: usize,
    /// Estimated cost under the static cost model, used for load balancing.
    pub est_cost: f64,
    /// Additive cost composition, for re-costing under calibrated tables.
    pub terms: CostTerms,
}

/// A leveled instruction schedule for one compiled circuit.
#[derive(Debug, Clone)]
pub struct Schedule {
    instrs: Vec<ScheduledInstr>,
    levels: Vec<Range<usize>>,
    slot_count: usize,
    output: Slot,
    /// Per instruction index: number of *distinct* producer instructions
    /// among its operands (pre-bound operands contribute nothing).
    dep_counts: Vec<usize>,
    /// Per instruction index: the instruction indices that consume its
    /// destination slot — the transpose of the operand graph. Dependents
    /// always sit at strictly higher levels, hence at strictly larger
    /// indices (instructions are sorted by level).
    dependents: Vec<Vec<usize>>,
    /// Per register slot: the number of *distinct instructions* that read
    /// it — the last-use analysis backing arena-backed register files. A
    /// slot whose count reaches zero at run time (each consumer decrements
    /// once on completion) is dead: its buffers can return to the arena.
    consumer_counts: Vec<usize>,
}

impl Schedule {
    /// Lowers the server-side portion of a circuit DAG into a leveled
    /// schedule.
    ///
    /// `prebound` marks the register slots the client binds before execution
    /// (leaves, plaintext subcircuits, client-packed vectors); every other
    /// node becomes an instruction. `realize` maps a rotation step to the key
    /// sequence that implements it. `costs` supplies the per-operator
    /// estimates used to order instructions within a level.
    pub fn lower(
        dag: &CircuitDag,
        prebound: &[bool],
        realize: impl Fn(i64) -> Vec<i64>,
        costs: &OpCosts,
    ) -> Schedule {
        assert_eq!(
            prebound.len(),
            dag.len(),
            "prebound mask must cover every node"
        );
        let kinds = data_kinds(dag);
        // `level_of[id]` = wavefront level producing slot `id`; pre-bound
        // slots are available before level 0.
        let mut level_of: Vec<Option<usize>> = vec![None; dag.len()];
        let mut instrs: Vec<ScheduledInstr> = Vec::new();
        for (id, node) in dag.nodes().iter().enumerate() {
            if prebound[id] {
                continue;
            }
            let level = node
                .operands()
                .into_iter()
                .map(|op| level_of[op].map_or(0, |l| l + 1))
                .max()
                .unwrap_or(0);
            level_of[id] = Some(level);
            let instr = match node {
                DagNode::CtVar(_) | DagNode::PtVar(_) | DagNode::Const(_) => {
                    unreachable!("leaves are always pre-bound")
                }
                DagNode::Bin(op, a, b) | DagNode::VecBin(op, a, b) => Instr::Bin {
                    op: *op,
                    a: *a,
                    b: *b,
                },
                DagNode::Neg(a) | DagNode::VecNeg(a) => Instr::Neg { a: *a },
                DagNode::Rot(a, step) => Instr::Rot {
                    a: *a,
                    parts: realize(*step),
                },
                DagNode::Vec(elems) => Instr::Pack {
                    elems: elems.clone(),
                },
            };
            let terms = cost_terms(&instr, &kinds);
            instrs.push(ScheduledInstr {
                dst: id,
                instr,
                level,
                est_cost: terms.cost(costs),
                terms,
            });
        }

        // Group by level, longest-processing-time-first inside each level.
        instrs.sort_by(|x, y| {
            x.level
                .cmp(&y.level)
                .then(
                    y.est_cost
                        .partial_cmp(&x.est_cost)
                        .unwrap_or(std::cmp::Ordering::Equal),
                )
                .then(x.dst.cmp(&y.dst))
        });
        let mut levels: Vec<Range<usize>> = Vec::new();
        for (index, instr) in instrs.iter().enumerate() {
            if instr.level == levels.len() {
                levels.push(index..index + 1);
            } else {
                levels.last_mut().expect("levels are contiguous from 0").end = index + 1;
            }
        }
        // The dataflow view: per-instruction dependency counts and the
        // transpose of the operand graph, on the *sorted* instruction order.
        let mut instr_of_slot: Vec<Option<usize>> = vec![None; dag.len()];
        for (index, si) in instrs.iter().enumerate() {
            instr_of_slot[si.dst] = Some(index);
        }
        let mut dep_counts = vec![0usize; instrs.len()];
        let mut dependents: Vec<Vec<usize>> = vec![Vec::new(); instrs.len()];
        let mut consumer_counts = vec![0usize; dag.len()];
        for (index, si) in instrs.iter().enumerate() {
            let mut operands = si.instr.operands();
            // A repeated operand (e.g. squaring) is still one dependency
            // (and one consumption): the counts must match the single
            // completion event that satisfies them.
            operands.sort_unstable();
            operands.dedup();
            let mut producers = 0usize;
            for slot in operands {
                consumer_counts[slot] += 1;
                if let Some(producer) = instr_of_slot[slot] {
                    producers += 1;
                    dependents[producer].push(index);
                }
            }
            dep_counts[index] = producers;
        }

        Schedule {
            instrs,
            levels,
            slot_count: dag.len(),
            output: dag.output(),
            dep_counts,
            dependents,
            consumer_counts,
        }
    }

    /// The scheduled instructions, grouped by level and sorted by descending
    /// estimated cost within each level.
    pub fn instrs(&self) -> &[ScheduledInstr] {
        &self.instrs
    }

    /// Index ranges into [`Schedule::instrs`], one per wavefront level.
    pub fn levels(&self) -> &[Range<usize>] {
        &self.levels
    }

    /// Number of wavefront levels (the critical-path length of the
    /// server-side circuit).
    pub fn level_count(&self) -> usize {
        self.levels.len()
    }

    /// Size of the register file (one slot per circuit DAG node).
    pub fn slot_count(&self) -> usize {
        self.slot_count
    }

    /// The slot holding the circuit output.
    pub fn output(&self) -> Slot {
        self.output
    }

    /// The widest level: an upper bound on exploitable intra-request
    /// parallelism, useful when picking a thread count.
    pub fn max_width(&self) -> usize {
        self.levels
            .iter()
            .map(|r| r.end - r.start)
            .max()
            .unwrap_or(0)
    }

    /// Total estimated cost of all instructions.
    pub fn total_est_cost(&self) -> f64 {
        self.instrs.iter().map(|i| i.est_cost).sum()
    }

    /// Projects the makespan of this schedule on `workers` workers from
    /// measured per-instruction latencies (`instr_times[i]` is the duration
    /// of `instrs()[i]`).
    ///
    /// Within each level the instructions are assigned
    /// longest-processing-time-first to the earliest-free worker — the same
    /// greedy policy the live work queue follows — and levels are separated
    /// by barriers, so the projection is the sum of per-level makespans.
    /// With measured (rather than modeled) durations this is the
    /// timer-augmented load-balance estimate: on a machine with `workers`
    /// free cores the wavefront executor's wall-clock converges to it.
    ///
    /// # Panics
    ///
    /// Panics if `instr_times` is shorter than the instruction list.
    pub fn makespan(
        &self,
        instr_times: &[std::time::Duration],
        workers: usize,
    ) -> std::time::Duration {
        assert!(
            instr_times.len() >= self.instrs.len(),
            "need one duration per instruction"
        );
        let workers = workers.max(1);
        let mut total = std::time::Duration::ZERO;
        let mut finish = vec![std::time::Duration::ZERO; workers];
        for range in &self.levels {
            finish.fill(std::time::Duration::ZERO);
            let mut sorted: Vec<std::time::Duration> = instr_times[range.clone()].to_vec();
            sorted.sort_unstable_by(|a, b| b.cmp(a));
            for duration in sorted {
                let earliest = finish.iter_mut().min().expect("at least one worker");
                *earliest += duration;
            }
            total += finish.iter().copied().max().unwrap_or_default();
        }
        total
    }

    /// The parallelism an infinitely wide machine could exploit **under
    /// level barriers**: total estimated cost divided by the sum of per-level
    /// maximum costs. This is the *level-limited* figure; the barrier-free
    /// bound is [`Schedule::dependency_parallelism`], and the gap between
    /// the two is exactly the parallelism level barriers forfeit.
    pub fn cost_parallelism(&self) -> f64 {
        let critical: f64 = self
            .levels
            .iter()
            .map(|r| {
                self.instrs[r.clone()]
                    .iter()
                    .map(|i| i.est_cost)
                    .fold(0.0, f64::max)
            })
            .sum();
        if critical > 0.0 {
            self.total_est_cost() / critical
        } else {
            1.0
        }
    }

    /// The parallelism an infinitely wide **barrier-free** machine could
    /// exploit: total estimated cost divided by the most expensive
    /// dependency chain. Always at least [`Schedule::cost_parallelism`]
    /// (every dependency chain crosses each of its levels' maxima at most
    /// once); the ratio between the two quantifies how much of the
    /// schedule's parallelism is *dependency-limited* rather than
    /// *level-limited*.
    pub fn dependency_parallelism(&self) -> f64 {
        let costs: Vec<f64> = self.instrs.iter().map(|i| i.est_cost).collect();
        let critical = self.chain_costs(&costs).into_iter().fold(0.0, f64::max);
        if critical > 0.0 {
            self.total_est_cost() / critical
        } else {
            1.0
        }
    }

    /// Per-instruction remaining-dependency counts: the number of distinct
    /// producer instructions among each instruction's operands. Instructions
    /// with count zero are runnable as soon as the pre-bound registers are
    /// filled.
    pub fn dep_counts(&self) -> &[usize] {
        &self.dep_counts
    }

    /// The transpose of the operand graph: `dependents()[i]` lists the
    /// instruction indices that consume instruction `i`'s destination slot.
    /// Every dependent index is strictly greater than `i`.
    pub fn dependents(&self) -> &[Vec<usize>] {
        &self.dependents
    }

    /// Per register slot: the number of distinct instructions that read it —
    /// the schedule's **last-use analysis**. Executors seed a per-slot
    /// countdown from this and decrement it once per completed consumer; the
    /// decrement that reaches zero marks the slot dead, and its buffers
    /// return to the arena (the output slot is exempt — it outlives the
    /// run). Slots nothing reads (count 0) are only the output and any
    /// pre-bound value the dead-code-eliminated circuit never touches.
    pub fn consumer_counts(&self) -> &[usize] {
        &self.consumer_counts
    }

    /// Per-instruction costs under an arbitrary cost table (e.g. a
    /// timer-calibrated one), via the stored [`CostTerms`].
    pub fn instr_costs(&self, costs: &OpCosts) -> Vec<f64> {
        self.instrs.iter().map(|i| i.terms.cost(costs)).collect()
    }

    /// Critical-path priorities under a cost table: `priority[i]` is the
    /// cost of the most expensive dependency chain *starting at* instruction
    /// `i` (inclusive). The dataflow executor pops ready instructions in
    /// descending priority order — the classic critical-path-first list
    /// scheduling heuristic — and sessions recompute these from the
    /// accumulated [`crate::CalibratedCostModel`] so priorities track
    /// measured hardware costs as calibration accumulates.
    pub fn critical_path_priorities(&self, costs: &OpCosts) -> Vec<f64> {
        self.chain_costs(&self.instr_costs(costs))
    }

    /// Critical-path priorities under the static estimates the schedule was
    /// lowered with.
    pub fn default_priorities(&self) -> Vec<f64> {
        let costs: Vec<f64> = self.instrs.iter().map(|i| i.est_cost).collect();
        self.chain_costs(&costs)
    }

    /// `chain[i] = cost[i] + max(chain[d] for d in dependents(i))`, the
    /// downstream critical-path cost of every instruction.
    fn chain_costs(&self, costs: &[f64]) -> Vec<f64> {
        let mut chain = costs.to_vec();
        // Dependents have strictly larger indices, so one reverse pass
        // settles every chain.
        for i in (0..chain.len()).rev() {
            let downstream = self.dependents[i]
                .iter()
                .map(|&d| chain[d])
                .fold(0.0, f64::max);
            chain[i] = costs[i] + downstream;
        }
        chain
    }

    /// The true critical-path (barrier-free, infinitely wide) makespan of
    /// this schedule under measured per-instruction latencies: the length of
    /// the most expensive dependency chain. No executor — leveled or
    /// dataflow — can beat this; the gap between it and
    /// [`Schedule::makespan`] is the slack level barriers leave on the
    /// table plus any width limit.
    ///
    /// # Panics
    ///
    /// Panics if `instr_times` is shorter than the instruction list.
    pub fn critical_path_makespan(&self, instr_times: &[Duration]) -> Duration {
        assert!(
            instr_times.len() >= self.instrs.len(),
            "need one duration per instruction"
        );
        let mut finish = vec![Duration::ZERO; self.instrs.len()];
        let mut ready = vec![Duration::ZERO; self.instrs.len()];
        for i in 0..self.instrs.len() {
            finish[i] = ready[i] + instr_times[i];
            for &d in &self.dependents[i] {
                ready[d] = ready[d].max(finish[i]);
            }
        }
        finish.into_iter().max().unwrap_or(Duration::ZERO)
    }

    /// Projects the **barrier-free** makespan of this schedule on `workers`
    /// workers from measured per-instruction latencies: an event-driven
    /// simulation of the dataflow executor's policy (an instruction becomes
    /// ready the instant its last dependency finishes; idle workers pick the
    /// ready instruction with the longest remaining dependency chain).
    ///
    /// Compare against the leveled [`Schedule::makespan`] at the same
    /// `workers` to obtain the *barrier slack reclaimed* by dataflow
    /// execution, and against [`Schedule::critical_path_makespan`] to see
    /// how far the worker count (rather than dependencies) still limits it.
    ///
    /// # Panics
    ///
    /// Panics if `instr_times` is shorter than the instruction list.
    pub fn dataflow_makespan(&self, instr_times: &[Duration], workers: usize) -> Duration {
        assert!(
            instr_times.len() >= self.instrs.len(),
            "need one duration per instruction"
        );
        let n = self.instrs.len();
        if n == 0 {
            return Duration::ZERO;
        }
        let workers = workers.max(1);
        let times: Vec<f64> = instr_times[..n].iter().map(Duration::as_secs_f64).collect();
        let priority = self.chain_costs(&times);

        // Event-driven simulation: time advances through completion events;
        // at each instant every idle worker takes the highest-priority
        // instruction that is ready *now* (never committing a worker to a
        // lower-priority instruction while a higher-priority one is about to
        // become ready, which is exactly what the live executor does too).
        let mut pending = self.dep_counts.clone();
        let mut ready: Vec<usize> = (0..n).filter(|&i| pending[i] == 0).collect();
        let mut running: Vec<(f64, usize)> = Vec::new();
        let mut free = vec![0.0f64; workers];
        let mut now = 0.0f64;
        let mut makespan = 0.0f64;
        loop {
            // Assign while an idle worker and a ready instruction coexist.
            while !ready.is_empty() {
                let Some(worker) = free.iter().position(|&f| f <= now) else {
                    break;
                };
                // Highest priority first, lowest index as the deterministic
                // tie-break — the live executor's pop order.
                let pos = ready
                    .iter()
                    .enumerate()
                    .max_by(|(_, &a), (_, &b)| priority[a].total_cmp(&priority[b]).then(b.cmp(&a)))
                    .map(|(pos, _)| pos)
                    .expect("ready is non-empty");
                let pick = ready.swap_remove(pos);
                let finish = now + times[pick];
                free[worker] = finish;
                running.push((finish, pick));
                makespan = makespan.max(finish);
            }
            if running.is_empty() {
                break;
            }
            // Advance to the next completion and release its dependents.
            let earliest = running
                .iter()
                .enumerate()
                .min_by(|(_, (a, ai)), (_, (b, bi))| a.total_cmp(b).then(ai.cmp(bi)))
                .map(|(pos, _)| pos)
                .expect("running is non-empty");
            let (finish, done) = running.swap_remove(earliest);
            now = now.max(finish);
            for &d in &self.dependents[done] {
                pending[d] -= 1;
                if pending[d] == 0 {
                    ready.push(d);
                }
            }
        }
        Duration::from_secs_f64(makespan)
    }
}

/// Per-node data kinds of a circuit DAG: a node is ciphertext-kind if any
/// operand (or the node itself) is encrypted.
///
/// This is the analysis code generation uses to split the circuit between
/// client-side plaintext evaluation and server-side homomorphic execution.
pub fn data_kinds(dag: &CircuitDag) -> Vec<DataKind> {
    let mut kinds = vec![DataKind::Plaintext; dag.len()];
    for (id, node) in dag.nodes().iter().enumerate() {
        kinds[id] = match node {
            DagNode::CtVar(_) => DataKind::Ciphertext,
            DagNode::PtVar(_) | DagNode::Const(_) => DataKind::Plaintext,
            _ => {
                if node
                    .operands()
                    .into_iter()
                    .any(|o| kinds[o] == DataKind::Ciphertext)
                {
                    DataKind::Ciphertext
                } else {
                    DataKind::Plaintext
                }
            }
        };
    }
    kinds
}

/// The additive cost composition of one instruction (how many primitives it
/// performs); its estimated cost under any table is `terms.cost(costs)`.
fn cost_terms(instr: &Instr, kinds: &[DataKind]) -> CostTerms {
    let is_ct = |slot: Slot| kinds[slot] == DataKind::Ciphertext;
    match instr {
        Instr::Bin { op, a, b } => match (op, is_ct(*a) && is_ct(*b)) {
            (BinOp::Mul, true) => CostTerms {
                ct_ct_muls: 1.0,
                ..CostTerms::default()
            },
            (BinOp::Mul, false) => CostTerms {
                ct_pt_muls: 1.0,
                ..CostTerms::default()
            },
            (BinOp::Add | BinOp::Sub, _) => CostTerms {
                adds: 1.0,
                ..CostTerms::default()
            },
        },
        Instr::Neg { .. } => CostTerms {
            adds: 1.0,
            ..CostTerms::default()
        },
        Instr::Rot { parts, .. } => CostTerms {
            rotations: parts.len().max(1) as f64,
            ..CostTerms::default()
        },
        Instr::Pack { elems } => {
            let ciphers = elems.iter().filter(|&&e| is_ct(e)).count() as f64;
            CostTerms {
                rotations: ciphers,
                adds: ciphers + 1.0,
                ..CostTerms::default()
            }
        }
    }
}

/// Convenience: lowers with the default static cost model's operator costs.
pub fn lower_with_default_costs(
    dag: &CircuitDag,
    prebound: &[bool],
    realize: impl Fn(i64) -> Vec<i64>,
) -> Schedule {
    Schedule::lower(dag, prebound, realize, &CostModel::default().op_costs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use chehab_ir::parse;

    /// Mirrors the compiler's default client-side layout: leaves, plaintext
    /// subcircuits, and leaf-only vectors (packed before encryption) are
    /// pre-bound.
    fn client_prebound(dag: &CircuitDag) -> Vec<bool> {
        let kinds = data_kinds(dag);
        dag.nodes()
            .iter()
            .enumerate()
            .map(|(id, n)| {
                n.is_leaf()
                    || kinds[id] == DataKind::Plaintext
                    || matches!(n, DagNode::Vec(elems)
                        if elems.iter().all(|&e| dag.nodes()[e].is_leaf()))
            })
            .collect()
    }

    fn schedule_of(source: &str) -> (CircuitDag, Schedule) {
        let expr = parse(source).unwrap();
        let dag = CircuitDag::from_expr(&expr).eliminate_dead_code();
        let prebound = client_prebound(&dag);
        let schedule = lower_with_default_costs(&dag, &prebound, |step| vec![step]);
        (dag, schedule)
    }

    #[test]
    fn operands_land_in_strictly_earlier_levels() {
        let (_, schedule) = schedule_of(
            "(VecAdd (VecAdd (VecMul (Vec a0 a1) (Vec b0 b1)) (<< (VecMul (Vec a0 a1) (Vec b0 b1)) 1)) (VecMul (Vec c0 c1) (Vec d0 d1)))",
        );
        let mut level_of = vec![usize::MAX; schedule.slot_count()];
        for si in schedule.instrs() {
            level_of[si.dst] = si.level;
        }
        for si in schedule.instrs() {
            let operands: Vec<Slot> = match &si.instr {
                Instr::Bin { a, b, .. } => vec![*a, *b],
                Instr::Neg { a } | Instr::Rot { a, .. } => vec![*a],
                Instr::Pack { elems } => elems.clone(),
            };
            for op in operands {
                assert!(
                    level_of[op] == usize::MAX || level_of[op] < si.level,
                    "operand {op} of instruction at level {} must come strictly earlier",
                    si.level
                );
            }
        }
    }

    #[test]
    fn independent_multiplications_share_a_level() {
        let (_, schedule) =
            schedule_of("(VecAdd (VecMul (Vec a b) (Vec c d)) (VecMul (Vec e f) (Vec g h)))");
        // Two independent ct-ct multiplications at level 0 (vectors are
        // client-packed), one addition at level 1.
        assert_eq!(schedule.level_count(), 2);
        assert_eq!(schedule.max_width(), 2);
        assert!(schedule.cost_parallelism() > 1.5);
    }

    #[test]
    fn makespan_projection_respects_levels_and_workers() {
        use std::time::Duration;
        // Two independent 100x multiplications, then one addition.
        let (_, schedule) =
            schedule_of("(VecAdd (VecMul (Vec a b) (Vec c d)) (VecMul (Vec e f) (Vec g h)))");
        let times: Vec<Duration> = schedule
            .instrs()
            .iter()
            .map(|si| match si.instr {
                Instr::Bin { op: BinOp::Mul, .. } => Duration::from_millis(100),
                _ => Duration::from_millis(1),
            })
            .collect();
        // One worker: everything serializes.
        assert_eq!(schedule.makespan(&times, 1), Duration::from_millis(201));
        // Two workers: the multiplications overlap, the addition follows.
        assert_eq!(schedule.makespan(&times, 2), Duration::from_millis(101));
        // Extra workers cannot beat the critical path.
        assert_eq!(schedule.makespan(&times, 8), Duration::from_millis(101));
    }

    #[test]
    fn levels_are_sorted_by_descending_cost() {
        let (_, schedule) =
            schedule_of("(VecAdd (VecAdd (Vec a b) (Vec c d)) (VecMul (Vec e f) (Vec g h)))");
        for range in schedule.levels() {
            let costs: Vec<f64> = schedule.instrs()[range.clone()]
                .iter()
                .map(|i| i.est_cost)
                .collect();
            assert!(
                costs.windows(2).all(|w| w[0] >= w[1]),
                "level not sorted by descending cost: {costs:?}"
            );
        }
    }

    #[test]
    fn plaintext_subcircuits_produce_no_instructions() {
        let (_, schedule) = schedule_of("(VecMul (Vec a b) (Vec (+ (pt x) 1) (pt y)))");
        // Only the multiplication and the runtime pack of the plaintext
        // vector... the plaintext vector is plain-kind, so it is pre-bound:
        // one instruction total.
        assert_eq!(schedule.instrs().len(), 1);
        assert!(matches!(
            schedule.instrs()[0].instr,
            Instr::Bin { op: BinOp::Mul, .. }
        ));
    }

    #[test]
    fn rotation_parts_come_from_the_realize_callback() {
        let expr = parse("(<< (VecMul (Vec a b c d) (Vec e f g h)) 3)").unwrap();
        let dag = CircuitDag::from_expr(&expr).eliminate_dead_code();
        let prebound = client_prebound(&dag);
        let schedule = Schedule::lower(
            &dag,
            &prebound,
            |step| vec![4, -(4 - step)],
            &OpCosts::default(),
        );
        let rot = schedule
            .instrs()
            .iter()
            .find(|si| matches!(si.instr, Instr::Rot { .. }))
            .expect("rotation instruction");
        assert_eq!(
            rot.instr,
            Instr::Rot {
                a: rot_operand(&schedule),
                parts: vec![4, -1]
            }
        );
    }

    #[test]
    fn dependency_graph_transposes_the_operand_graph() {
        let (_, schedule) = schedule_of(
            "(VecAdd (VecAdd (VecMul (Vec a0 a1) (Vec b0 b1)) (<< (VecMul (Vec a0 a1) (Vec b0 b1)) 1)) (VecMul (Vec c0 c1) (Vec d0 d1)))",
        );
        let mut instr_of_slot = vec![None; schedule.slot_count()];
        for (index, si) in schedule.instrs().iter().enumerate() {
            instr_of_slot[si.dst] = Some(index);
        }
        for (index, si) in schedule.instrs().iter().enumerate() {
            let mut producers: Vec<usize> = si
                .instr
                .operands()
                .into_iter()
                .filter_map(|slot| instr_of_slot[slot])
                .collect();
            producers.sort_unstable();
            producers.dedup();
            assert_eq!(schedule.dep_counts()[index], producers.len());
            for p in producers {
                assert!(p < index, "producers precede consumers");
                assert!(
                    schedule.dependents()[p].contains(&index),
                    "transpose misses edge {p} -> {index}"
                );
            }
        }
        let edges: usize = schedule.dependents().iter().map(Vec::len).sum();
        assert_eq!(edges, schedule.dep_counts().iter().sum::<usize>());
    }

    #[test]
    fn consumer_counts_cover_every_distinct_read() {
        let (dag, schedule) = schedule_of(
            "(VecAdd (VecAdd (VecMul (Vec a0 a1) (Vec b0 b1)) (<< (VecMul (Vec a0 a1) (Vec b0 b1)) 1)) (VecMul (Vec c0 c1) (Vec d0 d1)))",
        );
        let counts = schedule.consumer_counts();
        assert_eq!(counts.len(), dag.len());
        // Recompute from scratch: distinct consuming instructions per slot.
        let mut expected = vec![0usize; dag.len()];
        for si in schedule.instrs() {
            let mut ops = si.instr.operands();
            ops.sort_unstable();
            ops.dedup();
            for slot in ops {
                expected[slot] += 1;
            }
        }
        assert_eq!(counts, &expected[..]);
        // The shared multiplication feeds both the rotation and the inner
        // addition: two distinct consumers.
        let shared_mul = schedule
            .instrs()
            .iter()
            .find(|si| si.level == 0 && matches!(si.instr, Instr::Bin { op: BinOp::Mul, .. }))
            .map(|si| si.dst)
            .expect("level-0 multiplication");
        assert_eq!(counts[shared_mul], 2);
        // Nothing consumes the output.
        assert_eq!(counts[schedule.output()], 0);
    }

    #[test]
    fn squaring_consumes_its_operand_once() {
        // The square reads the inner product twice but completes once: one
        // consumption, so the countdown matches the single completion event.
        let (_, schedule) =
            schedule_of("(VecMul (VecMul (Vec a b) (Vec c d)) (VecMul (Vec a b) (Vec c d)))");
        let inner = schedule
            .instrs()
            .iter()
            .find(|si| si.level == 0)
            .map(|si| si.dst)
            .expect("inner multiplication");
        assert_eq!(schedule.consumer_counts()[inner], 1);
    }

    #[test]
    fn repeated_operands_count_as_one_dependency() {
        // Squaring consumes the multiplication result twice but must wait
        // for exactly one completion event.
        let (_, schedule) =
            schedule_of("(VecMul (VecMul (Vec a b) (Vec c d)) (VecMul (Vec a b) (Vec c d)))");
        let square = schedule
            .instrs()
            .iter()
            .position(|si| si.level == 1)
            .expect("squaring instruction at level 1");
        assert_eq!(schedule.dep_counts()[square], 1);
    }

    #[test]
    fn cost_terms_recost_under_any_table() {
        let (_, schedule) = schedule_of(
            "(VecAdd (VecMul (Vec a b) (Vec c d)) (<< (VecMul (Vec e f) (Vec g h)) 1))",
        );
        let base = OpCosts::default();
        let est: Vec<f64> = schedule.instrs().iter().map(|i| i.est_cost).collect();
        assert_eq!(schedule.instr_costs(&base), est);
        let doubled = OpCosts {
            vec_add: 2.0 * base.vec_add,
            vec_mul_ct_ct: 2.0 * base.vec_mul_ct_ct,
            vec_mul_ct_pt: 2.0 * base.vec_mul_ct_pt,
            rotation: 2.0 * base.rotation,
            ..base
        };
        for (a, b) in schedule.instr_costs(&doubled).iter().zip(&est) {
            assert!((a - 2.0 * b).abs() < 1e-9);
        }
    }

    #[test]
    fn critical_path_priorities_decrease_along_chains() {
        let (_, schedule) = schedule_of(
            "(VecAdd (VecAdd (VecMul (Vec a0 a1) (Vec b0 b1)) (<< (VecMul (Vec a0 a1) (Vec b0 b1)) 1)) (VecMul (Vec c0 c1) (Vec d0 d1)))",
        );
        let priorities = schedule.default_priorities();
        for (index, deps) in schedule.dependents().iter().enumerate() {
            for &d in deps {
                assert!(
                    priorities[index] > priorities[d],
                    "priority must strictly decrease along dependency edges"
                );
            }
        }
        // Priorities equal cost + best downstream chain.
        for (index, si) in schedule.instrs().iter().enumerate() {
            let downstream = schedule.dependents()[index]
                .iter()
                .map(|&d| priorities[d])
                .fold(0.0, f64::max);
            assert!((priorities[index] - (si.est_cost + downstream)).abs() < 1e-9);
        }
    }

    /// Two chains of uneven per-level costs: the leveled projection pays the
    /// per-level maximum at every barrier, the dataflow projection lets the
    /// cheap chain run ahead.
    fn uneven_chains() -> (Schedule, Vec<Duration>) {
        use std::time::Duration;
        let (_, schedule) = schedule_of(
            "(VecAdd (VecMul (VecMul (Vec a b) (Vec c d)) (Vec e f)) (VecAdd (VecAdd (Vec g h) (Vec i j)) (Vec k l)))",
        );
        let times: Vec<Duration> = schedule
            .instrs()
            .iter()
            .map(|si| match (&si.instr, si.level) {
                (Instr::Bin { op: BinOp::Mul, .. }, _) => Duration::from_millis(10),
                (_, 0) => Duration::from_millis(1),
                (_, 1) => Duration::from_millis(19),
                _ => Duration::from_millis(1),
            })
            .collect();
        (schedule, times)
    }

    #[test]
    fn dataflow_makespan_reclaims_barrier_slack_on_uneven_levels() {
        let (schedule, times) = uneven_chains();
        assert_eq!(schedule.level_count(), 3);
        // Leveled @2 workers: 10 (mul level) + 19 (uneven level) + 1 = 30ms.
        let leveled = schedule.makespan(&times, 2);
        assert_eq!(leveled, Duration::from_millis(30));
        // Dataflow @2: the add chain (1 + 19) overlaps the mul chain
        // (10 + 10); the final add starts at 20 -> 21ms.
        let dataflow = schedule.dataflow_makespan(&times, 2);
        assert_eq!(dataflow, Duration::from_millis(21));
        // The true critical path matches: both chains cost 21ms end to end.
        assert_eq!(
            schedule.critical_path_makespan(&times),
            Duration::from_millis(21)
        );
        // One worker serializes everything, barriers or not.
        let total: Duration = times.iter().sum();
        assert_eq!(schedule.dataflow_makespan(&times, 1), total);
        assert_eq!(schedule.makespan(&times, 1), total);
    }

    #[test]
    fn dataflow_makespan_never_beats_the_critical_path_or_loses_to_levels() {
        let (schedule, times) = uneven_chains();
        for workers in 1..=8 {
            let dataflow = schedule.dataflow_makespan(&times, workers);
            assert!(dataflow >= schedule.critical_path_makespan(&times));
            assert!(dataflow <= schedule.makespan(&times, workers));
        }
    }

    #[test]
    fn dependency_parallelism_is_at_least_level_parallelism() {
        for source in [
            "(VecAdd (VecMul (Vec a b) (Vec c d)) (VecMul (Vec e f) (Vec g h)))",
            "(VecAdd (VecMul (VecMul (Vec a b) (Vec c d)) (Vec e f)) (VecAdd (VecAdd (Vec g h) (Vec i j)) (Vec k l)))",
        ] {
            let (_, schedule) = schedule_of(source);
            assert!(schedule.dependency_parallelism() >= schedule.cost_parallelism() - 1e-9);
        }
    }

    fn rot_operand(schedule: &Schedule) -> Slot {
        schedule
            .instrs()
            .iter()
            .find_map(|si| match &si.instr {
                Instr::Rot { a, .. } => Some(*a),
                _ => None,
            })
            .unwrap()
    }
}
