//! Lowering a circuit DAG into a flat, topologically-leveled instruction
//! schedule.
//!
//! The hash-consed [`CircuitDag`] orders nodes so operands precede uses,
//! which suffices for sequential execution. The runtime instead wants the
//! *wavefront* view: instructions grouped into levels such that every operand
//! of a level-`L` instruction is produced at a level strictly below `L` (or
//! arrives pre-bound from the client). All instructions inside one level are
//! mutually independent and can execute concurrently.
//!
//! Within a level, instructions are ordered by descending estimated cost
//! (longest-processing-time-first): combined with the runtime's shared work
//! queue this is the classic greedy bound for balancing heterogeneous ops
//! (a ct-ct multiplication costs ~100x an addition) across workers.

use chehab_ir::{BinOp, CircuitDag, CostModel, DagNode, DataKind, NodeId, OpCosts};
use std::ops::Range;

/// A register slot: instruction destinations and operands use the circuit
/// DAG's node ids directly, so the register file is indexed by [`NodeId`].
pub type Slot = NodeId;

/// One flat server-side instruction of a compiled circuit.
///
/// Leaves, plaintext-only subcircuits and client-packed vectors never become
/// instructions: they are bound into the register file before execution
/// starts.
#[derive(Debug, Clone, PartialEq)]
pub enum Instr {
    /// Element-wise binary operation; whether the ct-ct or ct-pt backend call
    /// is issued depends on the operand registers at run time.
    Bin {
        /// The operator.
        op: BinOp,
        /// Left operand slot.
        a: Slot,
        /// Right operand slot.
        b: Slot,
    },
    /// Element-wise negation.
    Neg {
        /// Operand slot.
        a: Slot,
    },
    /// Slot rotation, already realized into the per-step key sequence of the
    /// rotation-key plan (NAF decomposition, Appendix B).
    Rot {
        /// Operand slot.
        a: Slot,
        /// The realized rotation steps, applied left to right.
        parts: Vec<i64>,
    },
    /// Run-time packing: element `i` is placed into vector slot `i` with a
    /// right rotation and accumulated with additions; plaintext elements are
    /// folded in with a single plaintext addition.
    Pack {
        /// Source slot of each vector element, in slot order.
        elems: Vec<Slot>,
    },
}

/// An instruction bound to its destination register and wavefront level.
#[derive(Debug, Clone)]
pub struct ScheduledInstr {
    /// Destination register (the circuit DAG node this computes).
    pub dst: Slot,
    /// The operation.
    pub instr: Instr,
    /// Wavefront level; every operand is produced strictly below it.
    pub level: usize,
    /// Estimated cost under the static cost model, used for load balancing.
    pub est_cost: f64,
}

/// A leveled instruction schedule for one compiled circuit.
#[derive(Debug, Clone)]
pub struct Schedule {
    instrs: Vec<ScheduledInstr>,
    levels: Vec<Range<usize>>,
    slot_count: usize,
    output: Slot,
}

impl Schedule {
    /// Lowers the server-side portion of a circuit DAG into a leveled
    /// schedule.
    ///
    /// `prebound` marks the register slots the client binds before execution
    /// (leaves, plaintext subcircuits, client-packed vectors); every other
    /// node becomes an instruction. `realize` maps a rotation step to the key
    /// sequence that implements it. `costs` supplies the per-operator
    /// estimates used to order instructions within a level.
    pub fn lower(
        dag: &CircuitDag,
        prebound: &[bool],
        realize: impl Fn(i64) -> Vec<i64>,
        costs: &OpCosts,
    ) -> Schedule {
        assert_eq!(
            prebound.len(),
            dag.len(),
            "prebound mask must cover every node"
        );
        let kinds = data_kinds(dag);
        // `level_of[id]` = wavefront level producing slot `id`; pre-bound
        // slots are available before level 0.
        let mut level_of: Vec<Option<usize>> = vec![None; dag.len()];
        let mut instrs: Vec<ScheduledInstr> = Vec::new();
        for (id, node) in dag.nodes().iter().enumerate() {
            if prebound[id] {
                continue;
            }
            let level = node
                .operands()
                .into_iter()
                .map(|op| level_of[op].map_or(0, |l| l + 1))
                .max()
                .unwrap_or(0);
            level_of[id] = Some(level);
            let instr = match node {
                DagNode::CtVar(_) | DagNode::PtVar(_) | DagNode::Const(_) => {
                    unreachable!("leaves are always pre-bound")
                }
                DagNode::Bin(op, a, b) | DagNode::VecBin(op, a, b) => Instr::Bin {
                    op: *op,
                    a: *a,
                    b: *b,
                },
                DagNode::Neg(a) | DagNode::VecNeg(a) => Instr::Neg { a: *a },
                DagNode::Rot(a, step) => Instr::Rot {
                    a: *a,
                    parts: realize(*step),
                },
                DagNode::Vec(elems) => Instr::Pack {
                    elems: elems.clone(),
                },
            };
            let est_cost = estimate_cost(&instr, &kinds, costs);
            instrs.push(ScheduledInstr {
                dst: id,
                instr,
                level,
                est_cost,
            });
        }

        // Group by level, longest-processing-time-first inside each level.
        instrs.sort_by(|x, y| {
            x.level
                .cmp(&y.level)
                .then(
                    y.est_cost
                        .partial_cmp(&x.est_cost)
                        .unwrap_or(std::cmp::Ordering::Equal),
                )
                .then(x.dst.cmp(&y.dst))
        });
        let mut levels: Vec<Range<usize>> = Vec::new();
        for (index, instr) in instrs.iter().enumerate() {
            if instr.level == levels.len() {
                levels.push(index..index + 1);
            } else {
                levels.last_mut().expect("levels are contiguous from 0").end = index + 1;
            }
        }
        Schedule {
            instrs,
            levels,
            slot_count: dag.len(),
            output: dag.output(),
        }
    }

    /// The scheduled instructions, grouped by level and sorted by descending
    /// estimated cost within each level.
    pub fn instrs(&self) -> &[ScheduledInstr] {
        &self.instrs
    }

    /// Index ranges into [`Schedule::instrs`], one per wavefront level.
    pub fn levels(&self) -> &[Range<usize>] {
        &self.levels
    }

    /// Number of wavefront levels (the critical-path length of the
    /// server-side circuit).
    pub fn level_count(&self) -> usize {
        self.levels.len()
    }

    /// Size of the register file (one slot per circuit DAG node).
    pub fn slot_count(&self) -> usize {
        self.slot_count
    }

    /// The slot holding the circuit output.
    pub fn output(&self) -> Slot {
        self.output
    }

    /// The widest level: an upper bound on exploitable intra-request
    /// parallelism, useful when picking a thread count.
    pub fn max_width(&self) -> usize {
        self.levels
            .iter()
            .map(|r| r.end - r.start)
            .max()
            .unwrap_or(0)
    }

    /// Total estimated cost of all instructions.
    pub fn total_est_cost(&self) -> f64 {
        self.instrs.iter().map(|i| i.est_cost).sum()
    }

    /// Projects the makespan of this schedule on `workers` workers from
    /// measured per-instruction latencies (`instr_times[i]` is the duration
    /// of `instrs()[i]`).
    ///
    /// Within each level the instructions are assigned
    /// longest-processing-time-first to the earliest-free worker — the same
    /// greedy policy the live work queue follows — and levels are separated
    /// by barriers, so the projection is the sum of per-level makespans.
    /// With measured (rather than modeled) durations this is the
    /// timer-augmented load-balance estimate: on a machine with `workers`
    /// free cores the wavefront executor's wall-clock converges to it.
    ///
    /// # Panics
    ///
    /// Panics if `instr_times` is shorter than the instruction list.
    pub fn makespan(
        &self,
        instr_times: &[std::time::Duration],
        workers: usize,
    ) -> std::time::Duration {
        assert!(
            instr_times.len() >= self.instrs.len(),
            "need one duration per instruction"
        );
        let workers = workers.max(1);
        let mut total = std::time::Duration::ZERO;
        let mut finish = vec![std::time::Duration::ZERO; workers];
        for range in &self.levels {
            finish.fill(std::time::Duration::ZERO);
            let mut sorted: Vec<std::time::Duration> = instr_times[range.clone()].to_vec();
            sorted.sort_unstable_by(|a, b| b.cmp(a));
            for duration in sorted {
                let earliest = finish.iter_mut().min().expect("at least one worker");
                *earliest += duration;
            }
            total += finish.iter().copied().max().unwrap_or_default();
        }
        total
    }

    /// The parallelism an infinitely wide machine could exploit: total
    /// estimated cost divided by the critical-path (per-level maximum) cost.
    pub fn cost_parallelism(&self) -> f64 {
        let critical: f64 = self
            .levels
            .iter()
            .map(|r| {
                self.instrs[r.clone()]
                    .iter()
                    .map(|i| i.est_cost)
                    .fold(0.0, f64::max)
            })
            .sum();
        if critical > 0.0 {
            self.total_est_cost() / critical
        } else {
            1.0
        }
    }
}

/// Per-node data kinds of a circuit DAG: a node is ciphertext-kind if any
/// operand (or the node itself) is encrypted.
///
/// This is the analysis code generation uses to split the circuit between
/// client-side plaintext evaluation and server-side homomorphic execution.
pub fn data_kinds(dag: &CircuitDag) -> Vec<DataKind> {
    let mut kinds = vec![DataKind::Plaintext; dag.len()];
    for (id, node) in dag.nodes().iter().enumerate() {
        kinds[id] = match node {
            DagNode::CtVar(_) => DataKind::Ciphertext,
            DagNode::PtVar(_) | DagNode::Const(_) => DataKind::Plaintext,
            _ => {
                if node
                    .operands()
                    .into_iter()
                    .any(|o| kinds[o] == DataKind::Ciphertext)
                {
                    DataKind::Ciphertext
                } else {
                    DataKind::Plaintext
                }
            }
        };
    }
    kinds
}

fn estimate_cost(instr: &Instr, kinds: &[DataKind], costs: &OpCosts) -> f64 {
    let is_ct = |slot: Slot| kinds[slot] == DataKind::Ciphertext;
    match instr {
        Instr::Bin { op, a, b } => match (op, is_ct(*a) && is_ct(*b)) {
            (BinOp::Mul, true) => costs.vec_mul_ct_ct,
            (BinOp::Mul, false) => costs.vec_mul_ct_pt,
            (BinOp::Add | BinOp::Sub, _) => costs.vec_add,
        },
        Instr::Neg { .. } => costs.vec_add,
        Instr::Rot { parts, .. } => costs.rotation * parts.len().max(1) as f64,
        Instr::Pack { elems } => {
            let ciphers = elems.iter().filter(|&&e| is_ct(e)).count() as f64;
            ciphers * (costs.rotation + costs.vec_add) + costs.vec_add
        }
    }
}

/// Convenience: lowers with the default static cost model's operator costs.
pub fn lower_with_default_costs(
    dag: &CircuitDag,
    prebound: &[bool],
    realize: impl Fn(i64) -> Vec<i64>,
) -> Schedule {
    Schedule::lower(dag, prebound, realize, &CostModel::default().op_costs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use chehab_ir::parse;

    /// Mirrors the compiler's default client-side layout: leaves, plaintext
    /// subcircuits, and leaf-only vectors (packed before encryption) are
    /// pre-bound.
    fn client_prebound(dag: &CircuitDag) -> Vec<bool> {
        let kinds = data_kinds(dag);
        dag.nodes()
            .iter()
            .enumerate()
            .map(|(id, n)| {
                n.is_leaf()
                    || kinds[id] == DataKind::Plaintext
                    || matches!(n, DagNode::Vec(elems)
                        if elems.iter().all(|&e| dag.nodes()[e].is_leaf()))
            })
            .collect()
    }

    fn schedule_of(source: &str) -> (CircuitDag, Schedule) {
        let expr = parse(source).unwrap();
        let dag = CircuitDag::from_expr(&expr).eliminate_dead_code();
        let prebound = client_prebound(&dag);
        let schedule = lower_with_default_costs(&dag, &prebound, |step| vec![step]);
        (dag, schedule)
    }

    #[test]
    fn operands_land_in_strictly_earlier_levels() {
        let (_, schedule) = schedule_of(
            "(VecAdd (VecAdd (VecMul (Vec a0 a1) (Vec b0 b1)) (<< (VecMul (Vec a0 a1) (Vec b0 b1)) 1)) (VecMul (Vec c0 c1) (Vec d0 d1)))",
        );
        let mut level_of = vec![usize::MAX; schedule.slot_count()];
        for si in schedule.instrs() {
            level_of[si.dst] = si.level;
        }
        for si in schedule.instrs() {
            let operands: Vec<Slot> = match &si.instr {
                Instr::Bin { a, b, .. } => vec![*a, *b],
                Instr::Neg { a } | Instr::Rot { a, .. } => vec![*a],
                Instr::Pack { elems } => elems.clone(),
            };
            for op in operands {
                assert!(
                    level_of[op] == usize::MAX || level_of[op] < si.level,
                    "operand {op} of instruction at level {} must come strictly earlier",
                    si.level
                );
            }
        }
    }

    #[test]
    fn independent_multiplications_share_a_level() {
        let (_, schedule) =
            schedule_of("(VecAdd (VecMul (Vec a b) (Vec c d)) (VecMul (Vec e f) (Vec g h)))");
        // Two independent ct-ct multiplications at level 0 (vectors are
        // client-packed), one addition at level 1.
        assert_eq!(schedule.level_count(), 2);
        assert_eq!(schedule.max_width(), 2);
        assert!(schedule.cost_parallelism() > 1.5);
    }

    #[test]
    fn makespan_projection_respects_levels_and_workers() {
        use std::time::Duration;
        // Two independent 100x multiplications, then one addition.
        let (_, schedule) =
            schedule_of("(VecAdd (VecMul (Vec a b) (Vec c d)) (VecMul (Vec e f) (Vec g h)))");
        let times: Vec<Duration> = schedule
            .instrs()
            .iter()
            .map(|si| match si.instr {
                Instr::Bin { op: BinOp::Mul, .. } => Duration::from_millis(100),
                _ => Duration::from_millis(1),
            })
            .collect();
        // One worker: everything serializes.
        assert_eq!(schedule.makespan(&times, 1), Duration::from_millis(201));
        // Two workers: the multiplications overlap, the addition follows.
        assert_eq!(schedule.makespan(&times, 2), Duration::from_millis(101));
        // Extra workers cannot beat the critical path.
        assert_eq!(schedule.makespan(&times, 8), Duration::from_millis(101));
    }

    #[test]
    fn levels_are_sorted_by_descending_cost() {
        let (_, schedule) =
            schedule_of("(VecAdd (VecAdd (Vec a b) (Vec c d)) (VecMul (Vec e f) (Vec g h)))");
        for range in schedule.levels() {
            let costs: Vec<f64> = schedule.instrs()[range.clone()]
                .iter()
                .map(|i| i.est_cost)
                .collect();
            assert!(
                costs.windows(2).all(|w| w[0] >= w[1]),
                "level not sorted by descending cost: {costs:?}"
            );
        }
    }

    #[test]
    fn plaintext_subcircuits_produce_no_instructions() {
        let (_, schedule) = schedule_of("(VecMul (Vec a b) (Vec (+ (pt x) 1) (pt y)))");
        // Only the multiplication and the runtime pack of the plaintext
        // vector... the plaintext vector is plain-kind, so it is pre-bound:
        // one instruction total.
        assert_eq!(schedule.instrs().len(), 1);
        assert!(matches!(
            schedule.instrs()[0].instr,
            Instr::Bin { op: BinOp::Mul, .. }
        ));
    }

    #[test]
    fn rotation_parts_come_from_the_realize_callback() {
        let expr = parse("(<< (VecMul (Vec a b c d) (Vec e f g h)) 3)").unwrap();
        let dag = CircuitDag::from_expr(&expr).eliminate_dead_code();
        let prebound = client_prebound(&dag);
        let schedule = Schedule::lower(
            &dag,
            &prebound,
            |step| vec![4, -(4 - step)],
            &OpCosts::default(),
        );
        let rot = schedule
            .instrs()
            .iter()
            .find(|si| matches!(si.instr, Instr::Rot { .. }))
            .expect("rotation instruction");
        assert_eq!(
            rot.instr,
            Instr::Rot {
                a: rot_operand(&schedule),
                parts: vec![4, -1]
            }
        );
    }

    fn rot_operand(schedule: &Schedule) -> Slot {
        schedule
            .instrs()
            .iter()
            .find_map(|si| match &si.instr {
                Instr::Rot { a, .. } => Some(*a),
                _ => None,
            })
            .unwrap()
    }
}
