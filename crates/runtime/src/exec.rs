//! The wavefront executor: a `std::thread` worker pool that runs every
//! instruction of a schedule level concurrently.
//!
//! Execution proceeds level by level. Within a level all instructions are
//! independent, so workers drain a shared atomic work queue; instructions are
//! pre-sorted by descending estimated cost (longest-processing-time-first),
//! which keeps the queue balanced even though a ct-ct multiplication costs
//! two orders of magnitude more than an addition. A barrier separates
//! levels: operands of the next level are guaranteed written before any
//! worker proceeds.
//!
//! Every worker owns a private [`Evaluator`] (the shared [`FheContext`] is
//! immutable) and a private [`CalibratedCostModel`]; both are merged when the
//! wavefront completes, so the report carries exact operation counts and
//! measured per-op-kind latencies with no synchronization on the hot path.
//!
//! ## Arena-backed registers and last-use recycling
//!
//! Registers live in a [`RegisterFile`]: values are published once and read
//! as cheap `Arc` clones ([`Register`] wraps its payload in `Arc`, so a read
//! copies a pointer, not a ciphertext). The schedule's last-use analysis
//! ([`Schedule::consumer_counts`]) seeds a per-slot countdown; the worker
//! that completes a slot's final consumer takes the dead register out of the
//! file and recycles its buffers into its evaluator's [`PolyArena`]. Worker
//! arenas are checked out of the shared [`ExecResources::arenas`] pool at
//! request start and restored at the end, so a warm session executes whole
//! request streams with zero fresh buffer allocations.

use crate::calibrate::{CalibratedCostModel, OpKind};
use crate::schedule::{Instr, Schedule, ScheduledInstr, Slot};
use crate::telemetry::{TraceBuffer, TraceSink};
use chehab_fhe::{
    ArenaPool, Ciphertext, Evaluator, EvaluatorStats, FheContext, FheError, GaloisKeys, Plaintext,
    PolyArena, RelinKeys,
};
use chehab_ir::BinOp;

/// Timing category of a binary op on two ciphertext operands.
fn ct_ct_kind(op: BinOp) -> OpKind {
    match op {
        BinOp::Add | BinOp::Sub => OpKind::Addition,
        BinOp::Mul => OpKind::MulCtCt,
    }
}

/// Timing category of a binary op with one plaintext operand.
fn ct_pt_kind(op: BinOp) -> OpKind {
    match op {
        BinOp::Add | BinOp::Sub => OpKind::Addition,
        BinOp::Mul => OpKind::MulCtPt,
    }
}
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Barrier, Mutex, OnceLock};
use std::time::{Duration, Instant};

/// A clear (client-side) value bound into the register file, with a
/// per-request cache of its encoded [`Plaintext`].
///
/// Every instruction that consumes the register shares one encoding (and,
/// through the plaintext's own splat cache, one payload NTT) instead of
/// re-encoding per use — safe across wavefront workers because the cache is
/// a [`OnceLock`] and encoding is deterministic.
#[derive(Debug, Clone, Default)]
pub struct PlainValue {
    values: Vec<i64>,
    encoded: OnceLock<Plaintext>,
}

impl PlainValue {
    /// Wraps clear slot values.
    pub fn new(values: Vec<i64>) -> Self {
        PlainValue {
            values,
            encoded: OnceLock::new(),
        }
    }

    /// The clear slot values.
    pub fn values(&self) -> &[i64] {
        &self.values
    }

    /// The encoded plaintext, computed on first use and shared afterwards.
    ///
    /// # Errors
    ///
    /// Propagates [`FheError`] from encoding (more values than slots).
    pub fn encoded(&self, ctx: &FheContext) -> Result<&Plaintext, FheError> {
        if let Some(plain) = self.encoded.get() {
            return Ok(plain);
        }
        let plain = ctx.encode(&self.values)?;
        Ok(self.encoded.get_or_init(|| plain))
    }

    /// [`PlainValue::encoded`] with the slot vector drawn from `arena` — the
    /// form the executors use so a warm request's plaintext encodes are
    /// served by the pool and recycled when the register dies.
    ///
    /// # Errors
    ///
    /// Propagates [`FheError`] from encoding (more values than slots).
    pub fn encoded_in(
        &self,
        ctx: &FheContext,
        arena: &mut PolyArena,
    ) -> Result<&Plaintext, FheError> {
        if let Some(plain) = self.encoded.get() {
            return Ok(plain);
        }
        let plain = ctx.encode_in(&self.values, arena)?;
        // A concurrent worker may have encoded first; the loser's buffers
        // go straight back to the pool instead of the allocator.
        if let Err(lost) = self.encoded.set(plain) {
            lost.recycle_into(arena);
        }
        Ok(self.encoded.get().expect("cache was just filled"))
    }

    /// Returns the cached encoding's buffers to `arena`, if the value was
    /// ever encoded. Called when the register file retires a dead plaintext
    /// register.
    pub(crate) fn recycle_into(self, arena: &mut PolyArena) {
        if let Some(plain) = self.encoded.into_inner() {
            plain.recycle_into(arena);
        }
    }
}

impl From<Vec<i64>> for PlainValue {
    fn from(values: Vec<i64>) -> Self {
        PlainValue::new(values)
    }
}

/// A register of the flat execution machine: either a ciphertext computed on
/// the server or a clear value the client evaluated (plaintext subcircuits
/// never touch ciphertexts).
///
/// Both variants wrap their value in `Arc`, so cloning a register — which is
/// how the [`RegisterFile`] hands operands to workers — copies a pointer,
/// never a ciphertext or an encoded plaintext.
#[derive(Debug, Clone)]
pub enum Register {
    /// An encrypted value.
    Cipher(Arc<Ciphertext>),
    /// A clear (client-side) value, one entry per vector slot.
    Plain(Arc<PlainValue>),
}

impl Register {
    /// Wraps a ciphertext.
    pub fn cipher(ciphertext: Ciphertext) -> Register {
        Register::Cipher(Arc::new(ciphertext))
    }

    /// Wraps a clear value.
    pub fn plain(value: impl Into<PlainValue>) -> Register {
        Register::Plain(Arc::new(value.into()))
    }
}

/// The register file of one scheduled execution: write-once publish cells
/// plus the per-slot consumer countdown driving last-use buffer recycling.
///
/// Reads clone the register's `Arc` (cheap); the worker that retires a
/// slot's final consumer gets the dead register back for recycling. The
/// per-cell mutexes are uncontended except when two consumers of one slot
/// finish simultaneously, and each is held for a pointer copy — noise at
/// FHE-op granularity.
#[derive(Debug)]
pub struct RegisterFile {
    cells: Vec<Mutex<Option<Register>>>,
    /// Consumer instructions not yet completed, per slot (seeded from
    /// [`Schedule::consumer_counts`]).
    remaining_uses: Vec<AtomicUsize>,
    output: Slot,
}

impl RegisterFile {
    /// Builds the register file for one run: `initial[slot] = Some(..)` for
    /// every pre-bound (client-side) value.
    ///
    /// # Panics
    ///
    /// Panics if `initial` does not cover the schedule's slot count.
    pub fn new(initial: Vec<Option<Register>>, schedule: &Schedule) -> Self {
        assert_eq!(
            initial.len(),
            schedule.slot_count(),
            "register file size mismatch"
        );
        RegisterFile {
            cells: initial.into_iter().map(Mutex::new).collect(),
            remaining_uses: schedule
                .consumer_counts()
                .iter()
                .map(|&count| AtomicUsize::new(count))
                .collect(),
            output: schedule.output(),
        }
    }

    /// Reads a slot (a cheap `Arc` clone).
    ///
    /// # Panics
    ///
    /// Panics if the slot has no value — the schedulers guarantee operands
    /// are published before any consumer runs.
    pub fn read(&self, slot: Slot) -> Register {
        self.cells[slot]
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .clone()
            .expect("operands are published before their consumers run")
    }

    /// Whether the slot currently holds a value (used by up-front operand
    /// validation).
    pub(crate) fn is_bound(&self, slot: Slot) -> bool {
        self.cells[slot]
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .is_some()
    }

    /// Publishes an instruction's result into its destination slot.
    pub(crate) fn publish(&self, slot: Slot, register: Register) {
        *self.cells[slot]
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner) = Some(register);
    }

    /// Notes that one consumer of `slot` completed. The call that retires
    /// the final consumer gets the dead register back for buffer recycling
    /// (never for the output slot, which outlives the run).
    pub(crate) fn consume(&self, slot: Slot) -> Option<Register> {
        if self.remaining_uses[slot].fetch_sub(1, Ordering::AcqRel) == 1 && slot != self.output {
            self.cells[slot]
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner)
                .take()
        } else {
            None
        }
    }

    /// Takes the output register after the run completed.
    pub(crate) fn take_output(&mut self) -> Option<Register> {
        self.cells[self.output]
            .get_mut()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .take()
    }

    /// Recycles every register still in the file into `arena` (pre-bound
    /// inputs the circuit never consumed, or everything left behind by an
    /// aborted run). Call after [`RegisterFile::take_output`].
    pub(crate) fn recycle_remaining(&mut self, arena: &mut PolyArena) {
        for cell in &mut self.cells {
            let register = cell
                .get_mut()
                .unwrap_or_else(std::sync::PoisonError::into_inner)
                .take();
            match register {
                Some(Register::Cipher(cipher)) => {
                    if let Ok(ciphertext) = Arc::try_unwrap(cipher) {
                        ciphertext.recycle_into(arena);
                    }
                }
                Some(Register::Plain(plain)) => {
                    if let Ok(value) = Arc::try_unwrap(plain) {
                        value.recycle_into(arena);
                    }
                }
                None => {}
            }
        }
    }
}

/// Publishes an instruction's result, then retires its operands: the worker
/// that completes a slot's final consumer recycles the dead register's
/// buffers into its own evaluator's arena (shared by both executors).
pub(crate) fn publish_and_reap(
    rf: &RegisterFile,
    si: &ScheduledInstr,
    register: Register,
    evaluator: &mut Evaluator,
) {
    rf.publish(si.dst, register);
    let mut operands = si.instr.operands();
    operands.sort_unstable();
    operands.dedup();
    for slot in operands {
        match rf.consume(slot) {
            // The register file's reference was the last one (this
            // instruction's own read clone died when `run_instr` returned),
            // unless a still-live ciphertext shares the value (e.g. an
            // `add_plain` output sharing its operand's payload) — then the
            // unwrap fails and the buffers stay alive with their referent.
            Some(Register::Cipher(cipher)) => {
                if let Ok(ciphertext) = Arc::try_unwrap(cipher) {
                    evaluator.recycle(ciphertext);
                }
            }
            // Dead plaintext registers return their encoded slot vector
            // (and cached payload splat) the same way.
            Some(Register::Plain(plain)) => {
                if let Ok(value) = Arc::try_unwrap(plain) {
                    value.recycle_into(evaluator.arena_mut());
                }
            }
            None => {}
        }
    }
}

/// Shared immutable resources a wavefront execution borrows.
#[derive(Debug, Clone, Copy)]
pub struct ExecResources<'a> {
    /// The FHE context (parameters, NTT tables, encoding).
    pub ctx: &'a FheContext,
    /// Relinearization keys for ct-ct multiplications.
    pub relin_keys: &'a RelinKeys,
    /// Galois keys covering every realized rotation step.
    pub galois_keys: &'a GaloisKeys,
    /// A fresh encryption of zero, the packing fallback for degenerate
    /// vector nodes with no ciphertext element. Only needed — and only
    /// worth paying an encryption for — when the schedule contains
    /// [`Instr::Pack`] instructions.
    pub zero: Option<&'a Ciphertext>,
    /// The arena pool worker evaluators draw their buffers from: checked
    /// out per worker per run and restored afterwards, so warm buffers
    /// survive across requests (the zero-allocation steady state).
    pub arenas: &'a ArenaPool,
    /// Optional span sink: when set, every worker records instruction-level
    /// spans (operation label, instruction index, queue wait, intra-op
    /// grant, steal provenance) into per-worker [`TraceBuffer`]s that flush
    /// here. `None` (the default) disables tracing at the cost of one null
    /// check per instruction — capture never perturbs results, only
    /// observes timings.
    pub trace: Option<&'a TraceSink>,
    /// Slot-lane layout of a cross-request batched execution (see
    /// [`crate::RequestCoalescer`]): `Some` when several users' inputs
    /// share the ciphertexts at the given stride. Only [`Instr::Pack`]'s
    /// plaintext-element path consults it (plaintext values must be
    /// replicated into every live lane); every other instruction is
    /// slot-wise or cyclic and lane-oblivious. `None` (the default) is the
    /// unbatched single-user layout.
    pub lanes: Option<crate::LaneGeometry>,
    /// Optional cancellation token checked at every instruction dispatch by
    /// both executors: once the token is cancelled (or its deadline passes)
    /// the request stops scheduling its remaining instructions mid-flight,
    /// recycles whatever registers it still holds, and returns
    /// [`FheError::Cancelled`] / [`FheError::DeadlineExceeded`]. `None` (the
    /// default) runs to completion.
    pub cancel: Option<&'a crate::CancellationToken>,
    /// Optional deterministic fault-injection plan (see
    /// [`FaultPlan`](crate::FaultPlan)): its dispatch hook runs before every
    /// instruction, counting dispatches and injecting planned panics,
    /// latency spikes and token cancellations. Injected (and genuine)
    /// instruction-level panics are isolated with `catch_unwind` and
    /// surface as [`FheError::WorkerPanic`]. `None` (the default) disables
    /// injection and the counter.
    pub faults: Option<&'a crate::FaultPlan>,
}

/// Which scheduling discipline produced an execution's timing breakdown.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SchedulerKind {
    /// Barrier-free dependency-counting dataflow execution
    /// ([`crate::DataflowExecutor`]): an instruction becomes runnable the
    /// instant its last operand is written. The default.
    #[default]
    Dataflow,
    /// Level-synchronized wavefront execution ([`WavefrontExecutor`]): a
    /// barrier separates topological levels, so every level waits for its
    /// slowest instruction.
    Leveled,
}

/// Wall-clock of one wavefront level.
#[derive(Debug, Clone)]
pub struct LevelTiming {
    /// Level index.
    pub level: usize,
    /// Instructions executed in the level.
    pub instructions: usize,
    /// Wall-clock time of the level (including the closing barrier).
    pub wall: Duration,
    /// Intra-op worker budget each evaluator had in this level: when the
    /// level is narrower than the worker pool, the spare threads split heavy
    /// payload loops inside single operations instead of idling at the
    /// barrier.
    pub intra_op_threads: usize,
}

/// Per-level and per-operation-kind breakdown of one execution.
#[derive(Debug, Clone)]
pub struct TimingBreakdown {
    /// The scheduling discipline that produced this breakdown.
    pub scheduler: SchedulerKind,
    /// Worker threads used.
    pub threads: usize,
    /// Wall-clock per wavefront level, in level order. Empty for dataflow
    /// executions — there are no levels to time; see
    /// [`TimingBreakdown::wall`], [`TimingBreakdown::queue_waits`] and
    /// [`TimingBreakdown::reclaimed_slack`] instead.
    pub levels: Vec<LevelTiming>,
    /// Wall-clock of the whole scheduled execution (for leveled runs this
    /// equals the sum of the level walls).
    pub wall: Duration,
    /// Measured per-operation-kind latencies.
    pub per_op: CalibratedCostModel,
    /// Measured duration of every instruction, indexed like
    /// [`Schedule::instrs`] — the input of
    /// [`Schedule::makespan`](crate::Schedule::makespan) projections.
    pub instr_times: Vec<Duration>,
    /// Dataflow only: per-instruction queue wait (from the instant the
    /// instruction's last dependency was satisfied to the instant a worker
    /// started running it), indexed like [`Schedule::instrs`]. Empty for
    /// leveled runs.
    pub queue_waits: Vec<Duration>,
    /// Dataflow only: ready instructions taken from another worker's local
    /// deque.
    pub steals: u64,
    /// Dataflow only: the barrier slack reclaimed versus leveled execution —
    /// the leveled makespan projection minus the dataflow makespan
    /// projection at the same worker count, both computed from this run's
    /// measured [`TimingBreakdown::instr_times`]. Zero for leveled runs.
    pub reclaimed_slack: Duration,
    /// Operations whose payload work actually split across more than one
    /// intra-op worker. The per-op latencies in
    /// [`TimingBreakdown::per_op`] are measured around the split, so the
    /// calibrated cost model sees the effect of intra-op parallelism
    /// directly.
    pub intra_op_splits: u64,
}

impl TimingBreakdown {
    /// A breakdown with no instructions (plaintext-only programs).
    pub fn empty(threads: usize) -> Self {
        TimingBreakdown {
            scheduler: SchedulerKind::default(),
            threads,
            levels: Vec::new(),
            wall: Duration::ZERO,
            per_op: CalibratedCostModel::new(),
            instr_times: Vec::new(),
            queue_waits: Vec::new(),
            steals: 0,
            reclaimed_slack: Duration::ZERO,
            intra_op_splits: 0,
        }
    }

    /// Total wall-clock of the scheduled execution: the sum of the level
    /// walls for leveled runs, the measured execution span for (level-less)
    /// dataflow runs.
    pub fn total_wall(&self) -> Duration {
        if self.levels.is_empty() {
            self.wall
        } else {
            self.levels.iter().map(|l| l.wall).sum()
        }
    }

    /// A queue-wait percentile (`0.0..=1.0`) across this run's instructions,
    /// `None` for leveled runs (no queue waits are recorded).
    pub fn queue_wait_percentile(&self, pct: f64) -> Option<Duration> {
        percentile(&mut self.queue_waits.clone(), pct)
    }
}

/// The `pct`-percentile (`0.0..=1.0`) of an unsorted sample set, `None`
/// when empty. Sorts in place.
pub(crate) fn percentile(samples: &mut [Duration], pct: f64) -> Option<Duration> {
    if samples.is_empty() {
        return None;
    }
    samples.sort_unstable();
    let rank = ((samples.len() as f64 - 1.0) * pct.clamp(0.0, 1.0)).round() as usize;
    Some(samples[rank.min(samples.len() - 1)])
}

/// The result of one wavefront execution.
#[derive(Debug, Clone)]
pub struct WavefrontOutcome {
    /// The output register of the circuit.
    pub output: Register,
    /// Merged homomorphic-operation counters of all workers.
    pub stats: EvaluatorStats,
    /// Per-level / per-op timing breakdown.
    pub timing: TimingBreakdown,
}

/// Executes instruction schedules on a pool of worker threads.
#[derive(Debug, Clone, Copy)]
pub struct WavefrontExecutor {
    threads: usize,
}

impl WavefrontExecutor {
    /// Creates an executor with the given worker-thread count (clamped to at
    /// least one).
    pub fn new(threads: usize) -> Self {
        WavefrontExecutor {
            threads: threads.max(1),
        }
    }

    /// The configured worker-thread count.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Runs a schedule against a register file whose pre-bound slots are
    /// filled (`initial[slot] = Some(..)` for every client-side value).
    ///
    /// # Errors
    ///
    /// Returns the first [`FheError`] any worker hit (typically a missing
    /// Galois key); remaining work is abandoned.
    ///
    /// # Panics
    ///
    /// Panics if the schedule references a slot that is neither pre-bound nor
    /// produced by an earlier level — [`Schedule::lower`] guarantees this
    /// never holds for well-formed inputs. The check runs up front on the
    /// calling thread: a panic inside a scoped worker would strand the other
    /// workers at the level barrier, so misuse must never reach the pool.
    pub fn execute(
        &self,
        schedule: &Schedule,
        initial: Vec<Option<Register>>,
        res: &ExecResources<'_>,
    ) -> Result<WavefrontOutcome, FheError> {
        let mut rf = RegisterFile::new(initial, schedule);
        validate_operands(schedule, &rf);

        // More workers than the widest level can never help.
        let workers = self.threads.min(schedule.max_width()).max(1);
        let result = if workers == 1 {
            self.execute_single(schedule, &rf, res)
        } else {
            self.execute_parallel(schedule, &rf, res, workers)
        };
        // On success, take the output before sweeping the file; on failure
        // (error, cancellation, injected fault) leave it in place so the
        // sweep reclaims it too. Either way every register still held by the
        // file goes back to the pool — an aborted request must not leak its
        // buffers.
        let output = result.as_ref().ok().map(|_| {
            rf.take_output()
                .expect("output register is pre-bound or produced by the schedule")
        });
        let mut arena = res.arenas.checkout();
        rf.recycle_remaining(&mut arena);
        res.arenas.restore(arena);
        let (stats, timing) = result?;
        Ok(WavefrontOutcome {
            output: output.expect("output taken on the success path"),
            stats,
            timing,
        })
    }

    fn execute_single(
        &self,
        schedule: &Schedule,
        rf: &RegisterFile,
        res: &ExecResources<'_>,
    ) -> Result<(EvaluatorStats, TimingBreakdown), FheError> {
        let mut evaluator = Evaluator::with_arena(res.ctx, res.arenas.checkout());
        let mut calibration = CalibratedCostModel::new();
        let mut tracer = res
            .trace
            .map(|sink| TraceBuffer::new(sink, "wavefront worker 0"));
        let mut instr_times = vec![Duration::ZERO; schedule.instrs().len()];
        let mut levels = Vec::with_capacity(schedule.level_count());
        let mut failure: Option<FheError> = None;
        'levels: for (level, range) in schedule.levels().iter().enumerate() {
            let width = range.end - range.start;
            // A single instruction stream still uses the full requested
            // thread budget *inside* heavy ops: narrow levels are exactly
            // where intra-op chunking replaces idle wavefront workers.
            let intra_op_threads = intra_op_budget(self.threads, width);
            evaluator.set_intra_op_threads(intra_op_threads);
            let started = Instant::now();
            for (offset, si) in schedule.instrs()[range.clone()].iter().enumerate() {
                let instr_started = Instant::now();
                match dispatch_instr(si, rf, &mut evaluator, res, &mut calibration) {
                    Ok(register) => {
                        let elapsed = instr_started.elapsed();
                        instr_times[range.start + offset] = elapsed;
                        if let Some(tracer) = tracer.as_mut() {
                            tracer.record(
                                si.instr.label(),
                                "instr",
                                instr_started,
                                elapsed,
                                Some(range.start + offset),
                                None,
                                Some(intra_op_threads),
                                None,
                            );
                        }
                        publish_and_reap(rf, si, register, &mut evaluator);
                    }
                    Err(e) => {
                        failure = Some(e);
                        break 'levels;
                    }
                }
            }
            levels.push(LevelTiming {
                level,
                instructions: width,
                wall: started.elapsed(),
                intra_op_threads,
            });
        }
        res.arenas.restore(evaluator.take_arena());
        if let Some(error) = failure {
            return Err(error);
        }
        let timing = TimingBreakdown {
            scheduler: SchedulerKind::Leveled,
            threads: 1,
            wall: levels.iter().map(|l| l.wall).sum(),
            levels,
            per_op: calibration,
            instr_times,
            queue_waits: Vec::new(),
            steals: 0,
            reclaimed_slack: Duration::ZERO,
            intra_op_splits: evaluator.intra_op_splits(),
        };
        Ok((evaluator.stats(), timing))
    }

    fn execute_parallel(
        &self,
        schedule: &Schedule,
        rf: &RegisterFile,
        res: &ExecResources<'_>,
        workers: usize,
    ) -> Result<(EvaluatorStats, TimingBreakdown), FheError> {
        let cursors: Vec<AtomicUsize> = schedule
            .levels()
            .iter()
            .map(|_| AtomicUsize::new(0))
            .collect();
        let abort = AtomicBool::new(false);
        let failure: Mutex<Option<FheError>> = Mutex::new(None);
        // Workers plus the coordinating thread, which only timestamps levels.
        let barrier = Barrier::new(workers + 1);
        let merged: Mutex<(EvaluatorStats, CalibratedCostModel, Vec<Duration>, u64)> =
            Mutex::new((
                EvaluatorStats::default(),
                CalibratedCostModel::new(),
                vec![Duration::ZERO; schedule.instrs().len()],
                0,
            ));
        let requested_threads = self.threads;

        let mut levels = Vec::with_capacity(schedule.level_count());
        std::thread::scope(|scope| {
            for worker in 0..workers {
                let cursors = &cursors;
                let abort = &abort;
                let failure = &failure;
                let barrier = &barrier;
                let merged = &merged;
                scope.spawn(move || {
                    let mut evaluator = Evaluator::with_arena(res.ctx, res.arenas.checkout());
                    let mut calibration = CalibratedCostModel::new();
                    let mut tracer = res
                        .trace
                        .map(|sink| TraceBuffer::new(sink, format!("wavefront worker {worker}")));
                    let mut timed: Vec<(usize, Duration)> = Vec::new();
                    for (level, range) in schedule.levels().iter().enumerate() {
                        let len = range.end - range.start;
                        // Levels narrower than the pool leave workers idle at
                        // the barrier; the busy workers spend the spare
                        // budget chunking inside their heavy ops instead.
                        let grant = intra_op_budget(requested_threads, len);
                        evaluator.set_intra_op_threads(grant);
                        while !abort.load(Ordering::Relaxed) {
                            let index = cursors[level].fetch_add(1, Ordering::Relaxed);
                            if index >= len {
                                break;
                            }
                            let si = &schedule.instrs()[range.start + index];
                            let instr_started = Instant::now();
                            match dispatch_instr(si, rf, &mut evaluator, res, &mut calibration) {
                                Ok(register) => {
                                    let elapsed = instr_started.elapsed();
                                    timed.push((range.start + index, elapsed));
                                    if let Some(tracer) = tracer.as_mut() {
                                        tracer.record(
                                            si.instr.label(),
                                            "instr",
                                            instr_started,
                                            elapsed,
                                            Some(range.start + index),
                                            None,
                                            Some(grant),
                                            None,
                                        );
                                    }
                                    publish_and_reap(rf, si, register, &mut evaluator);
                                }
                                Err(e) => {
                                    let mut slot = failure.lock().unwrap();
                                    slot.get_or_insert(e);
                                    abort.store(true, Ordering::Relaxed);
                                }
                            }
                        }
                        barrier.wait();
                    }
                    res.arenas.restore(evaluator.take_arena());
                    let mut m = merged.lock().unwrap();
                    m.0.merge(&evaluator.stats());
                    m.1.merge(&calibration);
                    for (index, duration) in timed {
                        m.2[index] = duration;
                    }
                    m.3 += evaluator.intra_op_splits();
                });
            }

            let mut previous = Instant::now();
            for (level, range) in schedule.levels().iter().enumerate() {
                barrier.wait();
                let now = Instant::now();
                let width = range.end - range.start;
                levels.push(LevelTiming {
                    level,
                    instructions: width,
                    wall: now - previous,
                    intra_op_threads: intra_op_budget(requested_threads, width),
                });
                previous = now;
            }
        });

        if let Some(error) = failure.into_inner().unwrap() {
            return Err(error);
        }
        let (stats, calibration, instr_times, intra_op_splits) = merged.into_inner().unwrap();
        Ok((
            stats,
            TimingBreakdown {
                scheduler: SchedulerKind::Leveled,
                threads: workers,
                wall: levels.iter().map(|l| l.wall).sum(),
                levels,
                per_op: calibration,
                instr_times,
                queue_waits: Vec::new(),
                steals: 0,
                reclaimed_slack: Duration::ZERO,
                intra_op_splits,
            },
        ))
    }
}

/// The intra-op worker budget of a level: spare threads per busy worker
/// when the level is narrower than the requested pool (`1` when the level
/// is at least as wide as the pool — instruction-level parallelism already
/// covers the cores).
fn intra_op_budget(requested_threads: usize, level_width: usize) -> usize {
    (requested_threads / level_width.max(1)).max(1)
}

/// Panics (on the calling thread, before any worker spawns) if an
/// instruction's operand is neither pre-bound nor the destination of an
/// earlier-level instruction.
pub(crate) fn validate_operands(schedule: &Schedule, rf: &RegisterFile) {
    let mut produced_level = vec![None; schedule.slot_count()];
    for si in schedule.instrs() {
        produced_level[si.dst] = Some(si.level);
    }
    for si in schedule.instrs() {
        for operand in si.instr.operands() {
            let available = match produced_level[operand] {
                Some(level) => level < si.level,
                None => rf.is_bound(operand),
            };
            assert!(
                available,
                "slot {operand} (operand of the level-{} instruction writing slot {}) is \
                 neither pre-bound nor produced at an earlier level",
                si.level, si.dst
            );
        }
    }
}

/// Renders a panic payload as text, best effort.
fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// The instruction-dispatch wrapper both executors call instead of
/// [`run_instr`] directly: checks the cancellation token (so a cancelled or
/// deadline-expired request stops scheduling mid-flight), runs the fault
/// plan's dispatch hook, and isolates panics — injected or genuine — behind
/// `catch_unwind`, converting them into [`FheError::WorkerPanic`] so they
/// flow through the executors' ordinary error/abort machinery (which wakes
/// peer workers and restores arenas) instead of stranding scoped threads.
pub(crate) fn dispatch_instr(
    si: &ScheduledInstr,
    rf: &RegisterFile,
    evaluator: &mut Evaluator,
    res: &ExecResources<'_>,
    calibration: &mut CalibratedCostModel,
) -> Result<Register, FheError> {
    if let Some(token) = res.cancel {
        token.check()?;
    }
    let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        if let Some(plan) = res.faults {
            plan.before_instr();
        }
        run_instr(si, rf, evaluator, res, calibration)
    }));
    match outcome {
        Ok(result) => result,
        Err(payload) => Err(FheError::WorkerPanic {
            message: panic_message(payload),
        }),
    }
}

/// Executes one instruction against the register file (shared by the
/// wavefront and dataflow executors — both guarantee operands are written
/// before an instruction runs).
pub(crate) fn run_instr(
    si: &ScheduledInstr,
    rf: &RegisterFile,
    evaluator: &mut Evaluator,
    res: &ExecResources<'_>,
    calibration: &mut CalibratedCostModel,
) -> Result<Register, FheError> {
    let result = match &si.instr {
        Instr::Bin { op, a, b } => match (rf.read(*a), rf.read(*b)) {
            (Register::Cipher(x), Register::Cipher(y)) => {
                let started = Instant::now();
                let out = match op {
                    BinOp::Add => evaluator.add(&x, &y),
                    BinOp::Sub => evaluator.sub(&x, &y),
                    BinOp::Mul => evaluator.multiply(&x, &y, res.relin_keys),
                };
                calibration.record(ct_ct_kind(*op), started.elapsed());
                Register::cipher(out)
            }
            (Register::Cipher(x), Register::Plain(p)) => {
                let plain = p.encoded_in(res.ctx, evaluator.arena_mut())?;
                let started = Instant::now();
                let out = match op {
                    BinOp::Add => evaluator.add_plain(&x, plain),
                    BinOp::Sub => evaluator.sub_plain(&x, plain),
                    BinOp::Mul => evaluator.multiply_plain(&x, plain),
                };
                calibration.record(ct_pt_kind(*op), started.elapsed());
                Register::cipher(out)
            }
            (Register::Plain(p), Register::Cipher(y)) => {
                let plain = p.encoded_in(res.ctx, evaluator.arena_mut())?;
                let started = Instant::now();
                let out = match op {
                    BinOp::Add => evaluator.add_plain(&y, plain),
                    BinOp::Sub => {
                        // p - y = -(y - p), negated in place.
                        let mut diff = evaluator.sub_plain(&y, plain);
                        evaluator.neg_assign(&mut diff);
                        diff
                    }
                    BinOp::Mul => evaluator.multiply_plain(&y, plain),
                };
                calibration.record(ct_pt_kind(*op), started.elapsed());
                Register::cipher(out)
            }
            (Register::Plain(_), Register::Plain(_)) => {
                unreachable!("plaintext-only nodes are evaluated on the client")
            }
        },
        Instr::Neg { a } => match rf.read(*a) {
            Register::Cipher(x) => {
                let started = Instant::now();
                let out = evaluator.negate(&x);
                calibration.record(OpKind::Negation, started.elapsed());
                Register::cipher(out)
            }
            Register::Plain(_) => unreachable!("plaintext-only nodes are evaluated on the client"),
        },
        Instr::Rot { a, parts } => match rf.read(*a) {
            Register::Cipher(x) => {
                // Steady-state rotation chain: each step's output feeds the
                // next and the superseded intermediate's buffers return to
                // the arena immediately.
                let mut current: Option<Ciphertext> = None;
                for &part in parts {
                    let source = current.as_ref().unwrap_or(&x);
                    let started = Instant::now();
                    let next = evaluator.rotate(source, part, res.galois_keys)?;
                    calibration.record(OpKind::Rotation, started.elapsed());
                    if let Some(old) = current.replace(next) {
                        evaluator.recycle(old);
                    }
                }
                let out = match current {
                    Some(rotated) => rotated,
                    // An empty realization is the identity rotation.
                    None => evaluator.clone_ciphertext(&x),
                };
                Register::cipher(out)
            }
            Register::Plain(_) => unreachable!("plaintext-only nodes are evaluated on the client"),
        },
        Instr::Pack { elems } => {
            let started = Instant::now();
            // Run-time packing: element i is moved to slot i with a
            // right-rotation and accumulated with in-place additions.
            let mut acc: Option<Ciphertext> = None;
            // Under a batched lane layout the plaintext accumulator spans
            // every live lane: each user's plaintext element is read at its
            // lane base and placed at its lane's copy of the slot.
            // (Ciphertext elements need no such care — the rotation below
            // shifts every lane's value uniformly.)
            let plain_width = match res.lanes {
                None => elems.len(),
                Some(geometry) => geometry.base(geometry.lanes.saturating_sub(1)) + elems.len(),
            };
            let mut plain_slots = vec![0i64; plain_width];
            for (slot, &elem) in elems.iter().enumerate() {
                match rf.read(elem) {
                    Register::Plain(values) => match res.lanes {
                        None => {
                            plain_slots[slot] = values.values().first().copied().unwrap_or(0);
                        }
                        Some(geometry) => {
                            for lane in 0..geometry.lanes {
                                let base = geometry.base(lane);
                                plain_slots[base + slot] =
                                    values.values().get(base).copied().unwrap_or(0);
                            }
                        }
                    },
                    Register::Cipher(ct) => {
                        let placed = if slot == 0 {
                            evaluator.clone_ciphertext(&ct)
                        } else {
                            evaluator.rotate(&ct, -(slot as i64), res.galois_keys)?
                        };
                        match &mut acc {
                            None => acc = Some(placed),
                            Some(prev) => {
                                evaluator.add_assign(prev, &placed);
                                evaluator.recycle(placed);
                            }
                        }
                    }
                }
            }
            // A ciphertext-kind vector always has at least one ciphertext
            // element, but keep a safe fallback.
            let mut packed = match acc {
                Some(ct) => ct,
                None => res
                    .zero
                    .expect("schedules with Pack instructions provide a zero ciphertext")
                    .clone(),
            };
            if plain_slots.iter().any(|&v| v != 0) {
                // The packing plaintext is transient — encoded from the
                // arena, added, and recycled within this one instruction.
                let plain = res.ctx.encode_in(&plain_slots, evaluator.arena_mut())?;
                let sum = evaluator.add_plain(&packed, &plain);
                evaluator.recycle(packed);
                evaluator.recycle_plain(plain);
                packed = sum;
            }
            calibration.record(OpKind::Pack, started.elapsed());
            Register::cipher(packed)
        }
    };
    Ok(result)
}
