//! The wavefront executor: a `std::thread` worker pool that runs every
//! instruction of a schedule level concurrently.
//!
//! Execution proceeds level by level. Within a level all instructions are
//! independent, so workers drain a shared atomic work queue; instructions are
//! pre-sorted by descending estimated cost (longest-processing-time-first),
//! which keeps the queue balanced even though a ct-ct multiplication costs
//! two orders of magnitude more than an addition. A barrier separates
//! levels: operands of the next level are guaranteed written before any
//! worker proceeds.
//!
//! Every worker owns a private [`Evaluator`] (the shared [`FheContext`] is
//! immutable) and a private [`CalibratedCostModel`]; both are merged when the
//! wavefront completes, so the report carries exact operation counts and
//! measured per-op-kind latencies with no synchronization on the hot path.

use crate::calibrate::{CalibratedCostModel, OpKind};
use crate::schedule::{Instr, Schedule, ScheduledInstr, Slot};
use chehab_fhe::{
    Ciphertext, Evaluator, EvaluatorStats, FheContext, FheError, GaloisKeys, Plaintext, RelinKeys,
};
use chehab_ir::BinOp;

/// Timing category of a binary op on two ciphertext operands.
fn ct_ct_kind(op: BinOp) -> OpKind {
    match op {
        BinOp::Add | BinOp::Sub => OpKind::Addition,
        BinOp::Mul => OpKind::MulCtCt,
    }
}

/// Timing category of a binary op with one plaintext operand.
fn ct_pt_kind(op: BinOp) -> OpKind {
    match op {
        BinOp::Add | BinOp::Sub => OpKind::Addition,
        BinOp::Mul => OpKind::MulCtPt,
    }
}
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Barrier, Mutex, OnceLock};
use std::time::{Duration, Instant};

/// A clear (client-side) value bound into the register file, with a
/// per-request cache of its encoded [`Plaintext`].
///
/// Every instruction that consumes the register shares one encoding (and,
/// through the plaintext's own splat cache, one payload NTT) instead of
/// re-encoding per use — safe across wavefront workers because the cache is
/// a [`OnceLock`] and encoding is deterministic.
#[derive(Debug, Clone, Default)]
pub struct PlainValue {
    values: Vec<i64>,
    encoded: OnceLock<Plaintext>,
}

impl PlainValue {
    /// Wraps clear slot values.
    pub fn new(values: Vec<i64>) -> Self {
        PlainValue {
            values,
            encoded: OnceLock::new(),
        }
    }

    /// The clear slot values.
    pub fn values(&self) -> &[i64] {
        &self.values
    }

    /// The encoded plaintext, computed on first use and shared afterwards.
    ///
    /// # Errors
    ///
    /// Propagates [`FheError`] from encoding (more values than slots).
    pub fn encoded(&self, ctx: &FheContext) -> Result<&Plaintext, FheError> {
        if let Some(plain) = self.encoded.get() {
            return Ok(plain);
        }
        let plain = ctx.encode(&self.values)?;
        Ok(self.encoded.get_or_init(|| plain))
    }
}

impl From<Vec<i64>> for PlainValue {
    fn from(values: Vec<i64>) -> Self {
        PlainValue::new(values)
    }
}

/// A register of the flat execution machine: either a ciphertext computed on
/// the server or a clear value the client evaluated (plaintext subcircuits
/// never touch ciphertexts).
#[derive(Debug, Clone)]
pub enum Register {
    /// An encrypted value.
    Cipher(Ciphertext),
    /// A clear (client-side) value, one entry per vector slot.
    Plain(PlainValue),
}

/// Shared immutable resources a wavefront execution borrows.
#[derive(Debug, Clone, Copy)]
pub struct ExecResources<'a> {
    /// The FHE context (parameters, NTT tables, encoding).
    pub ctx: &'a FheContext,
    /// Relinearization keys for ct-ct multiplications.
    pub relin_keys: &'a RelinKeys,
    /// Galois keys covering every realized rotation step.
    pub galois_keys: &'a GaloisKeys,
    /// A fresh encryption of zero, the packing fallback for degenerate
    /// vector nodes with no ciphertext element. Only needed — and only
    /// worth paying an encryption for — when the schedule contains
    /// [`Instr::Pack`] instructions.
    pub zero: Option<&'a Ciphertext>,
}

/// Which scheduling discipline produced an execution's timing breakdown.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SchedulerKind {
    /// Barrier-free dependency-counting dataflow execution
    /// ([`crate::DataflowExecutor`]): an instruction becomes runnable the
    /// instant its last operand is written. The default.
    #[default]
    Dataflow,
    /// Level-synchronized wavefront execution ([`WavefrontExecutor`]): a
    /// barrier separates topological levels, so every level waits for its
    /// slowest instruction.
    Leveled,
}

/// Wall-clock of one wavefront level.
#[derive(Debug, Clone)]
pub struct LevelTiming {
    /// Level index.
    pub level: usize,
    /// Instructions executed in the level.
    pub instructions: usize,
    /// Wall-clock time of the level (including the closing barrier).
    pub wall: Duration,
    /// Intra-op worker budget each evaluator had in this level: when the
    /// level is narrower than the worker pool, the spare threads split heavy
    /// payload loops inside single operations instead of idling at the
    /// barrier.
    pub intra_op_threads: usize,
}

/// Per-level and per-operation-kind breakdown of one execution.
#[derive(Debug, Clone)]
pub struct TimingBreakdown {
    /// The scheduling discipline that produced this breakdown.
    pub scheduler: SchedulerKind,
    /// Worker threads used.
    pub threads: usize,
    /// Wall-clock per wavefront level, in level order. Empty for dataflow
    /// executions — there are no levels to time; see
    /// [`TimingBreakdown::wall`], [`TimingBreakdown::queue_waits`] and
    /// [`TimingBreakdown::reclaimed_slack`] instead.
    pub levels: Vec<LevelTiming>,
    /// Wall-clock of the whole scheduled execution (for leveled runs this
    /// equals the sum of the level walls).
    pub wall: Duration,
    /// Measured per-operation-kind latencies.
    pub per_op: CalibratedCostModel,
    /// Measured duration of every instruction, indexed like
    /// [`Schedule::instrs`] — the input of
    /// [`Schedule::makespan`](crate::Schedule::makespan) projections.
    pub instr_times: Vec<Duration>,
    /// Dataflow only: per-instruction queue wait (from the instant the
    /// instruction's last dependency was satisfied to the instant a worker
    /// started running it), indexed like [`Schedule::instrs`]. Empty for
    /// leveled runs.
    pub queue_waits: Vec<Duration>,
    /// Dataflow only: ready instructions taken from another worker's local
    /// deque.
    pub steals: u64,
    /// Dataflow only: the barrier slack reclaimed versus leveled execution —
    /// the leveled makespan projection minus the dataflow makespan
    /// projection at the same worker count, both computed from this run's
    /// measured [`TimingBreakdown::instr_times`]. Zero for leveled runs.
    pub reclaimed_slack: Duration,
    /// Operations whose payload work actually split across more than one
    /// intra-op worker. The per-op latencies in
    /// [`TimingBreakdown::per_op`] are measured around the split, so the
    /// calibrated cost model sees the effect of intra-op parallelism
    /// directly.
    pub intra_op_splits: u64,
}

impl TimingBreakdown {
    /// A breakdown with no instructions (plaintext-only programs).
    pub fn empty(threads: usize) -> Self {
        TimingBreakdown {
            scheduler: SchedulerKind::default(),
            threads,
            levels: Vec::new(),
            wall: Duration::ZERO,
            per_op: CalibratedCostModel::new(),
            instr_times: Vec::new(),
            queue_waits: Vec::new(),
            steals: 0,
            reclaimed_slack: Duration::ZERO,
            intra_op_splits: 0,
        }
    }

    /// Total wall-clock of the scheduled execution: the sum of the level
    /// walls for leveled runs, the measured execution span for (level-less)
    /// dataflow runs.
    pub fn total_wall(&self) -> Duration {
        if self.levels.is_empty() {
            self.wall
        } else {
            self.levels.iter().map(|l| l.wall).sum()
        }
    }

    /// A queue-wait percentile (`0.0..=1.0`) across this run's instructions,
    /// `None` for leveled runs (no queue waits are recorded).
    pub fn queue_wait_percentile(&self, pct: f64) -> Option<Duration> {
        percentile(&mut self.queue_waits.clone(), pct)
    }
}

/// The `pct`-percentile (`0.0..=1.0`) of an unsorted sample set, `None`
/// when empty. Sorts in place.
pub(crate) fn percentile(samples: &mut [Duration], pct: f64) -> Option<Duration> {
    if samples.is_empty() {
        return None;
    }
    samples.sort_unstable();
    let rank = ((samples.len() as f64 - 1.0) * pct.clamp(0.0, 1.0)).round() as usize;
    Some(samples[rank.min(samples.len() - 1)])
}

/// The result of one wavefront execution.
#[derive(Debug, Clone)]
pub struct WavefrontOutcome {
    /// The output register of the circuit.
    pub output: Register,
    /// Merged homomorphic-operation counters of all workers.
    pub stats: EvaluatorStats,
    /// Per-level / per-op timing breakdown.
    pub timing: TimingBreakdown,
}

/// Executes instruction schedules on a pool of worker threads.
#[derive(Debug, Clone, Copy)]
pub struct WavefrontExecutor {
    threads: usize,
}

impl WavefrontExecutor {
    /// Creates an executor with the given worker-thread count (clamped to at
    /// least one).
    pub fn new(threads: usize) -> Self {
        WavefrontExecutor {
            threads: threads.max(1),
        }
    }

    /// The configured worker-thread count.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Runs a schedule against a register file whose pre-bound slots are
    /// filled (`initial[slot] = Some(..)` for every client-side value).
    ///
    /// # Errors
    ///
    /// Returns the first [`FheError`] any worker hit (typically a missing
    /// Galois key); remaining work is abandoned.
    ///
    /// # Panics
    ///
    /// Panics if the schedule references a slot that is neither pre-bound nor
    /// produced by an earlier level — [`Schedule::lower`] guarantees this
    /// never holds for well-formed inputs. The check runs up front on the
    /// calling thread: a panic inside a scoped worker would strand the other
    /// workers at the level barrier, so misuse must never reach the pool.
    pub fn execute(
        &self,
        schedule: &Schedule,
        initial: Vec<Option<Register>>,
        res: &ExecResources<'_>,
    ) -> Result<WavefrontOutcome, FheError> {
        assert_eq!(
            initial.len(),
            schedule.slot_count(),
            "register file size mismatch"
        );
        let mut regs: Vec<OnceLock<Register>> = Vec::with_capacity(initial.len());
        for value in initial {
            let cell = OnceLock::new();
            if let Some(register) = value {
                let _ = cell.set(register);
            }
            regs.push(cell);
        }
        validate_operands(schedule, &regs);

        // More workers than the widest level can never help.
        let workers = self.threads.min(schedule.max_width()).max(1);
        let (stats, timing) = if workers == 1 {
            self.execute_single(schedule, &regs, res)?
        } else {
            self.execute_parallel(schedule, &regs, res, workers)?
        };

        let output = regs
            .swap_remove(schedule.output())
            .into_inner()
            .expect("output register is pre-bound or produced by the schedule");
        Ok(WavefrontOutcome {
            output,
            stats,
            timing,
        })
    }

    fn execute_single(
        &self,
        schedule: &Schedule,
        regs: &[OnceLock<Register>],
        res: &ExecResources<'_>,
    ) -> Result<(EvaluatorStats, TimingBreakdown), FheError> {
        let mut evaluator = Evaluator::new(res.ctx);
        let mut calibration = CalibratedCostModel::new();
        let mut instr_times = vec![Duration::ZERO; schedule.instrs().len()];
        let mut levels = Vec::with_capacity(schedule.level_count());
        for (level, range) in schedule.levels().iter().enumerate() {
            let width = range.end - range.start;
            // A single instruction stream still uses the full requested
            // thread budget *inside* heavy ops: narrow levels are exactly
            // where intra-op chunking replaces idle wavefront workers.
            let intra_op_threads = intra_op_budget(self.threads, width);
            evaluator.set_intra_op_threads(intra_op_threads);
            let started = Instant::now();
            for (offset, si) in schedule.instrs()[range.clone()].iter().enumerate() {
                let instr_started = Instant::now();
                let register = run_instr(si, regs, &mut evaluator, res, &mut calibration)?;
                instr_times[range.start + offset] = instr_started.elapsed();
                let _ = regs[si.dst].set(register);
            }
            levels.push(LevelTiming {
                level,
                instructions: width,
                wall: started.elapsed(),
                intra_op_threads,
            });
        }
        let timing = TimingBreakdown {
            scheduler: SchedulerKind::Leveled,
            threads: 1,
            wall: levels.iter().map(|l| l.wall).sum(),
            levels,
            per_op: calibration,
            instr_times,
            queue_waits: Vec::new(),
            steals: 0,
            reclaimed_slack: Duration::ZERO,
            intra_op_splits: evaluator.intra_op_splits(),
        };
        Ok((evaluator.stats(), timing))
    }

    fn execute_parallel(
        &self,
        schedule: &Schedule,
        regs: &[OnceLock<Register>],
        res: &ExecResources<'_>,
        workers: usize,
    ) -> Result<(EvaluatorStats, TimingBreakdown), FheError> {
        let cursors: Vec<AtomicUsize> = schedule
            .levels()
            .iter()
            .map(|_| AtomicUsize::new(0))
            .collect();
        let abort = AtomicBool::new(false);
        let failure: Mutex<Option<FheError>> = Mutex::new(None);
        // Workers plus the coordinating thread, which only timestamps levels.
        let barrier = Barrier::new(workers + 1);
        let merged: Mutex<(EvaluatorStats, CalibratedCostModel, Vec<Duration>, u64)> =
            Mutex::new((
                EvaluatorStats::default(),
                CalibratedCostModel::new(),
                vec![Duration::ZERO; schedule.instrs().len()],
                0,
            ));
        let requested_threads = self.threads;

        let mut levels = Vec::with_capacity(schedule.level_count());
        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| {
                    let mut evaluator = Evaluator::new(res.ctx);
                    let mut calibration = CalibratedCostModel::new();
                    let mut timed: Vec<(usize, Duration)> = Vec::new();
                    for (level, range) in schedule.levels().iter().enumerate() {
                        let len = range.end - range.start;
                        // Levels narrower than the pool leave workers idle at
                        // the barrier; the busy workers spend the spare
                        // budget chunking inside their heavy ops instead.
                        evaluator.set_intra_op_threads(intra_op_budget(requested_threads, len));
                        while !abort.load(Ordering::Relaxed) {
                            let index = cursors[level].fetch_add(1, Ordering::Relaxed);
                            if index >= len {
                                break;
                            }
                            let si = &schedule.instrs()[range.start + index];
                            let instr_started = Instant::now();
                            match run_instr(si, regs, &mut evaluator, res, &mut calibration) {
                                Ok(register) => {
                                    timed.push((range.start + index, instr_started.elapsed()));
                                    let _ = regs[si.dst].set(register);
                                }
                                Err(e) => {
                                    let mut slot = failure.lock().unwrap();
                                    slot.get_or_insert(e);
                                    abort.store(true, Ordering::Relaxed);
                                }
                            }
                        }
                        barrier.wait();
                    }
                    let mut m = merged.lock().unwrap();
                    m.0.merge(&evaluator.stats());
                    m.1.merge(&calibration);
                    for (index, duration) in timed {
                        m.2[index] = duration;
                    }
                    m.3 += evaluator.intra_op_splits();
                });
            }

            let mut previous = Instant::now();
            for (level, range) in schedule.levels().iter().enumerate() {
                barrier.wait();
                let now = Instant::now();
                let width = range.end - range.start;
                levels.push(LevelTiming {
                    level,
                    instructions: width,
                    wall: now - previous,
                    intra_op_threads: intra_op_budget(requested_threads, width),
                });
                previous = now;
            }
        });

        if let Some(error) = failure.into_inner().unwrap() {
            return Err(error);
        }
        let (stats, calibration, instr_times, intra_op_splits) = merged.into_inner().unwrap();
        Ok((
            stats,
            TimingBreakdown {
                scheduler: SchedulerKind::Leveled,
                threads: workers,
                wall: levels.iter().map(|l| l.wall).sum(),
                levels,
                per_op: calibration,
                instr_times,
                queue_waits: Vec::new(),
                steals: 0,
                reclaimed_slack: Duration::ZERO,
                intra_op_splits,
            },
        ))
    }
}

/// The intra-op worker budget of a level: spare threads per busy worker
/// when the level is narrower than the requested pool (`1` when the level
/// is at least as wide as the pool — instruction-level parallelism already
/// covers the cores).
fn intra_op_budget(requested_threads: usize, level_width: usize) -> usize {
    (requested_threads / level_width.max(1)).max(1)
}

/// Panics (on the calling thread, before any worker spawns) if an
/// instruction's operand is neither pre-bound nor the destination of an
/// earlier-level instruction.
pub(crate) fn validate_operands(schedule: &Schedule, regs: &[OnceLock<Register>]) {
    let mut produced_level = vec![None; schedule.slot_count()];
    for si in schedule.instrs() {
        produced_level[si.dst] = Some(si.level);
    }
    for si in schedule.instrs() {
        for operand in si.instr.operands() {
            let available = match produced_level[operand] {
                Some(level) => level < si.level,
                None => regs[operand].get().is_some(),
            };
            assert!(
                available,
                "slot {operand} (operand of the level-{} instruction writing slot {}) is \
                 neither pre-bound nor produced at an earlier level",
                si.level, si.dst
            );
        }
    }
}

/// Executes one instruction against the register file (shared by the
/// wavefront and dataflow executors — both guarantee operands are written
/// before an instruction runs).
pub(crate) fn run_instr(
    si: &ScheduledInstr,
    regs: &[OnceLock<Register>],
    evaluator: &mut Evaluator,
    res: &ExecResources<'_>,
    calibration: &mut CalibratedCostModel,
) -> Result<Register, FheError> {
    let reg = |slot: Slot| -> &Register {
        regs[slot]
            .get()
            .expect("operands are produced in strictly earlier levels")
    };
    let result = match &si.instr {
        Instr::Bin { op, a, b } => match (reg(*a), reg(*b)) {
            (Register::Cipher(x), Register::Cipher(y)) => {
                let started = Instant::now();
                let out = match op {
                    BinOp::Add => evaluator.add(x, y),
                    BinOp::Sub => evaluator.sub(x, y),
                    BinOp::Mul => evaluator.multiply(x, y, res.relin_keys),
                };
                calibration.record(ct_ct_kind(*op), started.elapsed());
                Register::Cipher(out)
            }
            (Register::Cipher(x), Register::Plain(p)) => {
                let plain = p.encoded(res.ctx)?;
                let started = Instant::now();
                let out = match op {
                    BinOp::Add => evaluator.add_plain(x, plain),
                    BinOp::Sub => evaluator.sub_plain(x, plain),
                    BinOp::Mul => evaluator.multiply_plain(x, plain),
                };
                calibration.record(ct_pt_kind(*op), started.elapsed());
                Register::Cipher(out)
            }
            (Register::Plain(p), Register::Cipher(y)) => {
                let plain = p.encoded(res.ctx)?;
                let started = Instant::now();
                let out = match op {
                    BinOp::Add => evaluator.add_plain(y, plain),
                    BinOp::Sub => {
                        // p - y = -(y - p)
                        let diff = evaluator.sub_plain(y, plain);
                        evaluator.negate(&diff)
                    }
                    BinOp::Mul => evaluator.multiply_plain(y, plain),
                };
                calibration.record(ct_pt_kind(*op), started.elapsed());
                Register::Cipher(out)
            }
            (Register::Plain(_), Register::Plain(_)) => {
                unreachable!("plaintext-only nodes are evaluated on the client")
            }
        },
        Instr::Neg { a } => match reg(*a) {
            Register::Cipher(x) => {
                let started = Instant::now();
                let out = evaluator.negate(x);
                calibration.record(OpKind::Negation, started.elapsed());
                Register::Cipher(out)
            }
            Register::Plain(_) => unreachable!("plaintext-only nodes are evaluated on the client"),
        },
        Instr::Rot { a, parts } => match reg(*a) {
            Register::Cipher(x) => {
                let mut current = x.clone();
                for &part in parts {
                    let started = Instant::now();
                    current = evaluator.rotate(&current, part, res.galois_keys)?;
                    calibration.record(OpKind::Rotation, started.elapsed());
                }
                Register::Cipher(current)
            }
            Register::Plain(_) => unreachable!("plaintext-only nodes are evaluated on the client"),
        },
        Instr::Pack { elems } => {
            let started = Instant::now();
            // Run-time packing: element i is moved to slot i with a
            // right-rotation and accumulated with additions.
            let mut acc: Option<Ciphertext> = None;
            let mut plain_slots = vec![0i64; elems.len()];
            for (slot, &elem) in elems.iter().enumerate() {
                match reg(elem) {
                    Register::Plain(values) => {
                        plain_slots[slot] = values.values().first().copied().unwrap_or(0);
                    }
                    Register::Cipher(ct) => {
                        let placed = if slot == 0 {
                            ct.clone()
                        } else {
                            evaluator.rotate(ct, -(slot as i64), res.galois_keys)?
                        };
                        acc = Some(match acc {
                            None => placed,
                            Some(prev) => evaluator.add(&prev, &placed),
                        });
                    }
                }
            }
            // A ciphertext-kind vector always has at least one ciphertext
            // element, but keep a safe fallback.
            let mut packed = match acc {
                Some(ct) => ct,
                None => res
                    .zero
                    .expect("schedules with Pack instructions provide a zero ciphertext")
                    .clone(),
            };
            if plain_slots.iter().any(|&v| v != 0) {
                let plain = res.ctx.encode(&plain_slots)?;
                packed = evaluator.add_plain(&packed, &plain);
            }
            calibration.record(OpKind::Pack, started.elapsed());
            Register::Cipher(packed)
        }
    };
    Ok(result)
}
