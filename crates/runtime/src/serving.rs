//! The persistent serving front end: a bounded request queue drained by
//! long-lived worker threads.
//!
//! [`BatchExecutor`](crate::BatchExecutor) parallelizes one *closed* batch —
//! the caller owns the full request list up front and blocks until every
//! result is back. Serving traffic is open-ended: requests arrive one at a
//! time, the caller wants a handle back immediately, and the expensive
//! per-program state (keys, leveled schedule, calibration) must stay alive
//! between requests instead of being rebuilt per call. A [`ServingEngine`]
//! provides exactly that shape:
//!
//! - [`ServingEngine::submit`] enqueues a request into a **bounded** queue
//!   (back-pressure: it blocks while the queue is at capacity) and returns a
//!   [`RequestHandle`]; [`ServingEngine::try_submit`] is the non-blocking
//!   variant that hands the request back on a full queue instead;
//! - persistent workers drain the queue through one shared handler — for FHE
//!   serving, a closure over one long-lived `FheSession` (see
//!   `chehab_core::FheSession::serve`);
//! - [`RequestHandle::wait`] / [`RequestHandle::try_poll`] retrieve the
//!   result of *that* request, so callers observe submission order even when
//!   completions happen out of order;
//! - [`ServingEngine::shutdown`] stops intake, drains everything already
//!   queued or in flight, joins the workers, and reports final
//!   [`ServingStats`].
//!
//! The engine is generic over request and response types (it knows nothing
//! about FHE), which keeps this crate's dependency surface unchanged —
//! `chehab-core` layers the session-backed serving API on top.

use crate::exec::percentile;
use crate::faults::{CancellationToken, FaultPlan};
use crate::telemetry::{Histogram, SpanEvent, TraceSink};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Sizing and resilience knobs of a [`ServingEngine`].
#[derive(Debug, Clone)]
pub struct ServingConfig {
    /// Persistent worker threads draining the queue (clamped to at least 1).
    pub workers: usize,
    /// Maximum *queued* (submitted but not yet started) requests before
    /// [`ServingEngine::submit`] blocks (clamped to at least 1).
    pub queue_capacity: usize,
    /// Per-request deadline: each submission's [`CancellationToken`] is
    /// stamped `now + deadline` at enqueue, so a request that outlives it
    /// stops executing mid-flight (when the handler threads the token into
    /// the executors) and is counted in
    /// [`ResilienceSnapshot::deadline_missed`]. `None` (the default) runs
    /// every request to completion.
    pub deadline: Option<Duration>,
    /// Admission control: when `true` and a deadline is configured,
    /// submissions whose deadline is provably infeasible — projected
    /// completion time from the measured mean request wall times the queue
    /// backlog exceeds the deadline — are shed at the door
    /// ([`ServingError::Shed`] / [`TrySubmitError::Shed`]) instead of
    /// queued to fail late. Takes effect once at least one request has
    /// completed (no calibration, no shedding).
    pub shed_infeasible: bool,
    /// Optional deterministic fault-injection plan: submission-side faults
    /// (forced queue-full rejections, worker kills) draw from it. Executor
    /// faults are wired separately through
    /// [`ExecResources::faults`](crate::ExecResources). `None` (the
    /// default) injects nothing.
    pub faults: Option<FaultPlan>,
}

/// Default bound of the request queue.
pub const DEFAULT_QUEUE_CAPACITY: usize = 64;

impl Default for ServingConfig {
    fn default() -> Self {
        ServingConfig::standard()
    }
}

impl ServingConfig {
    /// The sizing-only constructor most callers want: `workers` threads, a
    /// `queue_capacity`-bounded queue, no deadline, no shedding, no faults.
    pub fn sized(workers: usize, queue_capacity: usize) -> Self {
        ServingConfig {
            workers,
            queue_capacity,
            ..ServingConfig::standard()
        }
    }

    /// The standard configuration: host-derived worker count, the default
    /// queue bound, and no resilience knobs engaged.
    pub fn standard() -> Self {
        ServingConfig {
            workers: default_workers(),
            queue_capacity: DEFAULT_QUEUE_CAPACITY,
            deadline: None,
            shed_infeasible: false,
            faults: None,
        }
    }
}

/// Worker count derived from the host: `std::thread::available_parallelism`,
/// clamped to `[1, 8]` so 1-CPU hosts are not oversubscribed and large hosts
/// are not flooded by default (callers can always ask for more explicitly).
pub fn default_workers() -> usize {
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
        .clamp(1, 8)
}

/// Why a submission was rejected.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServingError {
    /// The engine is shutting down (or already shut down); no new requests
    /// are accepted.
    ShutDown,
    /// Admission control shed the request: its deadline is provably
    /// infeasible given the current queue backlog and the measured mean
    /// request cost (see [`ServingConfig::shed_infeasible`]).
    Shed,
}

impl std::fmt::Display for ServingError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServingError::ShutDown => write!(f, "serving engine is shut down"),
            ServingError::Shed => {
                write!(
                    f,
                    "request shed: deadline infeasible at the current backlog"
                )
            }
        }
    }
}

impl std::error::Error for ServingError {}

/// Why a non-blocking submission was rejected. Both variants hand the
/// request back to the caller, so an overloaded producer can retry, shed
/// load, or route the request elsewhere without having cloned it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TrySubmitError<T> {
    /// The engine is shutting down (or already shut down); no new requests
    /// are accepted. Carries the rejected request.
    ShutDown(T),
    /// The queue is at capacity right now. Carries the rejected request;
    /// the blocking [`ServingEngine::submit`] would have waited instead.
    QueueFull(T),
    /// Admission control shed the request: its deadline is provably
    /// infeasible given the current queue backlog and the measured mean
    /// request cost (see [`ServingConfig::shed_infeasible`]). Retrying
    /// immediately is pointless; carrying the request back lets the caller
    /// divert or drop it.
    Shed(T),
}

impl<T> TrySubmitError<T> {
    /// Recovers the rejected request.
    pub fn into_request(self) -> T {
        match self {
            TrySubmitError::ShutDown(request)
            | TrySubmitError::QueueFull(request)
            | TrySubmitError::Shed(request) => request,
        }
    }

    /// `true` for the transient [`TrySubmitError::QueueFull`] rejection
    /// (worth retrying), `false` for the terminal shutdown and shed
    /// rejections.
    pub fn is_queue_full(&self) -> bool {
        matches!(self, TrySubmitError::QueueFull(_))
    }

    /// `true` for the [`TrySubmitError::Shed`] admission-control rejection.
    pub fn is_shed(&self) -> bool {
        matches!(self, TrySubmitError::Shed(_))
    }
}

impl<T> std::fmt::Display for TrySubmitError<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TrySubmitError::ShutDown(_) => write!(f, "serving engine is shut down"),
            TrySubmitError::QueueFull(_) => write!(f, "serving queue is at capacity"),
            TrySubmitError::Shed(_) => {
                write!(
                    f,
                    "request shed: deadline infeasible at the current backlog"
                )
            }
        }
    }
}

impl<T: std::fmt::Debug> std::error::Error for TrySubmitError<T> {}

/// Aggregated scheduler counters of the requests an engine has served: the
/// first slice of the engine-level metrics export. Handlers that execute
/// through the dataflow runtime record each request's scheduler figures into
/// the engine's [`SchedulerMetrics`]; this snapshot summarizes them.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SchedulerStatsSnapshot {
    /// Requests whose scheduler figures were recorded.
    pub requests: u64,
    /// Ready instructions taken from another worker's local deque, summed
    /// across requests.
    pub steals: u64,
    /// Barrier slack reclaimed versus leveled execution, summed across
    /// requests (see `TimingBreakdown::reclaimed_slack` in this crate).
    pub reclaimed_slack: Duration,
    /// Median per-instruction queue wait across every recorded request.
    pub queue_wait_p50: Option<Duration>,
    /// 95th-percentile per-instruction queue wait.
    pub queue_wait_p95: Option<Duration>,
}

impl SchedulerStatsSnapshot {
    /// Mean reclaimed barrier slack per recorded request.
    pub fn reclaimed_slack_per_request(&self) -> Option<Duration> {
        (self.requests > 0).then(|| self.reclaimed_slack / self.requests as u32)
    }
}

/// Bound on retained queue-wait samples: once full, the oldest samples are
/// overwritten (a sliding window), so percentiles track steady-state
/// traffic without growing an engine's footprint unboundedly.
const MAX_QUEUE_WAIT_SAMPLES: usize = 65_536;

/// Scheduler-counter sink shared between an engine and its request handler:
/// the handler records per-request dataflow figures (steals, queue waits,
/// reclaimed slack), [`ServingEngine::stats`] folds the aggregate into
/// [`ServingStats::scheduler`]. Kept separate from the engine's own queue
/// counters so the engine stays generic over request/response types.
#[derive(Debug, Default)]
pub struct SchedulerMetrics {
    inner: Mutex<SchedulerAgg>,
}

#[derive(Debug, Default)]
struct SchedulerAgg {
    requests: u64,
    steals: u64,
    reclaimed_slack: Duration,
    queue_waits: Vec<Duration>,
    /// Next slot to overwrite once `queue_waits` is at capacity (ring
    /// cursor), so retained samples follow the traffic instead of freezing
    /// on the startup window.
    next_wait_slot: usize,
    /// Per-operation-kind latency histograms, keyed by the op-kind label
    /// the handler records with (fixed-footprint, so they never grow with
    /// traffic the way a sample vector would).
    per_op: Vec<(&'static str, Histogram)>,
}

impl SchedulerMetrics {
    /// Records one request's scheduler figures. Queue-wait samples are kept
    /// in a bounded sliding window (oldest overwritten first); the counters
    /// always accumulate.
    pub fn record(&self, steals: u64, reclaimed_slack: Duration, queue_waits: &[Duration]) {
        let mut agg = self.inner.lock().unwrap();
        agg.requests += 1;
        agg.steals += steals;
        agg.reclaimed_slack += reclaimed_slack;
        for &wait in queue_waits {
            if agg.queue_waits.len() < MAX_QUEUE_WAIT_SAMPLES {
                agg.queue_waits.push(wait);
            } else {
                let slot = agg.next_wait_slot;
                agg.queue_waits[slot] = wait;
                agg.next_wait_slot = (slot + 1) % MAX_QUEUE_WAIT_SAMPLES;
            }
        }
    }

    /// Records per-operation latency samples (one lock for the whole
    /// batch): the handler feeds each executed instruction's measured span,
    /// labelled by operation kind, and [`ServingStats::latency`] reports
    /// the per-kind histograms.
    pub fn record_op_samples(&self, samples: impl IntoIterator<Item = (&'static str, Duration)>) {
        let mut agg = self.inner.lock().unwrap();
        for (label, sample) in samples {
            match agg.per_op.iter_mut().find(|(l, _)| *l == label) {
                Some((_, histogram)) => histogram.record(sample),
                None => {
                    let mut histogram = Histogram::new();
                    histogram.record(sample);
                    agg.per_op.push((label, histogram));
                }
            }
        }
    }

    /// The per-operation-kind latency histograms recorded so far, sorted by
    /// label for deterministic output.
    pub fn per_op_histograms(&self) -> Vec<(String, Histogram)> {
        let agg = self.inner.lock().unwrap();
        let mut out: Vec<(String, Histogram)> = agg
            .per_op
            .iter()
            .map(|(label, histogram)| (label.to_string(), histogram.clone()))
            .collect();
        out.sort_by(|a, b| a.0.cmp(&b.0));
        out
    }

    /// A point-in-time summary of everything recorded so far.
    pub fn snapshot(&self) -> SchedulerStatsSnapshot {
        let agg = self.inner.lock().unwrap();
        let mut waits = agg.queue_waits.clone();
        SchedulerStatsSnapshot {
            requests: agg.requests,
            steals: agg.steals,
            reclaimed_slack: agg.reclaimed_slack,
            queue_wait_p50: percentile(&mut waits, 0.50),
            queue_wait_p95: percentile(&mut waits, 0.95),
        }
    }
}

/// Cumulative resilience counters of a serving engine (or a whole session's
/// engines — `chehab-core` shares one sink across every engine a session
/// spawns and mirrors it into the Prometheus registry). All methods are
/// lock-free atomic bumps, safe to call from any worker.
#[derive(Debug, Default)]
pub struct ResilienceStats {
    cancelled: AtomicU64,
    deadline_missed: AtomicU64,
    shed: AtomicU64,
    worker_panics: AtomicU64,
}

impl ResilienceStats {
    /// A fresh all-zero sink.
    pub fn new() -> Self {
        Self::default()
    }

    /// Counts one explicitly cancelled request.
    pub fn note_cancelled(&self) {
        self.cancelled.fetch_add(1, Ordering::Relaxed);
    }

    /// Counts one request whose deadline expired before completion.
    pub fn note_deadline_missed(&self) {
        self.deadline_missed.fetch_add(1, Ordering::Relaxed);
    }

    /// Counts one request shed by admission control.
    pub fn note_shed(&self) {
        self.shed.fetch_add(1, Ordering::Relaxed);
    }

    /// Counts one isolated worker panic (a panicking handler or a planned
    /// worker kill).
    pub fn note_worker_panic(&self) {
        self.worker_panics.fetch_add(1, Ordering::Relaxed);
    }

    /// A point-in-time copy of the counters.
    pub fn snapshot(&self) -> ResilienceSnapshot {
        ResilienceSnapshot {
            cancelled: self.cancelled.load(Ordering::Relaxed),
            deadline_missed: self.deadline_missed.load(Ordering::Relaxed),
            shed: self.shed.load(Ordering::Relaxed),
            worker_panics: self.worker_panics.load(Ordering::Relaxed),
        }
    }
}

/// A point-in-time copy of [`ResilienceStats`], carried in
/// [`ServingStats::resilience`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ResilienceSnapshot {
    /// Requests cancelled (explicitly, via [`RequestHandle::cancel`] or a
    /// fault plan) before completing.
    pub cancelled: u64,
    /// Requests whose deadline expired before they completed.
    pub deadline_missed: u64,
    /// Requests shed at submission by admission control.
    pub shed: u64,
    /// Worker panics isolated by the engine (panicking handlers and planned
    /// worker kills).
    pub worker_panics: u64,
}

/// Latency histograms of one engine's served traffic, snapshotted into
/// [`ServingStats::latency`]: per-request wall latency, per-request queue
/// wait, and (when the handler records them through
/// [`SchedulerMetrics::record_op_samples`]) per-operation-kind latencies.
#[derive(Debug, Clone, Default)]
pub struct LatencySnapshot {
    /// Handler wall latency of each completed request.
    pub request_wall: Histogram,
    /// Time each request spent queued (submit to handler start).
    pub queue_wait: Histogram,
    /// Per-operation-kind latency histograms, sorted by label.
    pub per_op: Vec<(String, Histogram)>,
    /// Handler wall latency split by outcome, labelled `"ok"`,
    /// `"cancelled"`, `"deadline_missed"` and `"panicked"` (always all four,
    /// some possibly empty), completing the per-outcome slice of the
    /// `ServingStats` export.
    pub per_outcome: Vec<(String, Histogram)>,
}

/// A point-in-time snapshot of one engine's serving counters.
#[derive(Debug, Clone)]
pub struct ServingStats {
    /// Requests accepted by [`ServingEngine::submit`] so far.
    pub submitted: u64,
    /// Requests whose handler has finished (including handlers that
    /// panicked — their handles re-raise the panic on retrieval).
    pub completed: u64,
    /// Requests currently queued (submitted, not yet started).
    pub queue_depth: usize,
    /// Requests currently executing on a worker.
    pub in_flight: usize,
    /// Persistent worker threads of the engine.
    pub workers: usize,
    /// Cumulative handler time across all workers (sums over workers, so it
    /// can exceed `elapsed` on multi-core hosts).
    pub busy: Duration,
    /// Wall-clock since the engine started.
    pub elapsed: Duration,
    /// Aggregated per-request scheduler counters (steals, queue-wait
    /// percentiles, reclaimed barrier slack) — populated when the handler
    /// records into the engine's [`SchedulerMetrics`], all-zero otherwise.
    pub scheduler: SchedulerStatsSnapshot,
    /// Latency histograms of the served traffic: per-request wall latency
    /// and queue wait (always recorded by the engine), plus per-op-kind
    /// latencies when the handler records them.
    pub latency: LatencySnapshot,
    /// Cumulative resilience counters: cancellations, missed deadlines,
    /// shed submissions, isolated worker panics.
    pub resilience: ResilienceSnapshot,
}

impl ServingStats {
    /// Completed requests per wall-clock second since the engine started.
    /// Returns exactly `0.0` (never `NaN` or infinity) when nothing has
    /// completed or no time has elapsed.
    pub fn throughput_rps(&self) -> f64 {
        let secs = self.elapsed.as_secs_f64();
        if self.completed == 0 || secs <= 0.0 {
            return 0.0;
        }
        self.completed as f64 / secs
    }

    /// Mean handler latency of the completed requests, if any completed.
    pub fn mean_latency(&self) -> Option<Duration> {
        (self.completed > 0).then(|| self.busy / self.completed as u32)
    }
}

/// Result cell shared between one request's worker and its handle.
struct ResultSlot<R> {
    value: Option<R>,
    /// Set once the value has been handed out (`wait` or `try_poll`), so a
    /// handle misuse panics instead of deadlocking.
    taken: bool,
    /// Set by the worker when the handler finished (even after the value is
    /// taken), so `is_finished` stays meaningful.
    finished: bool,
    /// Set when the handler panicked instead of returning: there is no
    /// value, and retrievers re-raise the panic instead of blocking forever.
    poisoned: bool,
    /// Set when the engine side disconnected before producing a value (a
    /// worker died with the job in flight, or the engine halted with the
    /// job still queued): there will never be a value, and retrievers get
    /// [`RequestError::Abandoned`] instead of blocking forever.
    abandoned: bool,
}

pub(crate) struct HandleShared<R> {
    slot: Mutex<ResultSlot<R>>,
    done: Condvar,
}

impl<R> HandleShared<R> {
    /// A fresh, unfinished result cell.
    pub(crate) fn new() -> Arc<Self> {
        Arc::new(HandleShared {
            slot: Mutex::new(ResultSlot {
                value: None,
                taken: false,
                finished: false,
                poisoned: false,
                abandoned: false,
            }),
            done: Condvar::new(),
        })
    }

    /// Worker side of completion: publishes the value (or, with `None`,
    /// poisons the cell so retrievers re-raise instead of blocking forever),
    /// marks the cell finished, and wakes every waiter.
    pub(crate) fn fulfill(&self, value: Option<R>) {
        {
            let mut slot = self
                .slot
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            match value {
                Some(value) => slot.value = Some(value),
                None => slot.poisoned = true,
            }
            slot.finished = true;
        }
        self.done.notify_all();
    }

    /// Engine side of abandonment: marks the cell as never-completing (a
    /// no-op if the handler already fulfilled it) and wakes every waiter, so
    /// a dying worker or a halting engine resolves outstanding handles with
    /// an error instead of leaving waiters blocked.
    pub(crate) fn disconnect(&self) {
        {
            let mut slot = self
                .slot
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            if slot.finished {
                return;
            }
            slot.abandoned = true;
        }
        self.done.notify_all();
    }
}

/// Why a request's result will never arrive, from
/// [`RequestHandle::try_wait`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RequestError {
    /// The request's handler panicked; the panic was isolated by the worker.
    Panicked,
    /// The engine side disconnected before producing a result: the worker
    /// serving the request died, or the engine was halted/dropped with the
    /// request still queued behind dead workers.
    Abandoned,
}

impl std::fmt::Display for RequestError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RequestError::Panicked => write!(f, "request panicked in its handler"),
            RequestError::Abandoned => {
                write!(f, "request was abandoned by the serving engine")
            }
        }
    }
}

impl std::error::Error for RequestError {}

/// The caller's side of one submitted request.
///
/// Exactly one of [`RequestHandle::wait`] / a successful
/// [`RequestHandle::try_poll`] yields the result; polling again after the
/// result was taken returns `None`, and waiting after it was taken panics
/// (rather than blocking forever).
pub struct RequestHandle<R> {
    id: u64,
    shared: Arc<HandleShared<R>>,
    token: CancellationToken,
}

impl<R> std::fmt::Debug for RequestHandle<R> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RequestHandle")
            .field("id", &self.id)
            .finish_non_exhaustive()
    }
}

impl<R> RequestHandle<R> {
    /// Pairs a handle with an existing result cell and cancellation token —
    /// how the serving engine and the request coalescer mint the caller's
    /// side of a submission.
    pub(crate) fn from_shared(
        id: u64,
        shared: Arc<HandleShared<R>>,
        token: CancellationToken,
    ) -> Self {
        RequestHandle { id, shared, token }
    }

    /// The engine-assigned request id, in submission order starting at 0.
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Requests cancellation: flags the request's [`CancellationToken`], so
    /// a handler that threads it into the executors stops scheduling the
    /// request's remaining instructions mid-flight. Cancellation is
    /// cooperative and asynchronous — the handle still completes (typically
    /// with `FheError::Cancelled` on the FHE serving path), so callers
    /// retrieve the result as usual.
    pub fn cancel(&self) {
        self.token.cancel();
    }

    /// The request's cancellation token (shared with the engine worker that
    /// serves it).
    pub fn cancellation_token(&self) -> &CancellationToken {
        &self.token
    }

    /// Locks the result slot, recovering from std mutex poisoning: the
    /// slot's own `poisoned` flag (set by the worker, never mid-update)
    /// tracks handler panics, so a retriever that panicked while holding
    /// the lock must not wedge every later accessor.
    fn lock_slot(&self) -> std::sync::MutexGuard<'_, ResultSlot<R>> {
        self.shared
            .slot
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// Panics with the handler-panic message — with the slot guard already
    /// released, so the panic cannot poison the mutex for other accessors.
    fn raise_poisoned(&self, slot: std::sync::MutexGuard<'_, ResultSlot<R>>) -> ! {
        drop(slot);
        panic!("serving request {} panicked in its handler", self.id);
    }

    /// `true` once the request will never produce more: its handler finished
    /// (including by panicking), or the engine side abandoned it.
    pub fn is_finished(&self) -> bool {
        let slot = self.lock_slot();
        slot.finished || slot.abandoned
    }

    /// Returns the result if the request already completed, without
    /// blocking; `None` while it is still queued or in flight, and `None`
    /// forever after the result has been taken.
    ///
    /// # Panics
    ///
    /// Panics if the request's handler panicked (the panic is propagated to
    /// the retriever, like `JoinHandle::join`), or if the engine side
    /// abandoned the request. Use [`RequestHandle::try_wait`] for a
    /// non-panicking retrieval.
    pub fn try_poll(&self) -> Option<R> {
        let mut slot = self.lock_slot();
        if slot.poisoned {
            self.raise_poisoned(slot);
        }
        if slot.abandoned {
            let id = self.id;
            drop(slot);
            panic!("serving request {id} was abandoned by the engine");
        }
        let value = slot.value.take();
        if value.is_some() {
            slot.taken = true;
        }
        value
    }

    /// Blocks until the request completes and returns its result, or an
    /// error when it never will: [`RequestError::Panicked`] if the handler
    /// panicked, [`RequestError::Abandoned`] if the engine side disconnected
    /// (worker death, or a halt with the request still queued behind dead
    /// workers). Never blocks forever on a dead engine.
    ///
    /// # Panics
    ///
    /// Panics only on misuse: the result was already taken by
    /// [`RequestHandle::try_poll`] (the handle is single-shot).
    pub fn try_wait(self) -> Result<R, RequestError> {
        let mut slot = self.lock_slot();
        loop {
            if slot.poisoned {
                return Err(RequestError::Panicked);
            }
            if slot.abandoned {
                return Err(RequestError::Abandoned);
            }
            if let Some(value) = slot.value.take() {
                slot.taken = true;
                return Ok(value);
            }
            if slot.taken {
                drop(slot);
                panic!("RequestHandle::wait called after try_poll already took the result");
            }
            slot = self
                .shared
                .done
                .wait(slot)
                .unwrap_or_else(std::sync::PoisonError::into_inner);
        }
    }

    /// Blocks until the request completes and returns its result.
    ///
    /// # Panics
    ///
    /// Panics if the result was already taken by [`RequestHandle::try_poll`]
    /// (the handle is single-shot), if the request's handler panicked (the
    /// panic is propagated to the retriever, like `JoinHandle::join`), or if
    /// the engine side abandoned the request (worker death / halt) — never
    /// blocks forever on a dead engine. Use [`RequestHandle::try_wait`] to
    /// receive those terminal states as errors instead.
    pub fn wait(self) -> R {
        let id = self.id;
        match self.try_wait() {
            Ok(value) => value,
            Err(RequestError::Panicked) => {
                panic!("serving request {id} panicked in its handler")
            }
            Err(RequestError::Abandoned) => {
                panic!("serving request {id} was abandoned by the engine")
            }
        }
    }
}

/// One queued request: id, payload, the cell its result lands in, and the
/// cancellation token shared with the caller's handle.
struct Job<T, R> {
    id: u64,
    request: T,
    handle: Arc<HandleShared<R>>,
    token: CancellationToken,
    /// When the job entered the queue — measured against the dequeue time,
    /// it is the request's queue wait.
    enqueued: Instant,
}

struct QueueState<T, R> {
    queue: VecDeque<Job<T, R>>,
    shutting_down: bool,
    submitted: u64,
    in_flight: usize,
}

struct Counters {
    completed: u64,
    busy: Duration,
}

/// Engine-recorded latency histograms (wall + queue wait + per-outcome
/// wall); fixed footprint, so a long-lived engine never grows them with
/// traffic.
#[derive(Default)]
struct LatencyAgg {
    request_wall: Histogram,
    queue_wait: Histogram,
    ok: Histogram,
    cancelled: Histogram,
    deadline_missed: Histogram,
    panicked: Histogram,
}

impl LatencyAgg {
    /// The per-outcome histograms with their stable labels.
    fn per_outcome(&self) -> Vec<(String, Histogram)> {
        vec![
            ("ok".to_string(), self.ok.clone()),
            ("cancelled".to_string(), self.cancelled.clone()),
            ("deadline_missed".to_string(), self.deadline_missed.clone()),
            ("panicked".to_string(), self.panicked.clone()),
        ]
    }
}

struct Shared<T, R> {
    state: Mutex<QueueState<T, R>>,
    /// Signals workers that the queue gained a job (or shutdown started).
    not_empty: Condvar,
    /// Signals blocked submitters that the queue lost a job.
    not_full: Condvar,
    counters: Mutex<Counters>,
    /// Scheduler-counter sink the request handler records into.
    scheduler: Arc<SchedulerMetrics>,
    /// Per-request latency histograms (wall + queue wait), recorded by the
    /// workers themselves.
    latency: Mutex<LatencyAgg>,
    /// Optional span sink: when set, each worker records a request-level
    /// span per served job on its own track.
    trace: Option<Arc<TraceSink>>,
    queue_capacity: usize,
    /// Configured worker count (stable across shutdown, unlike the join
    /// handle vector).
    worker_count: usize,
    started: Instant,
    /// Per-request deadline stamped into each submission's token at enqueue.
    deadline: Option<Duration>,
    /// Whether admission control sheds provably-infeasible submissions.
    shed_infeasible: bool,
    /// Optional fault plan submission paths and workers consult.
    faults: Option<FaultPlan>,
    /// Resilience counter sink, shared with the caller when injected.
    resilience: Arc<ResilienceStats>,
}

/// A persistent request-serving engine: a bounded queue plus a pool of
/// long-lived worker threads draining it through one shared handler.
///
/// `submit` gives back-pressure on a bounded queue, per-request
/// [`RequestHandle`]s pair each submission with its own result, and
/// [`ServingStats`] track queue depth and throughput. Dropping an engine
/// shuts it down gracefully (drains queued work, joins workers); call
/// [`ServingEngine::shutdown`] explicitly to also retrieve the final stats.
pub struct ServingEngine<T, R> {
    shared: Arc<Shared<T, R>>,
    workers: Vec<JoinHandle<()>>,
}

impl<T, R> std::fmt::Debug for ServingEngine<T, R> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ServingEngine")
            .field("workers", &self.workers.len())
            .field("queue_capacity", &self.shared.queue_capacity)
            .finish_non_exhaustive()
    }
}

impl<T: Send + 'static, R: Send + 'static> ServingEngine<T, R> {
    /// Starts an engine: spawns `config.workers` persistent threads that
    /// drain the queue through `handler` (called with the request id and the
    /// request).
    pub fn new<F>(config: ServingConfig, handler: F) -> Self
    where
        F: Fn(u64, T) -> R + Send + Sync + 'static,
    {
        Self::with_scheduler_metrics(config, Arc::new(SchedulerMetrics::default()), handler)
    }

    /// Like [`ServingEngine::new`], with an externally created
    /// [`SchedulerMetrics`] sink: the caller keeps a clone of the `Arc`
    /// inside `handler` and records each request's scheduler figures, and
    /// [`ServingEngine::stats`] folds the aggregate into
    /// [`ServingStats::scheduler`]. (The handler is constructed before the
    /// engine exists, so the sink cannot be handed out afterwards.)
    pub fn with_scheduler_metrics<F>(
        config: ServingConfig,
        scheduler: Arc<SchedulerMetrics>,
        handler: F,
    ) -> Self
    where
        F: Fn(u64, T) -> R + Send + Sync + 'static,
    {
        Self::with_telemetry(config, scheduler, None, handler)
    }

    /// The full-telemetry constructor: like
    /// [`ServingEngine::with_scheduler_metrics`], plus an optional
    /// [`TraceSink`] — when set, every worker records a request-level span
    /// per served job (on its own trace track, with the request's queue
    /// wait attached), and the handler typically threads the same sink into
    /// the executors for instruction-level spans.
    pub fn with_telemetry<F>(
        config: ServingConfig,
        scheduler: Arc<SchedulerMetrics>,
        trace: Option<Arc<TraceSink>>,
        handler: F,
    ) -> Self
    where
        F: Fn(u64, T) -> R + Send + Sync + 'static,
    {
        Self::with_resilience(
            config,
            scheduler,
            trace,
            Arc::new(ResilienceStats::default()),
            move |id, request, _token| handler(id, request),
        )
    }

    /// The resilience-aware constructor the FHE serving path uses: the
    /// handler additionally receives the request's [`CancellationToken`]
    /// (stamped with the configured deadline at enqueue), so it can thread
    /// the token into the executors and stop a cancelled or expired request
    /// mid-flight; `resilience` is an externally shared counter sink (one
    /// per session, mirrored into Prometheus counters by the caller).
    pub fn with_resilience<F>(
        config: ServingConfig,
        scheduler: Arc<SchedulerMetrics>,
        trace: Option<Arc<TraceSink>>,
        resilience: Arc<ResilienceStats>,
        handler: F,
    ) -> Self
    where
        F: Fn(u64, T, &CancellationToken) -> R + Send + Sync + 'static,
    {
        let shared = Arc::new(Shared {
            state: Mutex::new(QueueState {
                queue: VecDeque::new(),
                shutting_down: false,
                submitted: 0,
                in_flight: 0,
            }),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
            counters: Mutex::new(Counters {
                completed: 0,
                busy: Duration::ZERO,
            }),
            scheduler,
            latency: Mutex::new(LatencyAgg::default()),
            trace,
            queue_capacity: config.queue_capacity.max(1),
            worker_count: config.workers.max(1),
            started: Instant::now(),
            deadline: config.deadline,
            shed_infeasible: config.shed_infeasible,
            faults: config.faults,
            resilience,
        });
        let handler = Arc::new(handler);
        let workers = (0..shared.worker_count)
            .map(|worker| {
                let shared = Arc::clone(&shared);
                let handler = Arc::clone(&handler);
                std::thread::spawn(move || worker_loop(&shared, worker, &*handler))
            })
            .collect();
        ServingEngine { shared, workers }
    }
}

impl<T, R> ServingEngine<T, R> {
    /// Admission-control check: `true` when the configured deadline is
    /// provably infeasible at the given queue depth — the projected
    /// completion time (the measured mean request wall times the queue
    /// slots ahead of this request per worker) already exceeds the
    /// deadline. Conservative by construction: with no completed request
    /// yet there is no calibration, and nothing is shed.
    fn infeasible(&self, queue_depth: usize) -> bool {
        if !self.shared.shed_infeasible {
            return false;
        }
        let Some(deadline) = self.shared.deadline else {
            return false;
        };
        let mean = {
            let latency = self.shared.latency.lock().unwrap();
            latency.request_wall.mean()
        };
        let Some(mean) = mean else {
            return false;
        };
        let workers = self.shared.worker_count.max(1) as f64;
        let slots_ahead = (queue_depth + 1) as f64;
        let projected = mean.mul_f64((slots_ahead / workers).ceil().max(1.0));
        projected > deadline
    }

    /// Enqueues one request and returns its handle.
    ///
    /// Blocks while the queue is at capacity (back-pressure on producers).
    ///
    /// # Errors
    ///
    /// Returns [`ServingError::ShutDown`] once [`ServingEngine::shutdown`]
    /// has started — including for submitters that were blocked on a full
    /// queue when shutdown began. Returns [`ServingError::Shed`] (and bumps
    /// the shed counter) when admission control proves the configured
    /// deadline infeasible at the current backlog (see
    /// [`ServingConfig::shed_infeasible`]).
    pub fn submit(&self, request: T) -> Result<RequestHandle<R>, ServingError> {
        let mut state = self.shared.state.lock().unwrap();
        loop {
            if state.shutting_down {
                return Err(ServingError::ShutDown);
            }
            if state.queue.len() < self.shared.queue_capacity {
                break;
            }
            state = self.shared.not_full.wait(state).unwrap();
        }
        if self.infeasible(state.queue.len()) {
            self.shared.resilience.note_shed();
            return Err(ServingError::Shed);
        }
        Ok(self.enqueue(state, request))
    }

    /// Enqueues one request without ever blocking: where
    /// [`ServingEngine::submit`] would wait on a full queue, this hands the
    /// request straight back as [`TrySubmitError::QueueFull`], so overload
    /// policy (retry, shed, divert) stays with the caller.
    ///
    /// # Errors
    ///
    /// [`TrySubmitError::ShutDown`] once shutdown has started,
    /// [`TrySubmitError::QueueFull`] while the queue is at capacity (or a
    /// fault plan forces the rejection), [`TrySubmitError::Shed`] when
    /// admission control proves the deadline infeasible; all three return
    /// the request to the caller.
    pub fn try_submit(&self, request: T) -> Result<RequestHandle<R>, TrySubmitError<T>> {
        if let Some(plan) = &self.shared.faults {
            if plan.take_forced_queue_full() {
                return Err(TrySubmitError::QueueFull(request));
            }
        }
        let state = self.shared.state.lock().unwrap();
        if state.shutting_down {
            return Err(TrySubmitError::ShutDown(request));
        }
        if state.queue.len() >= self.shared.queue_capacity {
            return Err(TrySubmitError::QueueFull(request));
        }
        if self.infeasible(state.queue.len()) {
            self.shared.resilience.note_shed();
            return Err(TrySubmitError::Shed(request));
        }
        Ok(self.enqueue(state, request))
    }

    /// [`ServingEngine::try_submit`] with bounded retry-with-backoff on the
    /// transient [`TrySubmitError::QueueFull`] rejection: sleeps `backoff`,
    /// doubling per attempt, for up to `attempts` total submissions.
    /// Terminal rejections (shutdown, shed) and the final queue-full are
    /// returned immediately — only transient overload is retried.
    pub fn submit_with_retry(
        &self,
        request: T,
        attempts: usize,
        backoff: Duration,
    ) -> Result<RequestHandle<R>, TrySubmitError<T>> {
        let mut request = request;
        let mut delay = backoff;
        let attempts = attempts.max(1);
        for attempt in 1..=attempts {
            match self.try_submit(request) {
                Ok(handle) => return Ok(handle),
                Err(TrySubmitError::QueueFull(returned)) if attempt < attempts => {
                    request = returned;
                    std::thread::sleep(delay);
                    delay = delay.saturating_mul(2);
                }
                Err(error) => return Err(error),
            }
        }
        unreachable!("the final attempt either returned a handle or an error")
    }

    /// The shared tail of both submission paths: assigns the id, mints the
    /// handle pair and its deadline-stamped cancellation token, enqueues
    /// the job, and wakes one worker. The caller has already established
    /// that the queue has room and intake is open.
    fn enqueue(
        &self,
        mut state: std::sync::MutexGuard<'_, QueueState<T, R>>,
        request: T,
    ) -> RequestHandle<R> {
        let id = state.submitted;
        state.submitted += 1;
        let handle = HandleShared::new();
        let token = match self.shared.deadline {
            Some(deadline) => CancellationToken::deadline_in(deadline),
            None => CancellationToken::new(),
        };
        state.queue.push_back(Job {
            id,
            request,
            handle: Arc::clone(&handle),
            token: token.clone(),
            enqueued: Instant::now(),
        });
        drop(state);
        self.shared.not_empty.notify_one();
        RequestHandle::from_shared(id, handle, token)
    }

    /// A point-in-time snapshot of the engine's serving counters.
    pub fn stats(&self) -> ServingStats {
        // Both counters are monotone, so reading `completed` strictly before
        // `submitted` keeps the snapshot consistent (`completed <=
        // submitted`) without holding both locks at once.
        let counters = self.shared.counters.lock().unwrap();
        let (completed, busy) = (counters.completed, counters.busy);
        drop(counters);
        let latency = {
            let agg = self.shared.latency.lock().unwrap();
            LatencySnapshot {
                request_wall: agg.request_wall.clone(),
                queue_wait: agg.queue_wait.clone(),
                per_op: self.shared.scheduler.per_op_histograms(),
                per_outcome: agg.per_outcome(),
            }
        };
        let state = self.shared.state.lock().unwrap();
        ServingStats {
            submitted: state.submitted,
            completed,
            queue_depth: state.queue.len(),
            in_flight: state.in_flight,
            workers: self.shared.worker_count,
            busy,
            elapsed: self.shared.started.elapsed(),
            scheduler: self.shared.scheduler.snapshot(),
            latency,
            resilience: self.shared.resilience.snapshot(),
        }
    }

    /// The engine's resilience counter sink (the same one passed to
    /// [`ServingEngine::with_resilience`], or a private sink for engines
    /// built with the other constructors).
    pub fn resilience_stats(&self) -> &Arc<ResilienceStats> {
        &self.shared.resilience
    }

    /// The engine's scheduler-counter sink (the same one passed to
    /// [`ServingEngine::with_scheduler_metrics`], or a private unused sink
    /// for engines built with [`ServingEngine::new`]).
    pub fn scheduler_metrics(&self) -> &Arc<SchedulerMetrics> {
        &self.shared.scheduler
    }

    /// Stops intake, drains every already-queued request, joins the workers
    /// and returns the final stats. Requests submitted before the call are
    /// all completed; concurrent submitters receive
    /// [`ServingError::ShutDown`].
    pub fn shutdown(mut self) -> ServingStats {
        self.halt();
        self.stats()
    }

    /// Idempotent part of shutdown: flips the flag, wakes everyone, joins,
    /// then resolves any handle that can no longer complete. A job still
    /// queued after every worker has exited (possible only when workers
    /// died) would leave its waiter blocked forever — disconnect it so
    /// retrieval reports [`RequestError::Abandoned`] instead.
    fn halt(&mut self) {
        self.shared.state.lock().unwrap().shutting_down = true;
        self.shared.not_empty.notify_all();
        self.shared.not_full.notify_all();
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
        let mut state = self
            .shared
            .state
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        while let Some(job) = state.queue.pop_front() {
            job.handle.disconnect();
        }
    }
}

impl<T, R> Drop for ServingEngine<T, R> {
    fn drop(&mut self) {
        self.halt();
    }
}

/// RAII companion of one in-flight job: if the worker thread dies between
/// popping the job and fulfilling its handle (a planned worker kill, or a
/// genuine panic in the engine's own bookkeeping), the guard's drop runs
/// during the unwind and disconnects the handle — the waiter gets
/// [`RequestError::Abandoned`] instead of blocking forever — and repairs the
/// in-flight count so stats stay truthful.
struct FulfillGuard<'a, T, R> {
    shared: &'a Shared<T, R>,
    handle: Arc<HandleShared<R>>,
    armed: bool,
}

impl<T, R> FulfillGuard<'_, T, R> {
    fn disarm(mut self) {
        self.armed = false;
    }
}

impl<T, R> Drop for FulfillGuard<'_, T, R> {
    fn drop(&mut self) {
        if !self.armed {
            return;
        }
        self.handle.disconnect();
        let mut state = self
            .shared
            .state
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        state.in_flight = state.in_flight.saturating_sub(1);
        drop(state);
        self.shared.resilience.note_worker_panic();
    }
}

/// One worker: pop-execute-publish until shutdown *and* an empty queue.
fn worker_loop<T, R>(
    shared: &Shared<T, R>,
    worker: usize,
    handler: &(dyn Fn(u64, T, &CancellationToken) -> R + Send + Sync),
) {
    // Trace track of this serving worker, allocated on its first served job
    // so idle workers leave no empty tracks in the export.
    let mut track: Option<usize> = None;
    loop {
        let job = {
            let mut state = shared.state.lock().unwrap();
            loop {
                if let Some(job) = state.queue.pop_front() {
                    state.in_flight += 1;
                    break job;
                }
                if state.shutting_down {
                    return;
                }
                state = shared.not_empty.wait(state).unwrap();
            }
        };
        shared.not_full.notify_one();

        let Job {
            id,
            request,
            handle,
            token,
            enqueued,
        } = job;
        // From here to `disarm` the job is this worker's responsibility: if
        // the thread dies, the guard resolves the handle as abandoned.
        let guard = FulfillGuard {
            shared,
            handle: Arc::clone(&handle),
            armed: true,
        };
        if let Some(plan) = &shared.faults {
            if plan.take_worker_kill() {
                panic!("injected fault: serving worker {worker} killed");
            }
        }
        let queue_wait = enqueued.elapsed();
        let started = Instant::now();
        // A panicking handler must not kill the worker (the queue behind it
        // would never drain) nor leave its waiter blocked forever: catch the
        // unwind, poison the result slot, and let retrievers re-raise it.
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            handler(id, request, &token)
        }));
        let elapsed = started.elapsed();
        // Classify the outcome while it is fresh: the token states are read
        // immediately after the handler returns, so a deadline that expires
        // later (while the result sits unretrieved) is not miscounted.
        let panicked = result.is_err();
        let was_cancelled = token.is_cancelled();
        let deadline_expired = token.deadline_expired();

        // Book-keeping first: a waiter woken by the notify below must
        // already observe this request in the counters when it calls
        // `stats()`.
        shared.state.lock().unwrap().in_flight -= 1;
        {
            let mut counters = shared.counters.lock().unwrap();
            counters.completed += 1;
            counters.busy += elapsed;
        }
        {
            let mut latency = shared.latency.lock().unwrap();
            latency.request_wall.record(elapsed);
            latency.queue_wait.record(queue_wait);
            let outcome = if panicked {
                &mut latency.panicked
            } else if was_cancelled {
                &mut latency.cancelled
            } else if deadline_expired {
                &mut latency.deadline_missed
            } else {
                &mut latency.ok
            };
            outcome.record(elapsed);
        }
        if panicked {
            shared.resilience.note_worker_panic();
        } else if was_cancelled {
            shared.resilience.note_cancelled();
        } else if deadline_expired {
            shared.resilience.note_deadline_missed();
        }
        if let Some(sink) = shared.trace.as_deref() {
            let track = *track
                .get_or_insert_with(|| sink.allocate_track(format!("serving worker {worker}")));
            sink.push(SpanEvent {
                name: "request",
                cat: "request",
                track,
                start_ns: sink.offset_ns(started),
                dur_ns: u64::try_from(elapsed.as_nanos()).unwrap_or(u64::MAX),
                instr: None,
                queue_wait_ns: Some(u64::try_from(queue_wait.as_nanos()).unwrap_or(u64::MAX)),
                grant: None,
                stolen_from: None,
            });
        }

        handle.fulfill(result.ok());
        guard.disarm();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    fn engine_with<F, T, R>(workers: usize, capacity: usize, handler: F) -> ServingEngine<T, R>
    where
        F: Fn(u64, T) -> R + Send + Sync + 'static,
        T: Send + 'static,
        R: Send + 'static,
    {
        ServingEngine::new(ServingConfig::sized(workers, capacity), handler)
    }

    #[test]
    fn handles_return_their_own_request_despite_out_of_order_completion() {
        // Earlier submissions sleep longer, so with 4 workers the completion
        // order inverts the submission order — handles must still pair each
        // submission with its own result.
        let completion_order = Arc::new(Mutex::new(Vec::new()));
        let order = Arc::clone(&completion_order);
        let engine = engine_with(4, 16, move |id, sleep_ms: u64| {
            std::thread::sleep(Duration::from_millis(sleep_ms));
            order.lock().unwrap().push(id);
            (id, sleep_ms * 2)
        });
        let handles: Vec<_> = (0..4)
            .map(|i| engine.submit((4 - i) * 40).unwrap())
            .collect();
        for (i, handle) in handles.into_iter().enumerate() {
            assert_eq!(handle.id(), i as u64);
            assert_eq!(handle.wait(), (i as u64, (4 - i as u64) * 40 * 2));
        }
        let order = completion_order.lock().unwrap();
        assert_eq!(order.len(), 4);
        // On a multi-core host the sleeps force inversion; on a single-core
        // host thread preemption still runs all four concurrently.
        drop(order);
        engine.shutdown();
    }

    #[test]
    fn shutdown_drains_queued_work() {
        let executed = Arc::new(AtomicUsize::new(0));
        let counter = Arc::clone(&executed);
        let engine = engine_with(2, 64, move |_, ()| {
            std::thread::sleep(Duration::from_millis(5));
            counter.fetch_add(1, Ordering::Relaxed);
        });
        let handles: Vec<_> = (0..20).map(|_| engine.submit(()).unwrap()).collect();
        let stats = engine.shutdown();
        assert_eq!(stats.submitted, 20);
        assert_eq!(stats.completed, 20);
        assert_eq!(stats.queue_depth, 0);
        assert_eq!(stats.in_flight, 0);
        assert_eq!(executed.load(Ordering::Relaxed), 20);
        assert!(stats.busy >= Duration::from_millis(20 * 5 / 2));
        assert!(stats.throughput_rps() > 0.0);
        assert!(stats.mean_latency().unwrap() >= Duration::from_millis(5));
        for handle in handles {
            assert!(handle.is_finished());
            assert!(handle.try_poll().is_some());
        }
    }

    #[test]
    fn submission_after_shutdown_is_rejected() {
        let engine: ServingEngine<u32, u32> = engine_with(1, 4, |_, v| v);
        let handle = engine.submit(7).unwrap();
        assert_eq!(handle.wait(), 7);
        // Shutdown via an aliased engine reference is not possible (it takes
        // self), so exercise the error through a second engine.
        let stats = engine.shutdown();
        assert_eq!(stats.completed, 1);

        let engine: ServingEngine<u32, u32> = engine_with(1, 4, |_, v| v);
        drop(engine.submit(1).unwrap());
        let mut engine = engine;
        engine.halt();
        assert_eq!(engine.submit(2).unwrap_err(), ServingError::ShutDown);
    }

    #[test]
    fn try_poll_is_none_until_completion_and_after_taking() {
        let engine = engine_with(1, 4, |_, ms: u64| {
            std::thread::sleep(Duration::from_millis(ms));
            ms
        });
        let slow = engine.submit(100).unwrap();
        let queued = engine.submit(1).unwrap();
        // The single worker is busy with the slow request, so the queued one
        // cannot have completed yet.
        assert!(queued.try_poll().is_none());
        assert_eq!(queued.wait(), 1);
        let polled = loop {
            if let Some(v) = slow.try_poll() {
                break v;
            }
            std::thread::sleep(Duration::from_millis(1));
        };
        assert_eq!(polled, 100);
        assert!(slow.try_poll().is_none(), "result is single-shot");
        engine.shutdown();
    }

    #[test]
    fn bounded_queue_applies_backpressure() {
        let gate = Arc::new(Mutex::new(()));
        let guard = gate.lock().unwrap();
        let handler_gate = Arc::clone(&gate);
        let engine = engine_with(1, 2, move |_, ()| {
            drop(handler_gate.lock().unwrap());
        });
        // Worker takes one job and blocks on the gate; two more fill the
        // bounded queue.
        for _ in 0..3 {
            engine.submit(()).unwrap();
        }
        std::thread::sleep(Duration::from_millis(20));
        let stats = engine.stats();
        assert_eq!(stats.queue_depth, 2, "queue holds exactly its capacity");
        assert_eq!(stats.in_flight, 1);
        drop(guard);
        let stats = engine.shutdown();
        assert_eq!(stats.completed, 3);
    }

    #[test]
    fn try_submit_returns_the_request_instead_of_blocking() {
        let gate = Arc::new(Mutex::new(()));
        let guard = gate.lock().unwrap();
        let handler_gate = Arc::clone(&gate);
        let engine = engine_with(1, 1, move |_, v: u32| {
            drop(handler_gate.lock().unwrap());
            v * 10
        });
        // The worker picks up the first job and blocks on the gate; the
        // second fills the queue to its capacity of one.
        let first = engine.submit(1).unwrap();
        // The worker may not have dequeued the first job yet, so make room
        // deterministically: spin until the queue has drained to the worker.
        while engine.stats().queue_depth > 0 {
            std::thread::sleep(Duration::from_millis(1));
        }
        let second = engine.try_submit(2).expect("queue has room");
        // Queue full now: the rejection carries the request back unchanged.
        let rejected = engine.try_submit(3).expect_err("queue is at capacity");
        assert!(rejected.is_queue_full());
        assert_eq!(rejected, TrySubmitError::QueueFull(3));
        assert_eq!(rejected.into_request(), 3);
        drop(guard);
        assert_eq!(first.wait(), 10);
        assert_eq!(second.wait(), 20);
        let mut engine = engine;
        engine.halt();
        assert_eq!(
            engine.try_submit(4).unwrap_err(),
            TrySubmitError::ShutDown(4)
        );
    }

    #[test]
    fn handler_panic_poisons_only_its_own_request() {
        let engine = engine_with(1, 8, |_, v: u32| {
            assert!(v != 13, "unlucky request");
            v * 2
        });
        let bad = engine.submit(13).unwrap();
        let good = engine.submit(4).unwrap();
        // The worker survives the panic and drains the rest of the queue.
        assert_eq!(good.wait(), 8);
        assert!(bad.is_finished());
        // Every retrieval attempt re-raises the handler panic with the
        // intended message, and a panicking accessor does not wedge the
        // handle for later ones (no std mutex poisoning leaks through).
        for _ in 0..2 {
            let reraised =
                std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| bad.try_poll()));
            let message = *reraised
                .expect_err("polling a panicked request re-raises")
                .downcast::<String>()
                .expect("panic message is a string");
            assert!(message.contains("panicked in its handler"), "{message}");
            assert!(bad.is_finished());
        }
        let reraised = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| bad.wait()));
        assert!(reraised.is_err(), "waiting on a panicked request re-raises");
        let stats = engine.shutdown();
        assert_eq!(stats.completed, 2);
        assert_eq!(stats.in_flight, 0);
    }

    #[test]
    fn scheduler_metrics_aggregate_into_stats() {
        let metrics = Arc::new(SchedulerMetrics::default());
        let sink = Arc::clone(&metrics);
        let engine: ServingEngine<u64, u64> = ServingEngine::with_scheduler_metrics(
            ServingConfig::sized(2, 8),
            Arc::clone(&metrics),
            move |_, v| {
                // A handler that executed through the dataflow runtime
                // records its request's scheduler figures.
                sink.record(
                    v,
                    Duration::from_millis(v),
                    &[Duration::from_micros(10 * v), Duration::from_micros(30 * v)],
                );
                v
            },
        );
        let handles: Vec<_> = (1..=4).map(|v| engine.submit(v).unwrap()).collect();
        for (i, handle) in handles.into_iter().enumerate() {
            assert_eq!(handle.wait(), i as u64 + 1);
        }
        let stats = engine.stats();
        assert_eq!(stats.scheduler.requests, 4);
        assert_eq!(stats.scheduler.steals, 1 + 2 + 3 + 4);
        assert_eq!(stats.scheduler.reclaimed_slack, Duration::from_millis(10));
        assert_eq!(
            stats.scheduler.reclaimed_slack_per_request(),
            Some(Duration::from_micros(2500))
        );
        // Samples: 10,20,30,40 and 30,60,90,120 micros; p50 of the sorted
        // merge [10,20,30,30,40,60,90,120] sits at rank 4 (rounded midpoint).
        let p50 = stats.scheduler.queue_wait_p50.unwrap();
        assert!(p50 >= Duration::from_micros(30) && p50 <= Duration::from_micros(40));
        assert_eq!(
            stats.scheduler.queue_wait_p95,
            Some(Duration::from_micros(120))
        );
        assert!(Arc::ptr_eq(engine.scheduler_metrics(), &metrics));
        engine.shutdown();

        // Engines built without an external sink report zeroed counters.
        let plain: ServingEngine<u32, u32> = engine_with(1, 4, |_, v| v);
        plain.submit(1).unwrap().wait();
        assert_eq!(plain.stats().scheduler, SchedulerStatsSnapshot::default());
        plain.shutdown();
    }

    #[test]
    fn stats_snapshot_while_serving() {
        let engine = engine_with(2, 8, |_, v: u64| v + 1);
        let handles: Vec<_> = (0..10).map(|v| engine.submit(v).unwrap()).collect();
        let results: Vec<u64> = handles.into_iter().map(RequestHandle::wait).collect();
        assert_eq!(results, (1..=10).collect::<Vec<_>>());
        let stats = engine.stats();
        assert_eq!(stats.submitted, 10);
        assert_eq!(stats.completed, 10);
        assert_eq!(stats.workers, 2);
        engine.shutdown();
    }

    #[test]
    fn cancelled_and_expired_requests_are_classified_per_outcome() {
        use crate::faults::CancellationToken;
        let config = ServingConfig {
            deadline: Some(Duration::from_millis(5)),
            ..ServingConfig::sized(1, 8)
        };
        // A token-aware handler: reports how the token looked when it ran.
        let engine: ServingEngine<u64, &'static str> = ServingEngine::with_resilience(
            config,
            Arc::new(SchedulerMetrics::default()),
            None,
            Arc::new(ResilienceStats::default()),
            |_, sleep_ms, token: &CancellationToken| {
                std::thread::sleep(Duration::from_millis(sleep_ms));
                if token.is_cancelled() {
                    "cancelled"
                } else if token.deadline_expired() {
                    "expired"
                } else {
                    "ok"
                }
            },
        );
        let fast = engine.submit(0).unwrap();
        assert_eq!(fast.wait(), "ok");
        let slow = engine.submit(20).unwrap();
        assert_eq!(slow.wait(), "expired");
        let doomed = engine.submit(1).unwrap();
        doomed.cancel();
        assert!(doomed.cancellation_token().is_cancelled());
        assert_eq!(doomed.wait(), "cancelled");
        let stats = engine.shutdown();
        assert_eq!(stats.resilience.cancelled, 1);
        assert_eq!(stats.resilience.deadline_missed, 1);
        assert_eq!(stats.resilience.worker_panics, 0);
        let outcome = |label: &str| {
            stats
                .latency
                .per_outcome
                .iter()
                .find(|(l, _)| l == label)
                .map(|(_, h)| h.count())
                .unwrap()
        };
        assert_eq!(outcome("ok"), 1);
        assert_eq!(outcome("cancelled"), 1);
        assert_eq!(outcome("deadline_missed"), 1);
        assert_eq!(outcome("panicked"), 0);
    }

    #[test]
    fn infeasible_deadlines_are_shed_once_calibrated() {
        let config = ServingConfig {
            deadline: Some(Duration::from_millis(1)),
            shed_infeasible: true,
            ..ServingConfig::sized(1, 16)
        };
        let engine = ServingEngine::new(config, |_, slow: bool| {
            if slow {
                std::thread::sleep(Duration::from_millis(50));
            }
        });
        // No calibration yet: the first (slow) request is admitted even
        // though it is doomed to miss its 1ms deadline.
        let calibrating = engine.submit(true).unwrap();
        calibrating.wait();
        // One ~50ms sample against a 1ms deadline: every further
        // submission is provably infeasible, even at queue depth zero.
        assert_eq!(engine.submit(false).unwrap_err(), ServingError::Shed);
        let rejected = engine.try_submit(false).unwrap_err();
        assert!(rejected.is_shed());
        assert!(!rejected.is_queue_full());
        assert!(!rejected.into_request());
        let stats = engine.shutdown();
        assert_eq!(stats.resilience.shed, 2);
        assert_eq!(stats.completed, 1);
    }

    #[test]
    fn submit_with_retry_rides_out_transient_queue_full() {
        let plan = FaultPlan::new();
        plan.force_queue_full(2);
        let config = ServingConfig {
            faults: Some(plan.clone()),
            ..ServingConfig::sized(1, 4)
        };
        let engine = ServingEngine::new(config, |_, v: u32| v * 2);
        // Two forced rejections, then the real (empty) queue admits it.
        let handle = engine
            .submit_with_retry(21, 5, Duration::from_millis(1))
            .expect("retries outlast the forced rejections");
        assert_eq!(handle.wait(), 42);
        // With a budget longer than the attempts, the last rejection is
        // returned to the caller.
        plan.force_queue_full(10);
        let rejected = engine
            .submit_with_retry(1, 2, Duration::from_millis(1))
            .unwrap_err();
        assert!(rejected.is_queue_full());
        engine.shutdown();
    }

    #[test]
    fn dead_workers_abandon_their_jobs_instead_of_hanging_waiters() {
        let plan = FaultPlan::new();
        plan.kill_workers(1);
        let config = ServingConfig {
            faults: Some(plan.clone()),
            ..ServingConfig::sized(1, 8)
        };
        let engine = ServingEngine::new(config, |_, v: u32| v + 1);
        // The lone worker draws the kill on the first job: its waiter must
        // resolve as abandoned, not block forever.
        let doomed = engine.submit(1).unwrap();
        assert_eq!(doomed.try_wait(), Err(RequestError::Abandoned));
        // A second job sits queued behind a dead pool; halt() disconnects
        // it so its waiter resolves too.
        let stranded = engine.submit(2).unwrap();
        assert!(!stranded.is_finished() || stranded.is_finished()); // queued or already swept
        let stats = engine.shutdown();
        assert!(stats.resilience.worker_panics >= 1);
        assert_eq!(stranded.try_wait(), Err(RequestError::Abandoned));
    }

    #[test]
    fn waiting_on_an_abandoned_request_panics_with_the_abandoned_message() {
        let plan = FaultPlan::new();
        plan.kill_workers(1);
        let config = ServingConfig {
            faults: Some(plan),
            ..ServingConfig::sized(1, 8)
        };
        let engine = ServingEngine::new(config, |_, v: u32| v);
        let doomed = engine.submit(7).unwrap();
        // Spin until the worker has died with the job.
        while !doomed.is_finished() {
            std::thread::sleep(Duration::from_millis(1));
        }
        let raised = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| doomed.wait()));
        let message = *raised
            .expect_err("waiting on an abandoned request panics")
            .downcast::<String>()
            .expect("panic message is a string");
        assert!(message.contains("abandoned"), "{message}");
        engine.shutdown();
    }
}
