//! # chehab-trs
//!
//! The term rewriting system of the CHEHAB FHE compiler (Appendix E of
//! *CHEHAB RL: Learning to Optimize Fully Homomorphic Encryption
//! Computations*): a pattern language with metavariables, a catalog of 84+
//! vectorization / simplification / balancing / rotation rules, and a rewrite
//! engine that enumerates match locations and applies rules at chosen sites.
//!
//! The ordered rule catalog doubles as the action space of the CHEHAB RL
//! agent; the engine's greedy best-improvement optimizer is the original
//! (non-RL) CHEHAB baseline used in the Figure 12 ablation.
//!
//! ## Example
//!
//! ```
//! use chehab_ir::{parse, count_ops, CostModel};
//! use chehab_trs::RewriteEngine;
//!
//! let engine = RewriteEngine::new();
//! let scalar = parse("(Vec (+ a b) (+ c d))").unwrap();
//! let rule = engine.rule_index("add-vectorize-2").unwrap();
//! let vectorized = engine.apply_at_occurrence(&scalar, rule, 0).unwrap();
//! assert_eq!(count_ops(&vectorized).scalar_ciphertext_ops(), 0);
//! assert!(CostModel::default().cost(&vectorized) < CostModel::default().cost(&scalar));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod catalog;
mod engine;
mod pattern;
mod rule;

pub use catalog::default_catalog;
pub use engine::{Match, RewriteEngine};
pub use pattern::{parse_pattern, Bindings, Pattern};
pub use rule::{Placement, Rule, RuleCategory};
