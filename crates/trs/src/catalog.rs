//! The rewrite-rule catalog: the action space of the CHEHAB RL agent.
//!
//! The catalog mirrors Appendix E of the paper. Rules fall into five groups:
//! algebraic transformations (commutativity, associativity, distribution),
//! simplifications (identities, factorization, plaintext consolidation),
//! tree balancing, vectorization of isomorphic and non-isomorphic
//! subexpressions, and rotation rules (including composite reduction
//! patterns). The catalog is ordered and stable: the index of a rule is the
//! id of the corresponding RL action.

use crate::rule::{Rule, RuleCategory};
use chehab_ir::{BinOp, Expr};

/// Builds the full, ordered rule catalog used by CHEHAB RL.
///
/// The catalog always contains at least 84 rules (the count reported by the
/// paper); the exact number is available as `default_catalog().len()`.
pub fn default_catalog() -> Vec<Rule> {
    let mut rules = Vec::with_capacity(96);
    scalar_transformations(&mut rules);
    scalar_simplifications(&mut rules);
    scalar_balancing(&mut rules);
    vector_algebra(&mut rules);
    vector_balancing(&mut rules);
    isomorphic_vectorization(&mut rules);
    procedural_vectorization(&mut rules);
    rotation_rules(&mut rules);
    folding_rules(&mut rules);
    rules
}

fn r(rules: &mut Vec<Rule>, name: &str, cat: RuleCategory, lhs: &str, rhs: &str) {
    rules.push(Rule::rewrite(name, cat, lhs, rhs));
}

fn scalar_transformations(rules: &mut Vec<Rule>) {
    use RuleCategory::Transformation as T;
    r(rules, "add-comm", T, "(+ ?a ?b)", "(+ ?b ?a)");
    r(rules, "mul-comm", T, "(* ?a ?b)", "(* ?b ?a)");
    r(
        rules,
        "add-assoc-left",
        T,
        "(+ ?a (+ ?b ?c))",
        "(+ (+ ?a ?b) ?c)",
    );
    r(
        rules,
        "add-assoc-right",
        T,
        "(+ (+ ?a ?b) ?c)",
        "(+ ?a (+ ?b ?c))",
    );
    r(
        rules,
        "mul-assoc-left",
        T,
        "(* ?a (* ?b ?c))",
        "(* (* ?a ?b) ?c)",
    );
    r(
        rules,
        "mul-assoc-right",
        T,
        "(* (* ?a ?b) ?c)",
        "(* ?a (* ?b ?c))",
    );
    r(
        rules,
        "distribute-left",
        T,
        "(* ?a (+ ?b ?c))",
        "(+ (* ?a ?b) (* ?a ?c))",
    );
    r(
        rules,
        "distribute-right",
        T,
        "(* (+ ?a ?b) ?c)",
        "(+ (* ?a ?c) (* ?b ?c))",
    );
    r(
        rules,
        "sub-distribute-left",
        T,
        "(* ?a (- ?b ?c))",
        "(- (* ?a ?b) (* ?a ?c))",
    );
    r(
        rules,
        "sub-distribute-right",
        T,
        "(* (- ?a ?b) ?c)",
        "(- (* ?a ?c) (* ?b ?c))",
    );
    r(rules, "sub-to-add-neg", T, "(- ?a ?b)", "(+ ?a (- ?b))");
    r(rules, "add-neg-to-sub", T, "(+ ?a (- ?b))", "(- ?a ?b)");
    r(
        rules,
        "neg-distribute-add",
        T,
        "(- (+ ?a ?b))",
        "(+ (- ?a) (- ?b))",
    );
    r(
        rules,
        "neg-collect-add",
        T,
        "(+ (- ?a) (- ?b))",
        "(- (+ ?a ?b))",
    );
    r(rules, "neg-mul-left", T, "(* (- ?a) ?b)", "(- (* ?a ?b))");
    r(rules, "neg-mul-right", T, "(* ?a (- ?b))", "(- (* ?a ?b))");
}

fn scalar_simplifications(rules: &mut Vec<Rule>) {
    use RuleCategory::Simplification as S;
    r(
        rules,
        "factor-left",
        S,
        "(+ (* ?a ?b) (* ?a ?c))",
        "(* ?a (+ ?b ?c))",
    );
    r(
        rules,
        "factor-right",
        S,
        "(+ (* ?b ?a) (* ?c ?a))",
        "(* (+ ?b ?c) ?a)",
    );
    r(
        rules,
        "factor-mixed-1",
        S,
        "(+ (* ?a ?b) (* ?c ?a))",
        "(* ?a (+ ?b ?c))",
    );
    r(
        rules,
        "factor-mixed-2",
        S,
        "(+ (* ?b ?a) (* ?a ?c))",
        "(* ?a (+ ?b ?c))",
    );
    r(
        rules,
        "sub-factor-left",
        S,
        "(- (* ?a ?b) (* ?a ?c))",
        "(* ?a (- ?b ?c))",
    );
    r(
        rules,
        "sub-factor-right",
        S,
        "(- (* ?b ?a) (* ?c ?a))",
        "(* (- ?b ?c) ?a)",
    );
    r(rules, "mul-one", S, "(* ?a 1)", "?a");
    r(rules, "one-mul", S, "(* 1 ?a)", "?a");
    r(rules, "mul-zero", S, "(* ?a 0)", "0");
    r(rules, "zero-mul", S, "(* 0 ?a)", "0");
    r(rules, "add-zero", S, "(+ ?a 0)", "?a");
    r(rules, "zero-add", S, "(+ 0 ?a)", "?a");
    r(rules, "sub-zero", S, "(- ?a 0)", "?a");
    r(rules, "sub-self", S, "(- ?a ?a)", "0");
    r(rules, "neg-neg", S, "(- (- ?a))", "?a");
    r(rules, "mul-two-to-add", S, "(* ?a 2)", "(+ ?a ?a)");
    r(rules, "two-mul-to-add", S, "(* 2 ?a)", "(+ ?a ?a)");
    r(rules, "add-self-to-mul-two", S, "(+ ?a ?a)", "(* ?a 2)");
    r(rules, "zero-sub-to-neg", S, "(- 0 ?a)", "(- ?a)");
    r(
        rules,
        "pt-consolidate",
        S,
        "(* ?p:plain (* ?q:plain ?x))",
        "(* (* ?p ?q) ?x)",
    );
    r(
        rules,
        "pt-pull-out",
        S,
        "(* (* ?p:plain ?x) ?q:plain)",
        "(* (* ?p ?q) ?x)",
    );
}

fn scalar_balancing(rules: &mut Vec<Rule>) {
    use RuleCategory::Balancing as B;
    r(
        rules,
        "mul-balance-right",
        B,
        "(* ?a (* ?b (* ?c ?d)))",
        "(* (* ?a ?b) (* ?c ?d))",
    );
    r(
        rules,
        "mul-balance-left",
        B,
        "(* (* (* ?a ?b) ?c) ?d)",
        "(* (* ?a ?b) (* ?c ?d))",
    );
    r(
        rules,
        "add-balance-right",
        B,
        "(+ ?a (+ ?b (+ ?c ?d)))",
        "(+ (+ ?a ?b) (+ ?c ?d))",
    );
    r(
        rules,
        "add-balance-left",
        B,
        "(+ (+ (+ ?a ?b) ?c) ?d)",
        "(+ (+ ?a ?b) (+ ?c ?d))",
    );
}

fn vector_algebra(rules: &mut Vec<Rule>) {
    use RuleCategory::Transformation as T;
    r(rules, "vec-add-comm", T, "(VecAdd ?a ?b)", "(VecAdd ?b ?a)");
    r(rules, "vec-mul-comm", T, "(VecMul ?a ?b)", "(VecMul ?b ?a)");
    r(
        rules,
        "vec-add-assoc-left",
        T,
        "(VecAdd ?a (VecAdd ?b ?c))",
        "(VecAdd (VecAdd ?a ?b) ?c)",
    );
    r(
        rules,
        "vec-add-assoc-right",
        T,
        "(VecAdd (VecAdd ?a ?b) ?c)",
        "(VecAdd ?a (VecAdd ?b ?c))",
    );
    r(
        rules,
        "vec-mul-assoc-left",
        T,
        "(VecMul ?a (VecMul ?b ?c))",
        "(VecMul (VecMul ?a ?b) ?c)",
    );
    r(
        rules,
        "vec-mul-assoc-right",
        T,
        "(VecMul (VecMul ?a ?b) ?c)",
        "(VecMul ?a (VecMul ?b ?c))",
    );
    r(
        rules,
        "vec-distribute-left",
        T,
        "(VecMul ?a (VecAdd ?b ?c))",
        "(VecAdd (VecMul ?a ?b) (VecMul ?a ?c))",
    );
    r(
        rules,
        "vec-distribute-right",
        T,
        "(VecMul (VecAdd ?a ?b) ?c)",
        "(VecAdd (VecMul ?a ?c) (VecMul ?b ?c))",
    );
    r(
        rules,
        "vec-factor-left",
        RuleCategory::Simplification,
        "(VecAdd (VecMul ?a ?b) (VecMul ?a ?c))",
        "(VecMul ?a (VecAdd ?b ?c))",
    );
    r(
        rules,
        "vec-factor-right",
        RuleCategory::Simplification,
        "(VecAdd (VecMul ?b ?a) (VecMul ?c ?a))",
        "(VecMul (VecAdd ?b ?c) ?a)",
    );
    r(
        rules,
        "vec-sub-factor-left",
        RuleCategory::Simplification,
        "(VecSub (VecMul ?a ?b) (VecMul ?a ?c))",
        "(VecMul ?a (VecSub ?b ?c))",
    );
    r(
        rules,
        "vec-sub-to-add-neg",
        T,
        "(VecSub ?a ?b)",
        "(VecAdd ?a (VecNeg ?b))",
    );
    r(
        rules,
        "vec-add-neg-to-sub",
        T,
        "(VecAdd ?a (VecNeg ?b))",
        "(VecSub ?a ?b)",
    );
    r(
        rules,
        "vec-neg-neg",
        RuleCategory::Simplification,
        "(VecNeg (VecNeg ?a))",
        "?a",
    );
}

fn vector_balancing(rules: &mut Vec<Rule>) {
    use RuleCategory::Balancing as B;
    r(
        rules,
        "vecmul-balance-right",
        B,
        "(VecMul ?x (VecMul ?y (VecMul ?z ?t)))",
        "(VecMul (VecMul ?x ?y) (VecMul ?z ?t))",
    );
    r(
        rules,
        "vecmul-balance-left",
        B,
        "(VecMul (VecMul (VecMul ?x ?y) ?z) ?t)",
        "(VecMul (VecMul ?x ?y) (VecMul ?z ?t))",
    );
    r(
        rules,
        "vecadd-balance-right",
        B,
        "(VecAdd ?x (VecAdd ?y (VecAdd ?z ?t)))",
        "(VecAdd (VecAdd ?x ?y) (VecAdd ?z ?t))",
    );
    r(
        rules,
        "vecadd-balance-left",
        B,
        "(VecAdd (VecAdd (VecAdd ?x ?y) ?z) ?t)",
        "(VecAdd (VecAdd ?x ?y) (VecAdd ?z ?t))",
    );
}

fn isomorphic_vectorization(rules: &mut Vec<Rule>) {
    use RuleCategory::Vectorization as V;
    r(
        rules,
        "add-vectorize-2",
        V,
        "(Vec (+ ?a0 ?b0) (+ ?a1 ?b1))",
        "(VecAdd (Vec ?a0 ?a1) (Vec ?b0 ?b1))",
    );
    r(
        rules,
        "sub-vectorize-2",
        V,
        "(Vec (- ?a0 ?b0) (- ?a1 ?b1))",
        "(VecSub (Vec ?a0 ?a1) (Vec ?b0 ?b1))",
    );
    r(
        rules,
        "mul-vectorize-2",
        V,
        "(Vec (* ?a0 ?b0) (* ?a1 ?b1))",
        "(VecMul (Vec ?a0 ?a1) (Vec ?b0 ?b1))",
    );
    r(
        rules,
        "neg-vectorize-2",
        V,
        "(Vec (- ?a0) (- ?a1))",
        "(VecNeg (Vec ?a0 ?a1))",
    );
    r(
        rules,
        "add-vectorize-3",
        V,
        "(Vec (+ ?a0 ?b0) (+ ?a1 ?b1) (+ ?a2 ?b2))",
        "(VecAdd (Vec ?a0 ?a1 ?a2) (Vec ?b0 ?b1 ?b2))",
    );
    r(
        rules,
        "sub-vectorize-3",
        V,
        "(Vec (- ?a0 ?b0) (- ?a1 ?b1) (- ?a2 ?b2))",
        "(VecSub (Vec ?a0 ?a1 ?a2) (Vec ?b0 ?b1 ?b2))",
    );
    r(
        rules,
        "mul-vectorize-3",
        V,
        "(Vec (* ?a0 ?b0) (* ?a1 ?b1) (* ?a2 ?b2))",
        "(VecMul (Vec ?a0 ?a1 ?a2) (Vec ?b0 ?b1 ?b2))",
    );
    r(
        rules,
        "add-vectorize-4",
        V,
        "(Vec (+ ?a0 ?b0) (+ ?a1 ?b1) (+ ?a2 ?b2) (+ ?a3 ?b3))",
        "(VecAdd (Vec ?a0 ?a1 ?a2 ?a3) (Vec ?b0 ?b1 ?b2 ?b3))",
    );
    r(
        rules,
        "sub-vectorize-4",
        V,
        "(Vec (- ?a0 ?b0) (- ?a1 ?b1) (- ?a2 ?b2) (- ?a3 ?b3))",
        "(VecSub (Vec ?a0 ?a1 ?a2 ?a3) (Vec ?b0 ?b1 ?b2 ?b3))",
    );
    r(
        rules,
        "mul-vectorize-4",
        V,
        "(Vec (* ?a0 ?b0) (* ?a1 ?b1) (* ?a2 ?b2) (* ?a3 ?b3))",
        "(VecMul (Vec ?a0 ?a1 ?a2 ?a3) (Vec ?b0 ?b1 ?b2 ?b3))",
    );
}

fn procedural_vectorization(rules: &mut Vec<Rule>) {
    use RuleCategory::Vectorization as V;
    for op in BinOp::ALL {
        let full_name = format!("{}-vectorize-full", op_word(op));
        rules.push(Rule::procedural(&full_name, V, move |e| {
            vectorize_full(e, op)
        }));
    }
    rules.push(Rule::procedural(
        "neg-vectorize-full",
        V,
        vectorize_neg_full,
    ));
    for op in BinOp::ALL {
        let partial_name = format!("{}-vectorize-partial", op_word(op));
        rules.push(Rule::procedural(&partial_name, V, move |e| {
            vectorize_partial(e, op)
        }));
    }
}

fn rotation_rules(rules: &mut Vec<Rule>) {
    use RuleCategory::Rotation as R;
    r(
        rules,
        "rot-factor-add",
        R,
        "(VecAdd (<< ?a ?s) (<< ?b ?s))",
        "(<< (VecAdd ?a ?b) ?s)",
    );
    r(
        rules,
        "rot-distribute-add",
        R,
        "(<< (VecAdd ?a ?b) ?s)",
        "(VecAdd (<< ?a ?s) (<< ?b ?s))",
    );
    r(
        rules,
        "rot-factor-mul",
        R,
        "(VecMul (<< ?a ?s) (<< ?b ?s))",
        "(<< (VecMul ?a ?b) ?s)",
    );
    r(
        rules,
        "rot-distribute-mul",
        R,
        "(<< (VecMul ?a ?b) ?s)",
        "(VecMul (<< ?a ?s) (<< ?b ?s))",
    );
    r(
        rules,
        "rot-factor-sub",
        R,
        "(VecSub (<< ?a ?s) (<< ?b ?s))",
        "(<< (VecSub ?a ?b) ?s)",
    );
    r(
        rules,
        "rot-distribute-sub",
        R,
        "(<< (VecSub ?a ?b) ?s)",
        "(VecSub (<< ?a ?s) (<< ?b ?s))",
    );
    rules.push(Rule::procedural("rot-merge", R, rot_merge));
    rules.push(Rule::procedural("rot-zero", R, rot_zero));
    rules.push(Rule::procedural("reduce-sum-rotations", R, reduce_sum_rotations).root_only());
    rules.push(
        Rule::procedural("reduce-product-pairs-rotation", R, reduce_product_pairs).root_only(),
    );
}

fn folding_rules(rules: &mut Vec<Rule>) {
    use RuleCategory::Simplification as S;
    rules.push(Rule::procedural("const-fold", S, const_fold_node));
    rules.push(Rule::procedural("vec-mul-ones", S, vec_mul_ones));
    rules.push(Rule::procedural("vec-add-zeros", S, vec_add_zeros));
}

fn op_word(op: BinOp) -> &'static str {
    match op {
        BinOp::Add => "add",
        BinOp::Sub => "sub",
        BinOp::Mul => "mul",
    }
}

// ---------------------------------------------------------------------------
// Procedural rule bodies
// ---------------------------------------------------------------------------

/// `(Vec (op a0 b0) ... (op ak bk))` with every element an application of
/// `op` (and at least two elements) becomes
/// `(VecOp (Vec a0 ... ak) (Vec b0 ... bk))`.
fn vectorize_full(expr: &Expr, op: BinOp) -> Option<Expr> {
    let Expr::Vec(elems) = expr else { return None };
    if elems.len() < 2 {
        return None;
    }
    let mut lhs = Vec::with_capacity(elems.len());
    let mut rhs = Vec::with_capacity(elems.len());
    for e in elems {
        match e {
            Expr::Bin(eop, a, b) if *eop == op => {
                lhs.push((**a).clone());
                rhs.push((**b).clone());
            }
            _ => return None,
        }
    }
    Some(Expr::VecBin(
        op,
        Box::new(Expr::Vec(lhs)),
        Box::new(Expr::Vec(rhs)),
    ))
}

/// `(Vec (- a0) ... (- ak))` becomes `(VecNeg (Vec a0 ... ak))`.
fn vectorize_neg_full(expr: &Expr) -> Option<Expr> {
    let Expr::Vec(elems) = expr else { return None };
    if elems.len() < 2 {
        return None;
    }
    let mut inner = Vec::with_capacity(elems.len());
    for e in elems {
        match e {
            Expr::Neg(a) => inner.push((**a).clone()),
            _ => return None,
        }
    }
    Some(Expr::VecNeg(Box::new(Expr::Vec(inner))))
}

/// Non-isomorphic vectorization (Appendix E): if at least two elements of a
/// `Vec` apply `op` and at least one does not, vectorize the matching
/// elements, keep the non-matching elements in the first operand vector, and
/// pad the second operand vector with the identity element of `op`.
fn vectorize_partial(expr: &Expr, op: BinOp) -> Option<Expr> {
    let Expr::Vec(elems) = expr else { return None };
    if elems.len() < 2 {
        return None;
    }
    let matching = elems
        .iter()
        .filter(|e| matches!(e, Expr::Bin(eop, _, _) if *eop == op))
        .count();
    if matching < 2 || matching == elems.len() {
        return None;
    }
    let identity = Expr::Const(op.identity());
    let mut lhs = Vec::with_capacity(elems.len());
    let mut rhs = Vec::with_capacity(elems.len());
    for e in elems {
        match e {
            Expr::Bin(eop, a, b) if *eop == op => {
                lhs.push((**a).clone());
                rhs.push((**b).clone());
            }
            other => {
                lhs.push(other.clone());
                rhs.push(identity.clone());
            }
        }
    }
    Some(Expr::VecBin(
        op,
        Box::new(Expr::Vec(lhs)),
        Box::new(Expr::Vec(rhs)),
    ))
}

/// Merges nested rotations with the same direction.
fn rot_merge(expr: &Expr) -> Option<Expr> {
    let Expr::Rot(inner, outer_step) = expr else {
        return None;
    };
    let Expr::Rot(base, inner_step) = inner.as_ref() else {
        return None;
    };
    if (*outer_step >= 0) != (*inner_step >= 0) {
        return None;
    }
    let combined = outer_step + inner_step;
    Some(if combined == 0 {
        (**base).clone()
    } else {
        Expr::Rot(base.clone(), combined)
    })
}

/// Removes zero-step rotations.
fn rot_zero(expr: &Expr) -> Option<Expr> {
    match expr {
        Expr::Rot(inner, 0) => Some((**inner).clone()),
        _ => None,
    }
}

/// `(VecMul v (Vec 1 1 ...))` (or commuted) becomes `v`.
fn vec_mul_ones(expr: &Expr) -> Option<Expr> {
    let Expr::VecBin(BinOp::Mul, a, b) = expr else {
        return None;
    };
    if is_const_splat(b, 1) {
        return Some((**a).clone());
    }
    if is_const_splat(a, 1) {
        return Some((**b).clone());
    }
    None
}

/// `(VecAdd v (Vec 0 0 ...))`, its commuted form, and `(VecSub v zeros)`
/// become `v`.
fn vec_add_zeros(expr: &Expr) -> Option<Expr> {
    match expr {
        Expr::VecBin(BinOp::Add, a, b) => {
            if is_const_splat(b, 0) {
                Some((**a).clone())
            } else if is_const_splat(a, 0) {
                Some((**b).clone())
            } else {
                None
            }
        }
        Expr::VecBin(BinOp::Sub, a, b) if is_const_splat(b, 0) => Some((**a).clone()),
        _ => None,
    }
}

fn is_const_splat(expr: &Expr, value: i64) -> bool {
    match expr {
        Expr::Vec(elems) => elems
            .iter()
            .all(|e| matches!(e, Expr::Const(v) if *v == value)),
        _ => false,
    }
}

/// Rewrites a scalar sum of at least four terms into a packed
/// rotate-and-add reduction whose result lands in slot 0.
///
/// If every term is a product `(* l r)` the terms are packed as a single
/// `VecMul`; otherwise the terms themselves are packed. The rule changes the
/// node's type from scalar to vector, so it is restricted to the program
/// root, where only the declared output slots are observed.
fn reduce_sum_rotations(expr: &Expr) -> Option<Expr> {
    let mut terms = Vec::new();
    flatten_sum(expr, &mut terms);
    if terms.len() < 4 {
        return None;
    }
    // Terms must be scalars (a sum of vectors is not a reduction).
    if terms
        .iter()
        .any(|t| !matches!(t.ty(), Ok(chehab_ir::Ty::Scalar)))
    {
        return None;
    }
    let all_products = terms
        .iter()
        .all(|t| matches!(t, Expr::Bin(BinOp::Mul, _, _)));
    let packed = if all_products {
        let mut lhs = Vec::with_capacity(terms.len());
        let mut rhs = Vec::with_capacity(terms.len());
        for t in &terms {
            if let Expr::Bin(BinOp::Mul, a, b) = t {
                lhs.push((**a).clone());
                rhs.push((**b).clone());
            }
        }
        Expr::VecBin(
            BinOp::Mul,
            Box::new(Expr::Vec(lhs)),
            Box::new(Expr::Vec(rhs)),
        )
    } else {
        Expr::Vec(terms.clone())
    };
    Some(rotate_add_reduce(packed, terms.len()))
}

fn flatten_sum(expr: &Expr, terms: &mut Vec<Expr>) {
    match expr {
        Expr::Bin(BinOp::Add, a, b) => {
            flatten_sum(a, terms);
            flatten_sum(b, terms);
        }
        other => terms.push(other.clone()),
    }
}

/// Builds the log-depth rotate-and-add tree that sums the first `len` slots
/// of `packed` into slot 0 (zero-fill shift semantics make the padding slots
/// contribute nothing).
fn rotate_add_reduce(packed: Expr, len: usize) -> Expr {
    let mut width = len.next_power_of_two();
    let mut acc = packed;
    while width > 1 {
        let half = (width / 2) as i64;
        acc = Expr::VecBin(
            BinOp::Add,
            Box::new(acc.clone()),
            Box::new(Expr::Rot(Box::new(acc), half)),
        );
        width /= 2;
    }
    acc
}

/// Composite rotation rule (Appendix E): a `Vec` whose every element is a sum
/// of exactly two products becomes a single packed `VecMul` of width `2k`
/// followed by one rotate-and-add, replacing `2k` scalar multiplications and
/// `k` scalar additions with one vector multiplication, one rotation and one
/// vector addition.
fn reduce_product_pairs(expr: &Expr) -> Option<Expr> {
    let Expr::Vec(elems) = expr else { return None };
    if elems.len() < 2 {
        return None;
    }
    let mut first_l = Vec::new();
    let mut first_r = Vec::new();
    let mut second_l = Vec::new();
    let mut second_r = Vec::new();
    for e in elems {
        let Expr::Bin(BinOp::Add, p, q) = e else {
            return None;
        };
        let Expr::Bin(BinOp::Mul, a, b) = p.as_ref() else {
            return None;
        };
        let Expr::Bin(BinOp::Mul, c, d) = q.as_ref() else {
            return None;
        };
        first_l.push((**a).clone());
        first_r.push((**b).clone());
        second_l.push((**c).clone());
        second_r.push((**d).clone());
    }
    let k = elems.len() as i64;
    let mut lhs = first_l;
    lhs.extend(second_l);
    let mut rhs = first_r;
    rhs.extend(second_r);
    let packed = Expr::VecBin(
        BinOp::Mul,
        Box::new(Expr::Vec(lhs)),
        Box::new(Expr::Vec(rhs)),
    );
    Some(Expr::VecBin(
        BinOp::Add,
        Box::new(packed.clone()),
        Box::new(Expr::Rot(Box::new(packed), k)),
    ))
}

/// Folds an operation whose operands are literal constants.
fn const_fold_node(expr: &Expr) -> Option<Expr> {
    match expr {
        Expr::Bin(op, a, b) => match (a.as_ref(), b.as_ref()) {
            (Expr::Const(x), Expr::Const(y)) => Some(Expr::Const(match op {
                BinOp::Add => x.wrapping_add(*y),
                BinOp::Sub => x.wrapping_sub(*y),
                BinOp::Mul => x.wrapping_mul(*y),
            })),
            _ => None,
        },
        Expr::Neg(a) => match a.as_ref() {
            Expr::Const(x) => Some(Expr::Const(x.wrapping_neg())),
            _ => None,
        },
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rule::Placement;
    use chehab_ir::{count_ops, equivalent_on_live_slots, parse, Env};
    use std::collections::HashSet;

    #[test]
    fn catalog_has_at_least_84_rules_with_unique_names() {
        let rules = default_catalog();
        assert!(rules.len() >= 84, "catalog has only {} rules", rules.len());
        let names: HashSet<_> = rules.iter().map(|r| r.name().to_string()).collect();
        assert_eq!(names.len(), rules.len(), "duplicate rule names");
    }

    #[test]
    fn catalog_covers_all_categories() {
        let rules = default_catalog();
        for cat in [
            RuleCategory::Vectorization,
            RuleCategory::Simplification,
            RuleCategory::Transformation,
            RuleCategory::Balancing,
            RuleCategory::Rotation,
        ] {
            assert!(
                rules.iter().any(|r| r.category() == cat),
                "no rule in category {cat}"
            );
        }
    }

    #[test]
    fn root_only_rules_are_marked() {
        let rules = default_catalog();
        let root_only: Vec<_> = rules
            .iter()
            .filter(|r| r.placement() == Placement::RootOnly)
            .map(|r| r.name())
            .collect();
        assert!(root_only.contains(&"reduce-sum-rotations"));
        assert!(root_only.contains(&"reduce-product-pairs-rotation"));
    }

    fn rule(name: &str) -> Rule {
        default_catalog()
            .into_iter()
            .find(|r| r.name() == name)
            .unwrap_or_else(|| panic!("no rule {name}"))
    }

    #[test]
    fn full_vectorization_packs_all_lanes() {
        let e = parse("(Vec (+ a b) (+ c d) (+ e f))").unwrap();
        let out = rule("add-vectorize-full").try_apply(&e).unwrap();
        assert_eq!(out, parse("(VecAdd (Vec a c e) (Vec b d f))").unwrap());
        // Mixed ops are not a full match.
        let mixed = parse("(Vec (+ a b) (* c d))").unwrap();
        assert!(rule("add-vectorize-full").try_apply(&mixed).is_none());
    }

    #[test]
    fn partial_vectorization_pads_with_identity() {
        let e = parse("(Vec (* a b) (* c d) (- f g))").unwrap();
        let out = rule("mul-vectorize-partial").try_apply(&e).unwrap();
        assert_eq!(
            out,
            parse("(VecMul (Vec a c (- f g)) (Vec b d 1))").unwrap()
        );
        // It must not fire when everything matches (the full rule covers that).
        let all = parse("(Vec (* a b) (* c d))").unwrap();
        assert!(rule("mul-vectorize-partial").try_apply(&all).is_none());
    }

    #[test]
    fn partial_vectorization_is_sound() {
        let e = parse("(Vec (* a b) (* c d) (- f g))").unwrap();
        let out = rule("mul-vectorize-partial").try_apply(&e).unwrap();
        let mut env = Env::new();
        env.bind_all(&e, |s| s.as_str().bytes().map(i64::from).sum::<i64>() % 97);
        assert!(equivalent_on_live_slots(&e, &out, &env, 3).unwrap());
    }

    #[test]
    fn neg_vectorization() {
        let e = parse("(Vec (- a) (- b) (- c))").unwrap();
        let out = rule("neg-vectorize-full").try_apply(&e).unwrap();
        assert_eq!(out, parse("(VecNeg (Vec a b c))").unwrap());
    }

    #[test]
    fn sum_reduction_builds_log_depth_rotate_add() {
        // Dot product of length 4, written as unstructured scalar code.
        let e = parse("(+ (+ (* a0 b0) (* a1 b1)) (+ (* a2 b2) (* a3 b3)))").unwrap();
        let out = rule("reduce-sum-rotations").try_apply(&e).unwrap();
        let counts = count_ops(&out);
        assert_eq!(counts.vec_mul_ct_ct, 1, "one packed multiplication");
        assert_eq!(counts.rotations, 2, "log2(4) rotations");
        assert_eq!(counts.vec_add_sub, 2, "log2(4) vector additions");
        assert_eq!(counts.scalar_ciphertext_ops(), 0);
        // Slot 0 must hold the dot product.
        let mut env = Env::new();
        env.bind_all(&e, |s| s.as_str().bytes().map(i64::from).sum::<i64>() % 53);
        assert!(equivalent_on_live_slots(&e, &out, &env, 1).unwrap());
    }

    #[test]
    fn sum_reduction_handles_non_product_terms_and_non_power_of_two() {
        let e = parse("(+ (+ (+ x0 x1) (+ x2 x3)) (+ x4 x5))").unwrap();
        let out = rule("reduce-sum-rotations").try_apply(&e).unwrap();
        let mut env = Env::new();
        env.bind_all(&e, |s| s.as_str().bytes().map(i64::from).sum::<i64>() % 31);
        assert!(equivalent_on_live_slots(&e, &out, &env, 1).unwrap());
        assert_eq!(count_ops(&out).rotations, 3, "ceil(log2(6)) rotations");
    }

    #[test]
    fn sum_reduction_requires_at_least_four_terms() {
        let e = parse("(+ (* a b) (* c d))").unwrap();
        assert!(rule("reduce-sum-rotations").try_apply(&e).is_none());
    }

    #[test]
    fn product_pair_reduction_is_sound_on_live_slots() {
        let e = parse("(Vec (+ (* a b) (* c d)) (+ (* e f) (* g h)))").unwrap();
        let out = rule("reduce-product-pairs-rotation").try_apply(&e).unwrap();
        let counts = count_ops(&out);
        assert_eq!(counts.vec_mul_ct_ct, 1);
        assert_eq!(counts.rotations, 1);
        assert_eq!(counts.vec_add_sub, 1);
        let mut env = Env::new();
        env.bind_all(&e, |s| s.as_str().bytes().map(i64::from).sum::<i64>() % 41);
        assert!(equivalent_on_live_slots(&e, &out, &env, 2).unwrap());
    }

    #[test]
    fn rot_merge_and_rot_zero() {
        let e = parse("(<< (<< (Vec a b c d) 1) 2)").unwrap();
        assert_eq!(
            rule("rot-merge").try_apply(&e).unwrap(),
            parse("(<< (Vec a b c d) 3)").unwrap()
        );
        let opposite = parse("(<< (>> (Vec a b c d) 1) 2)").unwrap();
        assert!(rule("rot-merge").try_apply(&opposite).is_none());
        let zero = parse("(<< (Vec a b) 0)").unwrap();
        assert_eq!(
            rule("rot-zero").try_apply(&zero).unwrap(),
            parse("(Vec a b)").unwrap()
        );
    }

    #[test]
    fn vec_identity_folding() {
        let e = parse("(VecMul (Vec a b) (Vec 1 1))").unwrap();
        assert_eq!(
            rule("vec-mul-ones").try_apply(&e).unwrap(),
            parse("(Vec a b)").unwrap()
        );
        let e = parse("(VecAdd (Vec 0 0) (Vec a b))").unwrap();
        assert_eq!(
            rule("vec-add-zeros").try_apply(&e).unwrap(),
            parse("(Vec a b)").unwrap()
        );
        let not_ones = parse("(VecMul (Vec a b) (Vec 1 2))").unwrap();
        assert!(rule("vec-mul-ones").try_apply(&not_ones).is_none());
    }

    #[test]
    fn const_fold_rule() {
        assert_eq!(
            rule("const-fold")
                .try_apply(&parse("(+ 2 3)").unwrap())
                .unwrap(),
            Expr::Const(5)
        );
        assert_eq!(
            rule("const-fold")
                .try_apply(&parse("(- 4)").unwrap())
                .unwrap(),
            Expr::Const(-4)
        );
        assert!(rule("const-fold")
            .try_apply(&parse("(+ x 3)").unwrap())
            .is_none());
    }

    #[test]
    fn declarative_rules_in_catalog_are_sound_on_a_worked_example() {
        // Motivating example, Section 2: R1 (mul-comm) then R2 (factor) enables
        // mul-vectorize-2 later.
        let eq1 = parse("(+ (* (* v1 v2) (* v3 v4)) (* (* v3 v4) (* v5 v6)))").unwrap();
        // Apply mul-comm at the left child to move (* v3 v4) into first position.
        let comm = rule("mul-comm");
        let left = eq1.at_path(&[0]).unwrap().clone();
        let left_commuted = comm.try_apply(&left).unwrap();
        let after_comm = eq1.replace_at(&[0], left_commuted).unwrap();
        let factored = rule("factor-left").try_apply(&after_comm).unwrap();
        assert_eq!(
            factored,
            parse("(* (* v3 v4) (+ (* v1 v2) (* v5 v6)))").unwrap()
        );
        let mut env = Env::new();
        env.bind_all(&eq1, |s| {
            s.as_str().bytes().map(i64::from).sum::<i64>() % 19
        });
        assert!(equivalent_on_live_slots(&eq1, &factored, &env, 1).unwrap());
    }
}
