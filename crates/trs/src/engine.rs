//! The rewrite engine: locates rule matches inside a program, applies a rule
//! at a chosen occurrence, and provides the greedy optimizer used by the
//! original (non-RL) CHEHAB compiler as a baseline.

use crate::catalog::default_catalog;
use crate::rule::{Placement, Rule};
use chehab_ir::{CostModel, Expr};

/// Identifies one concrete application site of one rule inside a program.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Match {
    /// Index of the rule in the engine's catalog.
    pub rule_index: usize,
    /// Path (child indices from the root) of the node the rule rewrites.
    pub path: Vec<usize>,
}

/// A rewrite engine over a fixed, ordered rule catalog.
#[derive(Debug)]
pub struct RewriteEngine {
    rules: Vec<Rule>,
}

impl Default for RewriteEngine {
    fn default() -> Self {
        Self::new()
    }
}

impl RewriteEngine {
    /// Creates an engine over the [`default_catalog`].
    pub fn new() -> Self {
        RewriteEngine {
            rules: default_catalog(),
        }
    }

    /// Creates an engine over a custom rule set.
    pub fn with_rules(rules: Vec<Rule>) -> Self {
        RewriteEngine { rules }
    }

    /// The ordered rule catalog. The index of a rule in this slice is the id
    /// used by [`Match::rule_index`] and by the RL action space.
    pub fn rules(&self) -> &[Rule] {
        &self.rules
    }

    /// Number of rules in the catalog.
    pub fn rule_count(&self) -> usize {
        self.rules.len()
    }

    /// Finds the index of a rule by name.
    pub fn rule_index(&self, name: &str) -> Option<usize> {
        self.rules.iter().position(|r| r.name() == name)
    }

    /// Lists, in preorder, every node path at which `rule_index` applies
    /// (produces a change and respects the rule's placement constraint).
    ///
    /// The position of a path in the returned list is the *location index*
    /// the RL agent's location network selects from.
    ///
    /// # Panics
    ///
    /// Panics if `rule_index` is out of range.
    pub fn matches(&self, expr: &Expr, rule_index: usize) -> Vec<Vec<usize>> {
        let rule = &self.rules[rule_index];
        match rule.placement() {
            Placement::RootOnly => {
                if rule.applies(expr) {
                    vec![Vec::new()]
                } else {
                    Vec::new()
                }
            }
            Placement::Anywhere => expr
                .paths()
                .into_iter()
                .filter(|(_, node)| rule.applies(node))
                .map(|(path, _)| path)
                .collect(),
        }
    }

    /// Returns, for every rule, whether it applies anywhere in `expr`.
    /// This is the action mask the RL policy uses to exclude invalid rules.
    pub fn applicability_mask(&self, expr: &Expr) -> Vec<bool> {
        let paths = expr.paths();
        self.rules
            .iter()
            .map(|rule| match rule.placement() {
                Placement::RootOnly => rule.applies(expr),
                Placement::Anywhere => paths.iter().any(|(_, node)| rule.applies(node)),
            })
            .collect()
    }

    /// Enumerates every `(rule, location)` pair that applies to `expr`,
    /// ordered by rule index then location index (the flat action space used
    /// in the ablation of Section 7.6).
    pub fn all_matches(&self, expr: &Expr) -> Vec<Match> {
        let mut out = Vec::new();
        for rule_index in 0..self.rules.len() {
            for path in self.matches(expr, rule_index) {
                out.push(Match { rule_index, path });
            }
        }
        out
    }

    /// Applies `rule_index` at its `occurrence`-th match (0-based) and
    /// returns the rewritten program, or `None` if the rule has fewer
    /// matches.
    pub fn apply_at_occurrence(
        &self,
        expr: &Expr,
        rule_index: usize,
        occurrence: usize,
    ) -> Option<Expr> {
        let paths = self.matches(expr, rule_index);
        let path = paths.get(occurrence)?;
        self.apply_at_path(expr, rule_index, path)
    }

    /// Applies `rule_index` at an explicit node path.
    pub fn apply_at_path(&self, expr: &Expr, rule_index: usize, path: &[usize]) -> Option<Expr> {
        let rule = self.rules.get(rule_index)?;
        if rule.placement() == Placement::RootOnly && !path.is_empty() {
            return None;
        }
        let node = expr.at_path(path)?;
        let rewritten = rule.try_apply(node)?;
        if &rewritten == node {
            return None;
        }
        expr.replace_at(path, rewritten)
    }

    /// Greedy best-improvement optimization: the strategy of the original
    /// (non-RL) CHEHAB term rewriting pass.
    ///
    /// At each step every `(rule, location)` pair is evaluated and the one
    /// with the largest cost decrease is applied; the search stops when no
    /// pair improves the cost or after `max_steps` steps. Returns the
    /// optimized expression and the number of rewrites performed.
    pub fn greedy_optimize(
        &self,
        expr: &Expr,
        cost_model: &CostModel,
        max_steps: usize,
    ) -> (Expr, usize) {
        let mut current = expr.clone();
        let mut current_cost = cost_model.cost(&current);
        let mut steps = 0;
        while steps < max_steps {
            let mut best: Option<(Expr, f64)> = None;
            for m in self.all_matches(&current) {
                if let Some(candidate) = self.apply_at_path(&current, m.rule_index, &m.path) {
                    let cost = cost_model.cost(&candidate);
                    if cost < current_cost - 1e-9
                        && best.as_ref().is_none_or(|(_, best_cost)| cost < *best_cost)
                    {
                        best = Some((candidate, cost));
                    }
                }
            }
            match best {
                Some((next, cost)) => {
                    current = next;
                    current_cost = cost;
                    steps += 1;
                }
                None => break,
            }
        }
        (current, steps)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use chehab_ir::{count_ops, equivalent_on_live_slots, parse, CostModel, Env};

    #[test]
    fn matches_are_enumerated_in_preorder() {
        let engine = RewriteEngine::new();
        let expr = parse("(+ (+ a b) (+ c d))").unwrap();
        let idx = engine.rule_index("add-comm").unwrap();
        let paths = engine.matches(&expr, idx);
        assert_eq!(paths, vec![vec![], vec![0], vec![1]]);
    }

    #[test]
    fn apply_at_occurrence_rewrites_the_selected_site() {
        let engine = RewriteEngine::new();
        let expr = parse("(+ (+ a b) (+ c d))").unwrap();
        let idx = engine.rule_index("add-comm").unwrap();
        let rewritten = engine.apply_at_occurrence(&expr, idx, 2).unwrap();
        assert_eq!(rewritten, parse("(+ (+ a b) (+ d c))").unwrap());
        assert!(engine.apply_at_occurrence(&expr, idx, 3).is_none());
    }

    #[test]
    fn applicability_mask_matches_all_matches() {
        let engine = RewriteEngine::new();
        let expr = parse("(Vec (+ a b) (+ c d))").unwrap();
        let mask = engine.applicability_mask(&expr);
        let matches = engine.all_matches(&expr);
        for (i, applies) in mask.iter().enumerate() {
            let has_match = matches.iter().any(|m| m.rule_index == i);
            assert_eq!(
                *applies,
                has_match,
                "mask mismatch for rule {}",
                engine.rules()[i].name()
            );
        }
        assert!(mask[engine.rule_index("add-vectorize-2").unwrap()]);
    }

    #[test]
    fn root_only_rules_only_match_the_root() {
        let engine = RewriteEngine::new();
        // The dot-product sum appears nested under a multiplication, so the
        // root-only reduction rule must not fire anywhere.
        let nested = parse("(* k (+ (+ (* a0 b0) (* a1 b1)) (+ (* a2 b2) (* a3 b3))))").unwrap();
        let idx = engine.rule_index("reduce-sum-rotations").unwrap();
        assert!(engine.matches(&nested, idx).is_empty());
        // At the root it fires exactly once.
        let root = parse("(+ (+ (* a0 b0) (* a1 b1)) (+ (* a2 b2) (* a3 b3)))").unwrap();
        assert_eq!(engine.matches(&root, idx), vec![Vec::<usize>::new()]);
        assert!(
            engine.apply_at_path(&root, idx, &[0]).is_none(),
            "explicit non-root path is rejected"
        );
    }

    #[test]
    fn greedy_optimizer_vectorizes_a_dot_product() {
        let engine = RewriteEngine::new();
        let model = CostModel::default();
        let expr = parse("(+ (+ (* a0 b0) (* a1 b1)) (+ (* a2 b2) (* a3 b3)))").unwrap();
        let (optimized, steps) = engine.greedy_optimize(&expr, &model, 50);
        assert!(steps > 0);
        assert!(model.cost(&optimized) < model.cost(&expr));
        assert_eq!(
            count_ops(&optimized).scalar_ciphertext_ops(),
            0,
            "fully vectorized"
        );
        let mut env = Env::new();
        env.bind_all(&expr, |s| {
            s.as_str().bytes().map(i64::from).sum::<i64>() % 23
        });
        assert!(equivalent_on_live_slots(&expr, &optimized, &env, 1).unwrap());
    }

    #[test]
    fn greedy_optimizer_respects_step_budget() {
        let engine = RewriteEngine::new();
        let model = CostModel::default();
        let expr = parse("(Vec (+ a b) (+ c d) (+ e f) (+ g h))").unwrap();
        let (_, steps) = engine.greedy_optimize(&expr, &model, 1);
        assert!(steps <= 1);
    }

    #[test]
    fn greedy_optimizer_is_idempotent_at_fixpoint() {
        let engine = RewriteEngine::new();
        let model = CostModel::default();
        let expr = parse("(Vec (* a b) (* c d))").unwrap();
        let (opt, _) = engine.greedy_optimize(&expr, &model, 50);
        let (opt2, steps2) = engine.greedy_optimize(&opt, &model, 50);
        assert_eq!(opt, opt2);
        assert_eq!(steps2, 0);
    }
}
