//! Rewrite rules: named, categorized transformations applied at a single
//! node of the expression tree.
//!
//! A rule is either *declarative* (a left-hand-side [`Pattern`] plus a
//! right-hand-side template) or *procedural* (an arbitrary function from the
//! matched node to its replacement). Procedural rules cover transformations
//! whose shape depends on the matched node, such as whole-`Vec` vectorization
//! or reduction-to-rotations.

use crate::pattern::{parse_pattern, Pattern};
use chehab_ir::Expr;
use std::fmt;
use std::sync::Arc;

/// Broad category of a rewrite rule, mirroring Appendix E of the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RuleCategory {
    /// Packs scalar operations into vector operations.
    Vectorization,
    /// Reduces the number of operations or replaces them with cheaper ones.
    Simplification,
    /// Semantics-preserving re-associations that enable later rewrites
    /// (commutativity, associativity, distribution).
    Transformation,
    /// Rebalances expression trees to reduce (multiplicative) depth.
    Balancing,
    /// Introduces or restructures rotations.
    Rotation,
}

impl fmt::Display for RuleCategory {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            RuleCategory::Vectorization => "vectorization",
            RuleCategory::Simplification => "simplification",
            RuleCategory::Transformation => "transformation",
            RuleCategory::Balancing => "balancing",
            RuleCategory::Rotation => "rotation",
        };
        f.write_str(s)
    }
}

/// Where in the program a rule may be applied.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Placement {
    /// The rule is locally sound and may be applied at any node.
    Anywhere,
    /// The rule changes the arity (and the contents of non-live slots) of the
    /// value it rewrites and is only sound at the root of the program, where
    /// only the declared output slots are observed.
    RootOnly,
}

type ProceduralFn = dyn Fn(&Expr) -> Option<Expr> + Send + Sync;

#[derive(Clone)]
enum RuleBody {
    Rewrite { lhs: Pattern, rhs: Pattern },
    Procedural(Arc<ProceduralFn>),
}

/// A single named rewrite rule.
#[derive(Clone)]
pub struct Rule {
    name: String,
    category: RuleCategory,
    placement: Placement,
    body: RuleBody,
}

impl Rule {
    /// Builds a declarative rule from left- and right-hand-side pattern
    /// sources.
    ///
    /// # Panics
    ///
    /// Panics if either pattern fails to parse or if the right-hand side uses
    /// a metavariable the left-hand side does not bind; the rule catalog is
    /// static, so this is a programming error caught by the crate's tests.
    pub fn rewrite(name: &str, category: RuleCategory, lhs: &str, rhs: &str) -> Rule {
        let lhs = parse_pattern(lhs).unwrap_or_else(|e| panic!("rule `{name}`: bad lhs: {e}"));
        let rhs = parse_pattern(rhs).unwrap_or_else(|e| panic!("rule `{name}`: bad rhs: {e}"));
        let bound = lhs.metavariables();
        for mv in rhs.metavariables() {
            assert!(
                bound.contains(&mv),
                "rule `{name}`: rhs metavariable `?{mv}` is not bound by the lhs"
            );
        }
        Rule {
            name: name.to_string(),
            category,
            placement: Placement::Anywhere,
            body: RuleBody::Rewrite { lhs, rhs },
        }
    }

    /// Builds a procedural rule from a closure that either rewrites the node
    /// or returns `None` when it does not apply.
    pub fn procedural(
        name: &str,
        category: RuleCategory,
        f: impl Fn(&Expr) -> Option<Expr> + Send + Sync + 'static,
    ) -> Rule {
        Rule {
            name: name.to_string(),
            category,
            placement: Placement::Anywhere,
            body: RuleBody::Procedural(Arc::new(f)),
        }
    }

    /// Restricts the rule to root-only application (see [`Placement`]).
    pub fn root_only(mut self) -> Rule {
        self.placement = Placement::RootOnly;
        self
    }

    /// The rule's unique name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The rule's category.
    pub fn category(&self) -> RuleCategory {
        self.category
    }

    /// Where the rule may be applied.
    pub fn placement(&self) -> Placement {
        self.placement
    }

    /// Returns `true` if the rule is declarative (pattern-based).
    pub fn is_declarative(&self) -> bool {
        matches!(self.body, RuleBody::Rewrite { .. })
    }

    /// Attempts to apply the rule at the root of `expr`, returning the
    /// rewritten node on success.
    pub fn try_apply(&self, expr: &Expr) -> Option<Expr> {
        match &self.body {
            RuleBody::Rewrite { lhs, rhs } => {
                let bindings = lhs.matches(expr)?;
                match rhs.substitute(&bindings) {
                    Ok(e) => Some(e),
                    Err(missing) => {
                        debug_assert!(
                            false,
                            "rule `{}`: unbound metavariable `{missing}`",
                            self.name
                        );
                        None
                    }
                }
            }
            RuleBody::Procedural(f) => f(expr),
        }
    }

    /// Returns `true` if the rule applies at the root of `expr` and actually
    /// changes it.
    pub fn applies(&self, expr: &Expr) -> bool {
        self.try_apply(expr).is_some_and(|e| &e != expr)
    }
}

impl fmt::Debug for Rule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut d = f.debug_struct("Rule");
        d.field("name", &self.name)
            .field("category", &self.category)
            .field("placement", &self.placement);
        if let RuleBody::Rewrite { lhs, rhs } = &self.body {
            d.field("lhs", &lhs.to_string())
                .field("rhs", &rhs.to_string());
        } else {
            d.field("body", &"<procedural>");
        }
        d.finish()
    }
}

impl fmt::Display for Rule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.body {
            RuleBody::Rewrite { lhs, rhs } => write!(f, "{}: {} => {}", self.name, lhs, rhs),
            RuleBody::Procedural(_) => write!(f, "{}: <procedural>", self.name),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use chehab_ir::parse;

    #[test]
    fn declarative_rule_applies_and_rewrites() {
        let rule = Rule::rewrite(
            "comm-factor",
            RuleCategory::Simplification,
            "(+ (* ?a ?b) (* ?a ?c))",
            "(* ?a (+ ?b ?c))",
        );
        let e = parse("(+ (* x y) (* x z))").unwrap();
        assert!(rule.applies(&e));
        assert_eq!(rule.try_apply(&e).unwrap(), parse("(* x (+ y z))").unwrap());
        assert!(!rule.applies(&parse("(+ (* x y) (* w z))").unwrap()));
    }

    #[test]
    fn procedural_rule_applies_conditionally() {
        let rule = Rule::procedural("double-const", RuleCategory::Simplification, |e| match e {
            Expr::Const(v) => Some(Expr::Const(v * 2)),
            _ => None,
        });
        assert_eq!(rule.try_apply(&Expr::Const(3)), Some(Expr::Const(6)));
        assert_eq!(rule.try_apply(&parse("x").unwrap()), None);
        assert!(!rule.is_declarative());
    }

    #[test]
    fn identity_rewrites_do_not_count_as_applying() {
        let rule = Rule::rewrite(
            "add-comm",
            RuleCategory::Transformation,
            "(+ ?a ?b)",
            "(+ ?b ?a)",
        );
        // x + x commutes to itself, so the rule "applies" syntactically but
        // produces no change and is reported as not applicable.
        assert!(!rule.applies(&parse("(+ x x)").unwrap()));
        assert!(rule.applies(&parse("(+ x y)").unwrap()));
    }

    #[test]
    #[should_panic(expected = "not bound")]
    fn unbound_rhs_metavariable_is_rejected_at_construction() {
        let _ = Rule::rewrite(
            "bad",
            RuleCategory::Simplification,
            "(+ ?a ?b)",
            "(+ ?a ?c)",
        );
    }

    #[test]
    fn debug_and_display_are_informative() {
        let rule = Rule::rewrite(
            "mul-comm",
            RuleCategory::Transformation,
            "(* ?a ?b)",
            "(* ?b ?a)",
        );
        assert!(format!("{rule:?}").contains("mul-comm"));
        assert!(rule.to_string().contains("=>"));
    }

    #[test]
    fn root_only_marks_placement() {
        let rule = Rule::procedural("r", RuleCategory::Rotation, |_| None).root_only();
        assert_eq!(rule.placement(), Placement::RootOnly);
    }
}
