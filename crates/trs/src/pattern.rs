//! Pattern language used by declarative rewrite rules.
//!
//! Patterns mirror the IR expression grammar and add metavariables written
//! `?name`. Matching is *non-linear*: a metavariable that occurs several
//! times in a pattern must bind structurally identical subexpressions, which
//! is what rules such as factorization (`(+ (* ?a ?b) (* ?a ?c))`) rely on.

use chehab_ir::{BinOp, Expr};
use std::collections::HashMap;
use std::fmt;

/// A metavariable binding environment produced by a successful match.
pub type Bindings = HashMap<String, Expr>;

/// A pattern over IR expressions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Pattern {
    /// `?name` — matches any subexpression.
    Any(String),
    /// A literal constant, e.g. `0` or `1`.
    Const(i64),
    /// Matches any constant leaf and binds it.
    AnyConst(String),
    /// Matches any plaintext-only subexpression (no encrypted inputs) and binds it.
    AnyPlain(String),
    /// Scalar binary operation.
    Bin(BinOp, Box<Pattern>, Box<Pattern>),
    /// Scalar negation.
    Neg(Box<Pattern>),
    /// Vector constructor with a fixed arity.
    Vec(Vec<Pattern>),
    /// Element-wise vector binary operation.
    VecBin(BinOp, Box<Pattern>, Box<Pattern>),
    /// Element-wise vector negation.
    VecNeg(Box<Pattern>),
    /// Rotation by any step; the step is bound under the given name and is
    /// reproduced by [`Pattern::substitute`] from the same name.
    Rot(Box<Pattern>, String),
}

impl Pattern {
    /// Shorthand for a metavariable.
    pub fn var(name: &str) -> Pattern {
        Pattern::Any(name.to_string())
    }

    /// Attempts to match `expr` against this pattern, returning the bindings
    /// on success.
    pub fn matches(&self, expr: &Expr) -> Option<Bindings> {
        let mut bindings = Bindings::new();
        let mut steps = HashMap::new();
        if self.match_into(expr, &mut bindings, &mut steps) {
            // Rotation steps are stored as synthetic constant bindings so that
            // substitution can retrieve them.
            for (name, step) in steps {
                bindings.insert(format!("@step:{name}"), Expr::Const(step));
            }
            Some(bindings)
        } else {
            None
        }
    }

    fn match_into(
        &self,
        expr: &Expr,
        bindings: &mut Bindings,
        steps: &mut HashMap<String, i64>,
    ) -> bool {
        match (self, expr) {
            (Pattern::Any(name), _) => bind(bindings, name, expr),
            (Pattern::Const(v), Expr::Const(w)) => v == w,
            (Pattern::AnyConst(name), Expr::Const(_)) => bind(bindings, name, expr),
            (Pattern::AnyPlain(name), _) => {
                if expr.contains_ciphertext() {
                    false
                } else {
                    bind(bindings, name, expr)
                }
            }
            (Pattern::Bin(op, pa, pb), Expr::Bin(eop, ea, eb)) => {
                op == eop
                    && pa.match_into(ea, bindings, steps)
                    && pb.match_into(eb, bindings, steps)
            }
            (Pattern::Neg(pa), Expr::Neg(ea)) => pa.match_into(ea, bindings, steps),
            (Pattern::Vec(ps), Expr::Vec(es)) => {
                ps.len() == es.len()
                    && ps
                        .iter()
                        .zip(es)
                        .all(|(p, e)| p.match_into(e, bindings, steps))
            }
            (Pattern::VecBin(op, pa, pb), Expr::VecBin(eop, ea, eb)) => {
                op == eop
                    && pa.match_into(ea, bindings, steps)
                    && pb.match_into(eb, bindings, steps)
            }
            (Pattern::VecNeg(pa), Expr::VecNeg(ea)) => pa.match_into(ea, bindings, steps),
            (Pattern::Rot(pa, name), Expr::Rot(ea, step)) => {
                let consistent = match steps.get(name) {
                    Some(prev) => prev == step,
                    None => {
                        steps.insert(name.clone(), *step);
                        true
                    }
                };
                consistent && pa.match_into(ea, bindings, steps)
            }
            _ => false,
        }
    }

    /// Instantiates the pattern as an expression using `bindings`.
    ///
    /// Used to build the right-hand side of a rewrite from the bindings the
    /// left-hand side produced.
    ///
    /// # Errors
    ///
    /// Returns the name of the first unbound metavariable encountered.
    pub fn substitute(&self, bindings: &Bindings) -> Result<Expr, String> {
        match self {
            Pattern::Any(name) | Pattern::AnyConst(name) | Pattern::AnyPlain(name) => {
                bindings.get(name).cloned().ok_or_else(|| name.clone())
            }
            Pattern::Const(v) => Ok(Expr::Const(*v)),
            Pattern::Bin(op, a, b) => Ok(Expr::Bin(
                *op,
                Box::new(a.substitute(bindings)?),
                Box::new(b.substitute(bindings)?),
            )),
            Pattern::Neg(a) => Ok(Expr::Neg(Box::new(a.substitute(bindings)?))),
            Pattern::Vec(elems) => Ok(Expr::Vec(
                elems
                    .iter()
                    .map(|p| p.substitute(bindings))
                    .collect::<Result<_, _>>()?,
            )),
            Pattern::VecBin(op, a, b) => Ok(Expr::VecBin(
                *op,
                Box::new(a.substitute(bindings)?),
                Box::new(b.substitute(bindings)?),
            )),
            Pattern::VecNeg(a) => Ok(Expr::VecNeg(Box::new(a.substitute(bindings)?))),
            Pattern::Rot(a, name) => {
                let step = match bindings.get(&format!("@step:{name}")) {
                    Some(Expr::Const(s)) => *s,
                    _ => return Err(format!("@step:{name}")),
                };
                Ok(Expr::Rot(Box::new(a.substitute(bindings)?), step))
            }
        }
    }

    /// The metavariable names occurring in the pattern.
    pub fn metavariables(&self) -> Vec<String> {
        let mut out = Vec::new();
        self.collect_metavars(&mut out);
        out
    }

    fn collect_metavars(&self, out: &mut Vec<String>) {
        match self {
            Pattern::Any(n) | Pattern::AnyConst(n) | Pattern::AnyPlain(n) => {
                if !out.contains(n) {
                    out.push(n.clone());
                }
            }
            Pattern::Const(_) => {}
            Pattern::Bin(_, a, b) | Pattern::VecBin(_, a, b) => {
                a.collect_metavars(out);
                b.collect_metavars(out);
            }
            Pattern::Neg(a) | Pattern::VecNeg(a) => a.collect_metavars(out),
            Pattern::Vec(elems) => {
                for p in elems {
                    p.collect_metavars(out);
                }
            }
            Pattern::Rot(a, _) => a.collect_metavars(out),
        }
    }
}

impl fmt::Display for Pattern {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Pattern::Any(n) => write!(f, "?{n}"),
            Pattern::AnyConst(n) => write!(f, "?{n}:const"),
            Pattern::AnyPlain(n) => write!(f, "?{n}:plain"),
            Pattern::Const(v) => write!(f, "{v}"),
            Pattern::Bin(op, a, b) => write!(f, "({} {a} {b})", op.token()),
            Pattern::Neg(a) => write!(f, "(- {a})"),
            Pattern::Vec(elems) => {
                write!(f, "(Vec")?;
                for p in elems {
                    write!(f, " {p}")?;
                }
                write!(f, ")")
            }
            Pattern::VecBin(op, a, b) => write!(f, "({} {a} {b})", op.vector_token()),
            Pattern::VecNeg(a) => write!(f, "(VecNeg {a})"),
            Pattern::Rot(a, n) => write!(f, "(<< {a} ?{n})"),
        }
    }
}

/// Parses a pattern from an s-expression with `?name` metavariables.
///
/// The grammar is the IR grammar of [`chehab_ir::parse`] extended with
/// `?name` (any subexpression), `?name:const` (constant leaf), `?name:plain`
/// (plaintext-only subexpression), and `(<< p ?s)` / `(>> p ?s)` for
/// rotations with a symbolic step.
///
/// # Errors
///
/// Returns a human-readable message describing the first syntax error.
///
/// # Examples
///
/// ```
/// use chehab_trs::parse_pattern;
/// use chehab_ir::parse;
///
/// let pat = parse_pattern("(+ (* ?a ?b) (* ?a ?c))").unwrap();
/// let expr = parse("(+ (* x y) (* x z))").unwrap();
/// assert!(pat.matches(&expr).is_some());
/// let not_shared = parse("(+ (* x y) (* w z))").unwrap();
/// assert!(pat.matches(&not_shared).is_none());
/// ```
pub fn parse_pattern(input: &str) -> Result<Pattern, String> {
    let tokens = tokenize_pattern(input)?;
    let mut pos = 0usize;
    let pat = parse_tokens(&tokens, &mut pos)?;
    if pos != tokens.len() {
        return Err(format!(
            "trailing tokens after pattern: {:?}",
            &tokens[pos..]
        ));
    }
    Ok(pat)
}

fn tokenize_pattern(input: &str) -> Result<Vec<String>, String> {
    let mut out = Vec::new();
    let mut cur = String::new();
    for c in input.chars() {
        match c {
            '(' | ')' => {
                if !cur.is_empty() {
                    out.push(std::mem::take(&mut cur));
                }
                out.push(c.to_string());
            }
            c if c.is_whitespace() => {
                if !cur.is_empty() {
                    out.push(std::mem::take(&mut cur));
                }
            }
            _ => cur.push(c),
        }
    }
    if !cur.is_empty() {
        out.push(cur);
    }
    if out.is_empty() {
        return Err("empty pattern".into());
    }
    Ok(out)
}

fn parse_atom(tok: &str) -> Result<Pattern, String> {
    if let Some(name) = tok.strip_prefix('?') {
        if let Some(base) = name.strip_suffix(":const") {
            return Ok(Pattern::AnyConst(base.to_string()));
        }
        if let Some(base) = name.strip_suffix(":plain") {
            return Ok(Pattern::AnyPlain(base.to_string()));
        }
        return Ok(Pattern::Any(name.to_string()));
    }
    if let Ok(v) = tok.parse::<i64>() {
        return Ok(Pattern::Const(v));
    }
    Err(format!(
        "unexpected pattern atom `{tok}` (literal variables are not allowed in patterns)"
    ))
}

fn parse_tokens(tokens: &[String], pos: &mut usize) -> Result<Pattern, String> {
    let tok = tokens.get(*pos).ok_or("unexpected end of pattern")?;
    if tok != "(" {
        *pos += 1;
        return parse_atom(tok);
    }
    *pos += 1; // consume '('
    let head = tokens.get(*pos).ok_or("unexpected end after `(`")?.clone();
    *pos += 1;
    let mut args = Vec::new();
    while tokens.get(*pos).map(String::as_str) != Some(")") {
        if *pos >= tokens.len() {
            return Err("unclosed `(` in pattern".into());
        }
        args.push(parse_tokens(tokens, pos)?);
    }
    *pos += 1; // consume ')'
    build_form(&head, args)
}

fn build_form(head: &str, mut args: Vec<Pattern>) -> Result<Pattern, String> {
    let arity_err = |n: usize| format!("`{head}` expects {n} argument(s)");
    match head {
        "+" | "*" => {
            if args.len() != 2 {
                return Err(arity_err(2));
            }
            let b = args.pop().expect("len 2");
            let a = args.pop().expect("len 2");
            let op = if head == "+" { BinOp::Add } else { BinOp::Mul };
            Ok(Pattern::Bin(op, Box::new(a), Box::new(b)))
        }
        "-" => match args.len() {
            1 => Ok(Pattern::Neg(Box::new(args.pop().expect("len 1")))),
            2 => {
                let b = args.pop().expect("len 2");
                let a = args.pop().expect("len 2");
                Ok(Pattern::Bin(BinOp::Sub, Box::new(a), Box::new(b)))
            }
            _ => Err("`-` expects 1 or 2 arguments".into()),
        },
        "Vec" => {
            if args.is_empty() {
                return Err("`Vec` pattern needs at least one element".into());
            }
            Ok(Pattern::Vec(args))
        }
        "VecAdd" | "VecSub" | "VecMul" => {
            if args.len() != 2 {
                return Err(arity_err(2));
            }
            let b = args.pop().expect("len 2");
            let a = args.pop().expect("len 2");
            let op = match head {
                "VecAdd" => BinOp::Add,
                "VecSub" => BinOp::Sub,
                _ => BinOp::Mul,
            };
            Ok(Pattern::VecBin(op, Box::new(a), Box::new(b)))
        }
        "VecNeg" => {
            if args.len() != 1 {
                return Err(arity_err(1));
            }
            Ok(Pattern::VecNeg(Box::new(args.pop().expect("len 1"))))
        }
        "<<" | ">>" => {
            if args.len() != 2 {
                return Err(arity_err(2));
            }
            let step = args.pop().expect("len 2");
            let a = args.pop().expect("len 2");
            match step {
                Pattern::Any(name) => Ok(Pattern::Rot(Box::new(a), name)),
                other => Err(format!(
                    "rotation step in a pattern must be a metavariable, found {other}"
                )),
            }
        }
        other => Err(format!("unknown pattern form `{other}`")),
    }
}

fn bind(bindings: &mut Bindings, name: &str, expr: &Expr) -> bool {
    match bindings.get(name) {
        Some(existing) => existing == expr,
        None => {
            bindings.insert(name.to_string(), expr.clone());
            true
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use chehab_ir::parse;

    #[test]
    fn matches_and_binds_metavariables() {
        let pat = parse_pattern("(+ ?a ?b)").unwrap();
        let expr = parse("(+ x (* y z))").unwrap();
        let b = pat.matches(&expr).unwrap();
        assert_eq!(b["a"], parse("x").unwrap());
        assert_eq!(b["b"], parse("(* y z)").unwrap());
    }

    #[test]
    fn nonlinear_patterns_require_equal_subterms() {
        let pat = parse_pattern("(+ (* ?a ?b) (* ?a ?c))").unwrap();
        assert!(pat
            .matches(&parse("(+ (* x y) (* x z))").unwrap())
            .is_some());
        assert!(pat
            .matches(&parse("(+ (* x y) (* w z))").unwrap())
            .is_none());
    }

    #[test]
    fn const_patterns_match_only_literals() {
        let one = parse_pattern("(* ?a 1)").unwrap();
        assert!(one.matches(&parse("(* x 1)").unwrap()).is_some());
        assert!(one.matches(&parse("(* x 2)").unwrap()).is_none());

        let any_const = parse_pattern("(* ?a ?c:const)").unwrap();
        assert!(any_const.matches(&parse("(* x 7)").unwrap()).is_some());
        assert!(any_const.matches(&parse("(* x y)").unwrap()).is_none());
    }

    #[test]
    fn plain_patterns_reject_ciphertext_subterms() {
        let pat = parse_pattern("(* ?p:plain ?x)").unwrap();
        assert!(pat.matches(&parse("(* (pt w) x)").unwrap()).is_some());
        assert!(pat.matches(&parse("(* 3 x)").unwrap()).is_some());
        assert!(pat.matches(&parse("(* y x)").unwrap()).is_none());
    }

    #[test]
    fn substitution_builds_the_rhs() {
        let lhs = parse_pattern("(+ (* ?a ?b) (* ?a ?c))").unwrap();
        let rhs = parse_pattern("(* ?a (+ ?b ?c))").unwrap();
        let expr = parse("(+ (* x y) (* x z))").unwrap();
        let bindings = lhs.matches(&expr).unwrap();
        let rewritten = rhs.substitute(&bindings).unwrap();
        assert_eq!(rewritten, parse("(* x (+ y z))").unwrap());
    }

    #[test]
    fn substitution_reports_unbound_metavariables() {
        let rhs = parse_pattern("(* ?missing ?also)").unwrap();
        assert!(rhs.substitute(&Bindings::new()).is_err());
    }

    #[test]
    fn rotation_steps_are_captured_and_reproduced() {
        let lhs = parse_pattern("(VecAdd (<< ?a ?s) (<< ?b ?s))").unwrap();
        let rhs = parse_pattern("(<< (VecAdd ?a ?b) ?s)").unwrap();
        let expr = parse("(VecAdd (<< (Vec a b c) 2) (<< (Vec d e f) 2))").unwrap();
        let b = lhs.matches(&expr).unwrap();
        let rewritten = rhs.substitute(&b).unwrap();
        assert_eq!(
            rewritten,
            parse("(<< (VecAdd (Vec a b c) (Vec d e f)) 2)").unwrap()
        );
        // Different steps must not match.
        let expr = parse("(VecAdd (<< (Vec a b c) 2) (<< (Vec d e f) 1))").unwrap();
        assert!(lhs.matches(&expr).is_none());
    }

    #[test]
    fn vector_patterns_require_matching_arity() {
        let pat = parse_pattern("(Vec (+ ?a0 ?b0) (+ ?a1 ?b1))").unwrap();
        assert!(pat
            .matches(&parse("(Vec (+ a b) (+ c d))").unwrap())
            .is_some());
        assert!(pat
            .matches(&parse("(Vec (+ a b) (+ c d) (+ e f))").unwrap())
            .is_none());
    }

    #[test]
    fn display_is_parseable_and_informative() {
        let pat = parse_pattern("(VecMul (Vec ?a0 ?a1) (Vec ?b0 ?b1))").unwrap();
        let printed = pat.to_string();
        assert!(printed.contains("?a0"));
        assert_eq!(parse_pattern(&printed).unwrap(), pat);
    }

    #[test]
    fn metavariables_are_listed_once() {
        let pat = parse_pattern("(+ (* ?a ?b) (* ?a ?c))").unwrap();
        assert_eq!(pat.metavariables(), vec!["a", "b", "c"]);
    }

    #[test]
    fn malformed_patterns_are_rejected() {
        for bad in [
            "",
            "(",
            "(+ ?a)",
            "(?? x)",
            "(<< ?v 3)",
            "(Vec)",
            "(Frob ?a)",
            "x",
        ] {
            assert!(parse_pattern(bad).is_err(), "expected error for `{bad}`");
        }
    }
}
