//! # chehab-nn
//!
//! A minimal neural-network substrate built from scratch for the CHEHAB RL
//! reproduction: dense matrices, reverse-mode automatic differentiation,
//! linear / MLP / layer-norm layers, a Transformer encoder (the program
//! state representation of Section 5.1), a GRU encoder (the Appendix I.1
//! baseline), sequence autoencoders for the architecture ablation, and the
//! Adam optimizer used by PPO training.
//!
//! The library is deliberately small and define-by-run: graphs are rebuilt
//! every forward pass, values are `f32` matrices, and everything is
//! deterministic given a seeded RNG — which is what the experiment harness
//! needs to reproduce learning curves.
//!
//! ## Example
//!
//! ```
//! use chehab_nn::{Matrix, Tensor};
//!
//! let x = Tensor::parameter(Matrix::full(1, 2, 2.0));
//! let loss = x.mul(&x).mean();
//! loss.backward();
//! assert_eq!(loss.value().get(0, 0), 4.0);
//! assert_eq!(x.grad().get(0, 0), 2.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod autoencoder;
mod gru;
mod layers;
mod matrix;
mod optim;
mod tensor;
mod transformer;

pub use autoencoder::{EncoderKind, ReconstructionAccuracy, SequenceAutoencoder};
pub use gru::GruEncoder;
pub use layers::{Activation, LayerNorm, Linear, Mlp, Module};
pub use matrix::Matrix;
pub use optim::{Adam, Sgd};
pub use tensor::Tensor;
pub use transformer::{TransformerConfig, TransformerEncoder};
