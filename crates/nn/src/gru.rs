//! A gated recurrent unit (GRU) sequence encoder: the baseline architecture
//! the Transformer encoder is compared against in Appendix I.1.

use crate::layers::{Linear, Module};
use crate::matrix::Matrix;
use crate::tensor::Tensor;
use rand::Rng;

/// A single-direction, single-layer GRU followed by optional stacking.
#[derive(Debug)]
pub struct GruEncoder {
    vocab_size: usize,
    hidden_dim: usize,
    max_len: usize,
    embedding: Tensor,
    layers: Vec<GruLayer>,
}

#[derive(Debug)]
struct GruLayer {
    update_x: Linear,
    update_h: Linear,
    reset_x: Linear,
    reset_h: Linear,
    candidate_x: Linear,
    candidate_h: Linear,
    hidden_dim: usize,
}

impl GruLayer {
    fn new(input_dim: usize, hidden_dim: usize, rng: &mut impl Rng) -> Self {
        GruLayer {
            update_x: Linear::new(input_dim, hidden_dim, rng),
            update_h: Linear::new(hidden_dim, hidden_dim, rng),
            reset_x: Linear::new(input_dim, hidden_dim, rng),
            reset_h: Linear::new(hidden_dim, hidden_dim, rng),
            candidate_x: Linear::new(input_dim, hidden_dim, rng),
            candidate_h: Linear::new(hidden_dim, hidden_dim, rng),
            hidden_dim,
        }
    }

    /// One GRU step: `h_t = (1 - z) ⊙ h_{t-1} + z ⊙ h̃`.
    fn step(&self, x: &Tensor, h: &Tensor) -> Tensor {
        let z = self
            .update_x
            .forward(x)
            .add(&self.update_h.forward(h))
            .sigmoid();
        let r = self
            .reset_x
            .forward(x)
            .add(&self.reset_h.forward(h))
            .sigmoid();
        let candidate = self
            .candidate_x
            .forward(x)
            .add(&self.candidate_h.forward(&r.mul(h)))
            .tanh();
        let ones = Tensor::constant(Matrix::full(1, self.hidden_dim, 1.0));
        ones.sub(&z).mul(h).add(&z.mul(&candidate))
    }

    /// Runs the layer over a sequence of `1 × input_dim` tensors and returns
    /// every hidden state.
    fn run(&self, inputs: &[Tensor]) -> Vec<Tensor> {
        let mut h = Tensor::constant(Matrix::zeros(1, self.hidden_dim));
        let mut outputs = Vec::with_capacity(inputs.len());
        for x in inputs {
            h = self.step(x, &h);
            outputs.push(h.clone());
        }
        outputs
    }
}

impl Module for GruLayer {
    fn parameters(&self) -> Vec<Tensor> {
        [
            &self.update_x,
            &self.update_h,
            &self.reset_x,
            &self.reset_h,
            &self.candidate_x,
            &self.candidate_h,
        ]
        .iter()
        .flat_map(|l| l.parameters())
        .collect()
    }
}

impl GruEncoder {
    /// Creates a GRU encoder with `num_layers` stacked layers.
    pub fn new(
        vocab_size: usize,
        hidden_dim: usize,
        num_layers: usize,
        max_len: usize,
        rng: &mut impl Rng,
    ) -> Self {
        let embedding = Tensor::parameter(Matrix::xavier(vocab_size, hidden_dim, rng));
        let layers = (0..num_layers.max(1))
            .map(|_| GruLayer::new(hidden_dim, hidden_dim, rng))
            .collect();
        GruEncoder {
            vocab_size,
            hidden_dim,
            max_len,
            embedding,
            layers,
        }
    }

    /// Per-token hidden states of the final layer (`seq_len × hidden_dim`).
    pub fn encode_sequence(&self, token_ids: &[usize]) -> Tensor {
        let ids: Vec<usize> = token_ids
            .iter()
            .copied()
            .take(self.max_len)
            .map(|id| id.min(self.vocab_size - 1))
            .collect();
        let embedded = Tensor::embedding_lookup(&self.embedding, &ids);
        let mut inputs: Vec<Tensor> = (0..ids.len()).map(|r| embedded.row(r)).collect();
        let mut outputs = Vec::new();
        for layer in &self.layers {
            outputs = layer.run(&inputs);
            inputs = outputs.clone();
        }
        stack_rows(&outputs)
    }

    /// Fixed-length program embedding: the final hidden state of the last
    /// layer.
    pub fn encode(&self, token_ids: &[usize]) -> Tensor {
        let ids: Vec<usize> = token_ids
            .iter()
            .copied()
            .take(self.max_len)
            .map(|id| id.min(self.vocab_size - 1))
            .collect();
        let embedded = Tensor::embedding_lookup(&self.embedding, &ids);
        let mut inputs: Vec<Tensor> = (0..ids.len()).map(|r| embedded.row(r)).collect();
        let mut last = Tensor::constant(Matrix::zeros(1, self.hidden_dim));
        for layer in &self.layers {
            let outputs = layer.run(&inputs);
            last = outputs.last().cloned().unwrap_or(last);
            inputs = outputs;
        }
        last
    }

    /// The dimension of the pooled embedding.
    pub fn embedding_dim(&self) -> usize {
        self.hidden_dim
    }
}

/// Stacks `1 × d` tensors into an `n × d` tensor while preserving gradient
/// flow: row `i` is placed through a constant one-hot selector so that
/// `stack = Σ_i selector_i · row_i`.
fn stack_rows(rows: &[Tensor]) -> Tensor {
    assert!(!rows.is_empty(), "cannot stack zero rows");
    let n = rows.len();
    let mut acc: Option<Tensor> = None;
    for (i, row) in rows.iter().enumerate() {
        let mut selector = Matrix::zeros(n, 1);
        selector.set(i, 0, 1.0);
        let placed = Tensor::constant(selector).matmul(row);
        acc = Some(match acc {
            None => placed,
            Some(prev) => prev.add(&placed),
        });
    }
    acc.expect("rows is non-empty")
}

impl Module for GruEncoder {
    fn parameters(&self) -> Vec<Tensor> {
        let mut params = vec![self.embedding.clone()];
        for layer in &self.layers {
            params.extend(layer.parameters());
        }
        params
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn encoder(seed: u64) -> GruEncoder {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        GruEncoder::new(16, 24, 2, 64, &mut rng)
    }

    #[test]
    fn encoding_produces_a_fixed_length_vector() {
        let enc = encoder(1);
        assert_eq!(enc.encode(&[1, 2, 3]).shape(), (1, 24));
        assert_eq!(enc.encode(&[1; 40]).shape(), (1, 24));
        assert_eq!(enc.embedding_dim(), 24);
    }

    #[test]
    fn encoding_is_order_sensitive() {
        let enc = encoder(2);
        assert_ne!(
            enc.encode(&[1, 2, 3, 4]).value(),
            enc.encode(&[4, 3, 2, 1]).value()
        );
    }

    #[test]
    fn gradients_flow_through_the_recurrence() {
        let enc = encoder(3);
        enc.zero_grad();
        enc.encode(&[1, 2, 3, 4, 5]).mean().backward();
        let grads_nonzero = enc
            .parameters()
            .iter()
            .filter(|p| p.grad().norm() > 0.0)
            .count();
        assert!(grads_nonzero > enc.parameters().len() / 2);
    }

    #[test]
    fn sequence_encoding_has_one_row_per_token() {
        let enc = encoder(4);
        let out = enc.encode_sequence(&[1, 2, 3, 4, 5, 6]);
        assert_eq!(out.shape(), (6, 24));
    }
}
