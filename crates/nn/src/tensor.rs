//! Reverse-mode automatic differentiation over [`Matrix`] values.
//!
//! A [`Tensor`] is a node in a dynamically built computation graph. Forward
//! operations record a backward closure; calling [`Tensor::backward`] on a
//! scalar output propagates gradients to every parameter that participated in
//! the computation. The design favours clarity over performance: graphs are
//! rebuilt for every forward pass (define-by-run), which is what the training
//! loops in `chehab-rl` do.

use crate::matrix::Matrix;
use std::cell::RefCell;
use std::collections::HashSet;
use std::rc::Rc;
use std::sync::atomic::{AtomicUsize, Ordering};

static NEXT_ID: AtomicUsize = AtomicUsize::new(0);

type BackwardFn = Box<dyn Fn(&Matrix)>;

struct TensorInner {
    value: Matrix,
    grad: Matrix,
    parents: Vec<Tensor>,
    backward_fn: Option<BackwardFn>,
    requires_grad: bool,
}

/// A node in the autodiff graph: a matrix value plus (optionally) the
/// recipe to backpropagate through the operation that produced it.
#[derive(Clone)]
pub struct Tensor {
    inner: Rc<RefCell<TensorInner>>,
    id: usize,
}

impl std::fmt::Debug for Tensor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let inner = self.inner.borrow();
        f.debug_struct("Tensor")
            .field("id", &self.id)
            .field("shape", &(inner.value.rows(), inner.value.cols()))
            .field("requires_grad", &inner.requires_grad)
            .finish()
    }
}

impl Tensor {
    fn make(
        value: Matrix,
        parents: Vec<Tensor>,
        backward_fn: Option<BackwardFn>,
        requires_grad: bool,
    ) -> Tensor {
        let grad = Matrix::zeros(value.rows(), value.cols());
        Tensor {
            inner: Rc::new(RefCell::new(TensorInner {
                value,
                grad,
                parents,
                backward_fn,
                requires_grad,
            })),
            id: NEXT_ID.fetch_add(1, Ordering::Relaxed),
        }
    }

    /// A trainable parameter (participates in gradient computation).
    pub fn parameter(value: Matrix) -> Tensor {
        Tensor::make(value, Vec::new(), None, true)
    }

    /// A constant input (no gradient is accumulated).
    pub fn constant(value: Matrix) -> Tensor {
        Tensor::make(value, Vec::new(), None, false)
    }

    /// The tensor's current value.
    pub fn value(&self) -> Matrix {
        self.inner.borrow().value.clone()
    }

    /// The accumulated gradient.
    pub fn grad(&self) -> Matrix {
        self.inner.borrow().grad.clone()
    }

    /// Shape `(rows, cols)`.
    pub fn shape(&self) -> (usize, usize) {
        let inner = self.inner.borrow();
        (inner.value.rows(), inner.value.cols())
    }

    /// Whether the tensor is a trainable parameter (or depends on one).
    pub fn requires_grad(&self) -> bool {
        self.inner.borrow().requires_grad
    }

    /// Unique node id (used by optimizers to deduplicate parameter lists).
    pub fn id(&self) -> usize {
        self.id
    }

    /// Resets the accumulated gradient to zero.
    pub fn zero_grad(&self) {
        let mut inner = self.inner.borrow_mut();
        let (r, c) = (inner.value.rows(), inner.value.cols());
        inner.grad = Matrix::zeros(r, c);
    }

    /// Applies a gradient-descent-style in-place update `value += delta`.
    pub fn apply_update(&self, delta: &Matrix) {
        let mut inner = self.inner.borrow_mut();
        inner.value = inner.value.add(delta);
    }

    /// Overwrites the tensor's value (used when loading saved policies).
    pub fn set_value(&self, value: Matrix) {
        let mut inner = self.inner.borrow_mut();
        assert_eq!(
            (inner.value.rows(), inner.value.cols()),
            (value.rows(), value.cols()),
            "set_value shape mismatch"
        );
        inner.value = value;
    }

    fn accumulate_grad(&self, delta: &Matrix) {
        let mut inner = self.inner.borrow_mut();
        inner.grad = inner.grad.add(delta);
    }

    /// Runs backpropagation from this (scalar) tensor: sets its gradient to 1
    /// and propagates through the graph in reverse topological order.
    ///
    /// # Panics
    ///
    /// Panics if the tensor is not a `1 × 1` scalar.
    pub fn backward(&self) {
        {
            let mut inner = self.inner.borrow_mut();
            assert_eq!(
                (inner.value.rows(), inner.value.cols()),
                (1, 1),
                "backward() must be called on a scalar loss"
            );
            inner.grad = Matrix::full(1, 1, 1.0);
        }
        let order = self.topological_order();
        for node in order.into_iter().rev() {
            let (grad, backward_fn_present) = {
                let inner = node.inner.borrow();
                (inner.grad.clone(), inner.backward_fn.is_some())
            };
            if backward_fn_present {
                // Temporarily take the closure out to avoid holding a borrow
                // of this node while it mutates its parents.
                let backward_fn = node.inner.borrow_mut().backward_fn.take();
                if let Some(f) = backward_fn {
                    f(&grad);
                    node.inner.borrow_mut().backward_fn = Some(f);
                }
            }
        }
    }

    fn topological_order(&self) -> Vec<Tensor> {
        let mut visited = HashSet::new();
        let mut order = Vec::new();
        fn visit(node: &Tensor, visited: &mut HashSet<usize>, order: &mut Vec<Tensor>) {
            if !visited.insert(node.id) {
                return;
            }
            let parents = node.inner.borrow().parents.clone();
            for p in &parents {
                visit(p, visited, order);
            }
            order.push(node.clone());
        }
        visit(self, &mut visited, &mut order);
        order
    }

    // ----- forward operations -------------------------------------------------------

    /// Element-wise addition.
    pub fn add(&self, other: &Tensor) -> Tensor {
        let value = self.value().add(&other.value());
        let (a, b) = (self.clone(), other.clone());
        let requires = a.requires_grad() || b.requires_grad();
        Tensor::make(
            value,
            vec![a.clone(), b.clone()],
            Some(Box::new(move |g: &Matrix| {
                if a.requires_grad() {
                    a.accumulate_grad(g);
                }
                if b.requires_grad() {
                    b.accumulate_grad(g);
                }
            })),
            requires,
        )
    }

    /// Element-wise subtraction.
    pub fn sub(&self, other: &Tensor) -> Tensor {
        let value = self.value().sub(&other.value());
        let (a, b) = (self.clone(), other.clone());
        let requires = a.requires_grad() || b.requires_grad();
        Tensor::make(
            value,
            vec![a.clone(), b.clone()],
            Some(Box::new(move |g: &Matrix| {
                if a.requires_grad() {
                    a.accumulate_grad(g);
                }
                if b.requires_grad() {
                    b.accumulate_grad(&g.scale(-1.0));
                }
            })),
            requires,
        )
    }

    /// Element-wise (Hadamard) product.
    pub fn mul(&self, other: &Tensor) -> Tensor {
        let value = self.value().hadamard(&other.value());
        let (a, b) = (self.clone(), other.clone());
        let requires = a.requires_grad() || b.requires_grad();
        Tensor::make(
            value,
            vec![a.clone(), b.clone()],
            Some(Box::new(move |g: &Matrix| {
                if a.requires_grad() {
                    a.accumulate_grad(&g.hadamard(&b.value()));
                }
                if b.requires_grad() {
                    b.accumulate_grad(&g.hadamard(&a.value()));
                }
            })),
            requires,
        )
    }

    /// Scalar multiplication.
    pub fn scale(&self, k: f32) -> Tensor {
        let value = self.value().scale(k);
        let a = self.clone();
        let requires = a.requires_grad();
        Tensor::make(
            value,
            vec![a.clone()],
            Some(Box::new(move |g: &Matrix| {
                if a.requires_grad() {
                    a.accumulate_grad(&g.scale(k));
                }
            })),
            requires,
        )
    }

    /// Matrix product `self · other`.
    pub fn matmul(&self, other: &Tensor) -> Tensor {
        let value = self.value().matmul(&other.value());
        let (a, b) = (self.clone(), other.clone());
        let requires = a.requires_grad() || b.requires_grad();
        Tensor::make(
            value,
            vec![a.clone(), b.clone()],
            Some(Box::new(move |g: &Matrix| {
                if a.requires_grad() {
                    a.accumulate_grad(&g.matmul(&b.value().transpose()));
                }
                if b.requires_grad() {
                    b.accumulate_grad(&a.value().transpose().matmul(g));
                }
            })),
            requires,
        )
    }

    /// Matrix product with a transposed right operand, `self · otherᵀ`
    /// (used by attention scores).
    pub fn matmul_nt(&self, other: &Tensor) -> Tensor {
        let value = self.value().matmul(&other.value().transpose());
        let (a, b) = (self.clone(), other.clone());
        let requires = a.requires_grad() || b.requires_grad();
        Tensor::make(
            value,
            vec![a.clone(), b.clone()],
            Some(Box::new(move |g: &Matrix| {
                if a.requires_grad() {
                    a.accumulate_grad(&g.matmul(&b.value()));
                }
                if b.requires_grad() {
                    b.accumulate_grad(&g.transpose().matmul(&a.value()));
                }
            })),
            requires,
        )
    }

    /// Adds a `1 × cols` bias row to every row.
    pub fn add_bias(&self, bias: &Tensor) -> Tensor {
        let value = self.value().add_row_broadcast(&bias.value());
        let (a, b) = (self.clone(), bias.clone());
        let requires = a.requires_grad() || b.requires_grad();
        Tensor::make(
            value,
            vec![a.clone(), b.clone()],
            Some(Box::new(move |g: &Matrix| {
                if a.requires_grad() {
                    a.accumulate_grad(g);
                }
                if b.requires_grad() {
                    b.accumulate_grad(&g.sum_rows());
                }
            })),
            requires,
        )
    }

    /// Rectified linear unit.
    pub fn relu(&self) -> Tensor {
        let input = self.value();
        let value = input.map(|v| v.max(0.0));
        let a = self.clone();
        let requires = a.requires_grad();
        Tensor::make(
            value,
            vec![a.clone()],
            Some(Box::new(move |g: &Matrix| {
                if a.requires_grad() {
                    let mask = a.value().map(|v| if v > 0.0 { 1.0 } else { 0.0 });
                    a.accumulate_grad(&g.hadamard(&mask));
                }
            })),
            requires,
        )
    }

    /// Hyperbolic tangent.
    pub fn tanh(&self) -> Tensor {
        let value = self.value().map(f32::tanh);
        let a = self.clone();
        let out_value = value.clone();
        let requires = a.requires_grad();
        Tensor::make(
            value,
            vec![a.clone()],
            Some(Box::new(move |g: &Matrix| {
                if a.requires_grad() {
                    let deriv = out_value.map(|t| 1.0 - t * t);
                    a.accumulate_grad(&g.hadamard(&deriv));
                }
            })),
            requires,
        )
    }

    /// Logistic sigmoid.
    pub fn sigmoid(&self) -> Tensor {
        let value = self.value().map(|v| 1.0 / (1.0 + (-v).exp()));
        let a = self.clone();
        let out_value = value.clone();
        let requires = a.requires_grad();
        Tensor::make(
            value,
            vec![a.clone()],
            Some(Box::new(move |g: &Matrix| {
                if a.requires_grad() {
                    let deriv = out_value.map(|s| s * (1.0 - s));
                    a.accumulate_grad(&g.hadamard(&deriv));
                }
            })),
            requires,
        )
    }

    /// Row-wise softmax.
    pub fn softmax_rows(&self) -> Tensor {
        let value = self.value().softmax_rows();
        let a = self.clone();
        let soft = value.clone();
        let requires = a.requires_grad();
        Tensor::make(
            value,
            vec![a.clone()],
            Some(Box::new(move |g: &Matrix| {
                if !a.requires_grad() {
                    return;
                }
                // d x_i = s_i * (g_i - Σ_j g_j s_j), row-wise.
                let mut out = Matrix::zeros(soft.rows(), soft.cols());
                for r in 0..soft.rows() {
                    let dot: f32 = (0..soft.cols()).map(|c| g.get(r, c) * soft.get(r, c)).sum();
                    for c in 0..soft.cols() {
                        out.set(r, c, soft.get(r, c) * (g.get(r, c) - dot));
                    }
                }
                a.accumulate_grad(&out);
            })),
            requires,
        )
    }

    /// Element-wise exponential.
    pub fn exp(&self) -> Tensor {
        let value = self.value().map(|v| v.clamp(-30.0, 30.0).exp());
        let a = self.clone();
        let out_value = value.clone();
        let requires = a.requires_grad();
        Tensor::make(
            value,
            vec![a.clone()],
            Some(Box::new(move |g: &Matrix| {
                if a.requires_grad() {
                    a.accumulate_grad(&g.hadamard(&out_value));
                }
            })),
            requires,
        )
    }

    /// Element-wise natural logarithm (inputs are clamped at `1e-12` to keep
    /// the operation defined for probabilities that underflow to zero).
    pub fn ln(&self) -> Tensor {
        let value = self.value().map(|v| v.max(1e-12).ln());
        let a = self.clone();
        let requires = a.requires_grad();
        Tensor::make(
            value,
            vec![a.clone()],
            Some(Box::new(move |g: &Matrix| {
                if a.requires_grad() {
                    let deriv = a.value().map(|v| 1.0 / v.max(1e-12));
                    a.accumulate_grad(&g.hadamard(&deriv));
                }
            })),
            requires,
        )
    }

    /// Mean over all entries (scalar output).
    pub fn mean(&self) -> Tensor {
        let (rows, cols) = self.shape();
        let count = (rows * cols) as f32;
        let value = Matrix::full(1, 1, self.value().mean());
        let a = self.clone();
        let requires = a.requires_grad();
        Tensor::make(
            value,
            vec![a.clone()],
            Some(Box::new(move |g: &Matrix| {
                if a.requires_grad() {
                    let (r, c) = a.shape();
                    a.accumulate_grad(&Matrix::full(r, c, g.get(0, 0) / count));
                }
            })),
            requires,
        )
    }

    /// Sum over all entries (scalar output).
    pub fn sum(&self) -> Tensor {
        let value = Matrix::full(1, 1, self.value().sum());
        let a = self.clone();
        let requires = a.requires_grad();
        Tensor::make(
            value,
            vec![a.clone()],
            Some(Box::new(move |g: &Matrix| {
                if a.requires_grad() {
                    let (r, c) = a.shape();
                    a.accumulate_grad(&Matrix::full(r, c, g.get(0, 0)));
                }
            })),
            requires,
        )
    }

    /// Selects a contiguous column range `[start, end)`.
    pub fn slice_cols(&self, start: usize, end: usize) -> Tensor {
        let input = self.value();
        let rows = input.rows();
        let width = end - start;
        let mut value = Matrix::zeros(rows, width);
        for r in 0..rows {
            for c in 0..width {
                value.set(r, c, input.get(r, start + c));
            }
        }
        let a = self.clone();
        let requires = a.requires_grad();
        Tensor::make(
            value,
            vec![a.clone()],
            Some(Box::new(move |g: &Matrix| {
                if a.requires_grad() {
                    let (ar, ac) = a.shape();
                    let mut scattered = Matrix::zeros(ar, ac);
                    for r in 0..g.rows() {
                        for c in 0..g.cols() {
                            scattered.set(r, start + c, g.get(r, c));
                        }
                    }
                    a.accumulate_grad(&scattered);
                }
            })),
            requires,
        )
    }

    /// Concatenates tensors horizontally (all must share the row count).
    pub fn concat_cols(parts: &[Tensor]) -> Tensor {
        assert!(!parts.is_empty(), "concat_cols needs at least one tensor");
        let rows = parts[0].shape().0;
        let total: usize = parts.iter().map(|p| p.shape().1).sum();
        let mut value = Matrix::zeros(rows, total);
        let mut offset = 0;
        for p in parts {
            let v = p.value();
            for r in 0..rows {
                for c in 0..v.cols() {
                    value.set(r, offset + c, v.get(r, c));
                }
            }
            offset += v.cols();
        }
        let owned: Vec<Tensor> = parts.to_vec();
        let requires = owned.iter().any(Tensor::requires_grad);
        let parents = owned.clone();
        Tensor::make(
            value,
            parents,
            Some(Box::new(move |g: &Matrix| {
                let mut offset = 0;
                for p in &owned {
                    let (pr, pc) = p.shape();
                    if p.requires_grad() {
                        let mut slice = Matrix::zeros(pr, pc);
                        for r in 0..pr {
                            for c in 0..pc {
                                slice.set(r, c, g.get(r, offset + c));
                            }
                        }
                        p.accumulate_grad(&slice);
                    }
                    offset += pc;
                }
            })),
            requires,
        )
    }

    /// Selects a single row as a `1 × cols` tensor (e.g. the `CLS` position).
    pub fn row(&self, index: usize) -> Tensor {
        let input = self.value();
        let mut value = Matrix::zeros(1, input.cols());
        for c in 0..input.cols() {
            value.set(0, c, input.get(index, c));
        }
        let a = self.clone();
        let requires = a.requires_grad();
        Tensor::make(
            value,
            vec![a.clone()],
            Some(Box::new(move |g: &Matrix| {
                if a.requires_grad() {
                    let (ar, ac) = a.shape();
                    let mut scattered = Matrix::zeros(ar, ac);
                    for c in 0..ac {
                        scattered.set(index, c, g.get(0, c));
                    }
                    a.accumulate_grad(&scattered);
                }
            })),
            requires,
        )
    }

    /// Gathers rows of an embedding table by token id.
    pub fn embedding_lookup(table: &Tensor, ids: &[usize]) -> Tensor {
        let weights = table.value();
        let dim = weights.cols();
        let mut value = Matrix::zeros(ids.len(), dim);
        for (r, &id) in ids.iter().enumerate() {
            for c in 0..dim {
                value.set(r, c, weights.get(id, c));
            }
        }
        let t = table.clone();
        let ids_owned: Vec<usize> = ids.to_vec();
        let requires = t.requires_grad();
        Tensor::make(
            value,
            vec![t.clone()],
            Some(Box::new(move |g: &Matrix| {
                if t.requires_grad() {
                    let (tr, tc) = t.shape();
                    let mut scattered = Matrix::zeros(tr, tc);
                    for (r, &id) in ids_owned.iter().enumerate() {
                        for c in 0..tc {
                            scattered.set(id, c, scattered.get(id, c) + g.get(r, c));
                        }
                    }
                    t.accumulate_grad(&scattered);
                }
            })),
            requires,
        )
    }

    /// Row-wise layer normalization with learnable gain and bias
    /// (`gamma`, `beta` are `1 × cols`).
    pub fn layer_norm(&self, gamma: &Tensor, beta: &Tensor, eps: f32) -> Tensor {
        let input = self.value();
        let (rows, cols) = (input.rows(), input.cols());
        let mut normalized = Matrix::zeros(rows, cols);
        let mut inv_std = vec![0.0f32; rows];
        for (r, inv_std_r) in inv_std.iter_mut().enumerate() {
            let mean: f32 = (0..cols).map(|c| input.get(r, c)).sum::<f32>() / cols as f32;
            let var: f32 = (0..cols)
                .map(|c| (input.get(r, c) - mean).powi(2))
                .sum::<f32>()
                / cols as f32;
            *inv_std_r = 1.0 / (var + eps).sqrt();
            for c in 0..cols {
                normalized.set(r, c, (input.get(r, c) - mean) * *inv_std_r);
            }
        }
        let mut value = Matrix::zeros(rows, cols);
        let gamma_v = gamma.value();
        let beta_v = beta.value();
        for r in 0..rows {
            for c in 0..cols {
                value.set(
                    r,
                    c,
                    normalized.get(r, c) * gamma_v.get(0, c) + beta_v.get(0, c),
                );
            }
        }
        let (a, gm, bt) = (self.clone(), gamma.clone(), beta.clone());
        let requires = a.requires_grad() || gm.requires_grad() || bt.requires_grad();
        let saved_norm = normalized;
        let saved_inv_std = inv_std;
        Tensor::make(
            value,
            vec![a.clone(), gm.clone(), bt.clone()],
            Some(Box::new(move |g: &Matrix| {
                let (rows, cols) = (g.rows(), g.cols());
                let gamma_v = gm.value();
                if gm.requires_grad() {
                    let mut dgamma = Matrix::zeros(1, cols);
                    for r in 0..rows {
                        for c in 0..cols {
                            dgamma.set(0, c, dgamma.get(0, c) + g.get(r, c) * saved_norm.get(r, c));
                        }
                    }
                    gm.accumulate_grad(&dgamma);
                }
                if bt.requires_grad() {
                    bt.accumulate_grad(&g.sum_rows());
                }
                if a.requires_grad() {
                    let mut dx = Matrix::zeros(rows, cols);
                    for (r, &inv_std_r) in saved_inv_std.iter().enumerate().take(rows) {
                        // dY/dX for layer norm (standard formula).
                        let dnorm: Vec<f32> =
                            (0..cols).map(|c| g.get(r, c) * gamma_v.get(0, c)).collect();
                        let mean_dnorm: f32 = dnorm.iter().sum::<f32>() / cols as f32;
                        let mean_dnorm_norm: f32 = dnorm
                            .iter()
                            .enumerate()
                            .map(|(c, &d)| d * saved_norm.get(r, c))
                            .sum::<f32>()
                            / cols as f32;
                        for (c, &d) in dnorm.iter().enumerate() {
                            let v = (d - mean_dnorm - saved_norm.get(r, c) * mean_dnorm_norm)
                                * inv_std_r;
                            dx.set(r, c, v);
                        }
                    }
                    a.accumulate_grad(&dx);
                }
            })),
            requires,
        )
    }

    /// Cross-entropy loss between row logits and integer targets, averaged
    /// over rows; `ignore_index` rows (e.g. padding) contribute nothing.
    pub fn cross_entropy(&self, targets: &[usize], ignore_index: Option<usize>) -> Tensor {
        let logits = self.value();
        let probs = logits.softmax_rows();
        let rows = logits.rows();
        let mut total = 0.0f32;
        let mut counted = 0usize;
        for (r, &t) in targets.iter().enumerate().take(rows) {
            if Some(t) == ignore_index {
                continue;
            }
            total -= probs.get(r, t).max(1e-12).ln();
            counted += 1;
        }
        let denom = counted.max(1) as f32;
        let value = Matrix::full(1, 1, total / denom);
        let a = self.clone();
        let targets_owned: Vec<usize> = targets.to_vec();
        let requires = a.requires_grad();
        Tensor::make(
            value,
            vec![a.clone()],
            Some(Box::new(move |g: &Matrix| {
                if !a.requires_grad() {
                    return;
                }
                let logits = a.value();
                let probs = logits.softmax_rows();
                let mut grad = Matrix::zeros(logits.rows(), logits.cols());
                for (r, &t) in targets_owned.iter().enumerate().take(logits.rows()) {
                    if Some(t) == ignore_index {
                        continue;
                    }
                    for c in 0..logits.cols() {
                        let indicator = if c == t { 1.0 } else { 0.0 };
                        grad.set(r, c, (probs.get(r, c) - indicator) / denom);
                    }
                }
                a.accumulate_grad(&grad.scale(g.get(0, 0)));
            })),
            requires,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn numeric_grad(f: impl Fn(&Matrix) -> f32, at: &Matrix, eps: f32) -> Matrix {
        let mut grad = Matrix::zeros(at.rows(), at.cols());
        for r in 0..at.rows() {
            for c in 0..at.cols() {
                let mut plus = at.clone();
                plus.set(r, c, plus.get(r, c) + eps);
                let mut minus = at.clone();
                minus.set(r, c, minus.get(r, c) - eps);
                grad.set(r, c, (f(&plus) - f(&minus)) / (2.0 * eps));
            }
        }
        grad
    }

    fn assert_close(a: &Matrix, b: &Matrix, tol: f32) {
        assert_eq!((a.rows(), a.cols()), (b.rows(), b.cols()));
        for (x, y) in a.data().iter().zip(b.data()) {
            assert!((x - y).abs() < tol, "gradients differ: {x} vs {y}");
        }
    }

    #[test]
    fn backward_through_matmul_matches_numeric_gradient() {
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(1);
        let a_value = Matrix::xavier(3, 4, &mut rng);
        let b_value = Matrix::xavier(4, 2, &mut rng);

        let a = Tensor::parameter(a_value.clone());
        let b = Tensor::parameter(b_value.clone());
        let loss = a.matmul(&b).relu().mean();
        loss.backward();

        let numeric = numeric_grad(
            |m| {
                Tensor::constant(m.clone())
                    .matmul(&Tensor::constant(b_value.clone()))
                    .relu()
                    .mean()
                    .value()
                    .get(0, 0)
            },
            &a_value,
            1e-3,
        );
        assert_close(&a.grad(), &numeric, 1e-2);
    }

    #[test]
    fn backward_through_softmax_matches_numeric_gradient() {
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(2);
        let x_value = Matrix::xavier(2, 5, &mut rng);
        let x = Tensor::parameter(x_value.clone());
        let loss = x
            .softmax_rows()
            .mul(&Tensor::constant(Matrix::full(2, 5, 0.3)))
            .sum();
        loss.backward();
        let numeric = numeric_grad(
            |m| {
                Tensor::constant(m.clone())
                    .softmax_rows()
                    .mul(&Tensor::constant(Matrix::full(2, 5, 0.3)))
                    .sum()
                    .value()
                    .get(0, 0)
            },
            &x_value,
            1e-3,
        );
        assert_close(&x.grad(), &numeric, 1e-2);
    }

    #[test]
    fn backward_through_layer_norm_matches_numeric_gradient() {
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(3);
        let x_value = Matrix::xavier(3, 6, &mut rng);
        let gamma = Matrix::full(1, 6, 1.2);
        let beta = Matrix::full(1, 6, -0.1);
        let x = Tensor::parameter(x_value.clone());
        let loss = x
            .layer_norm(
                &Tensor::constant(gamma.clone()),
                &Tensor::constant(beta.clone()),
                1e-5,
            )
            .tanh()
            .mean();
        loss.backward();
        let numeric = numeric_grad(
            |m| {
                Tensor::constant(m.clone())
                    .layer_norm(
                        &Tensor::constant(gamma.clone()),
                        &Tensor::constant(beta.clone()),
                        1e-5,
                    )
                    .tanh()
                    .mean()
                    .value()
                    .get(0, 0)
            },
            &x_value,
            1e-3,
        );
        assert_close(&x.grad(), &numeric, 2e-2);
    }

    #[test]
    fn backward_through_cross_entropy_matches_numeric_gradient() {
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(4);
        let x_value = Matrix::xavier(3, 4, &mut rng);
        let targets = vec![0usize, 2, 3];
        let x = Tensor::parameter(x_value.clone());
        let loss = x.cross_entropy(&targets, None);
        loss.backward();
        let numeric = numeric_grad(
            |m| {
                Tensor::constant(m.clone())
                    .cross_entropy(&targets, None)
                    .value()
                    .get(0, 0)
            },
            &x_value,
            1e-3,
        );
        assert_close(&x.grad(), &numeric, 1e-2);
    }

    #[test]
    fn embedding_lookup_accumulates_into_used_rows_only() {
        let table = Tensor::parameter(Matrix::from_vec(3, 2, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]));
        let out = Tensor::embedding_lookup(&table, &[0, 2, 2]);
        assert_eq!(out.value().data(), &[1.0, 2.0, 5.0, 6.0, 5.0, 6.0]);
        out.sum().backward();
        let grad = table.grad();
        assert_eq!(grad.get(0, 0), 1.0);
        assert_eq!(grad.get(1, 0), 0.0, "unused row gets no gradient");
        assert_eq!(grad.get(2, 0), 2.0, "row used twice accumulates twice");
    }

    #[test]
    fn slice_and_concat_are_inverse_shapes() {
        let x = Tensor::parameter(Matrix::from_vec(2, 4, (0..8).map(|v| v as f32).collect()));
        let left = x.slice_cols(0, 2);
        let right = x.slice_cols(2, 4);
        let back = Tensor::concat_cols(&[left, right]);
        assert_eq!(back.value(), x.value());
        back.sum().backward();
        assert_eq!(x.grad(), Matrix::full(2, 4, 1.0));
    }

    #[test]
    fn repeated_operand_accumulates_both_contributions() {
        // loss = mean(x ⊙ x): d/dx = 2x / n.
        let x = Tensor::parameter(Matrix::from_vec(1, 3, vec![1.0, -2.0, 3.0]));
        x.mul(&x).mean().backward();
        let g = x.grad();
        assert!((g.get(0, 0) - 2.0 / 3.0).abs() < 1e-5);
        assert!((g.get(0, 1) + 4.0 / 3.0).abs() < 1e-5);
    }

    #[test]
    fn constants_receive_no_gradient() {
        let x = Tensor::parameter(Matrix::full(1, 2, 1.0));
        let c = Tensor::constant(Matrix::full(1, 2, 5.0));
        x.mul(&c).sum().backward();
        assert_eq!(c.grad(), Matrix::zeros(1, 2));
        assert_eq!(x.grad(), Matrix::full(1, 2, 5.0));
    }

    #[test]
    #[should_panic(expected = "scalar loss")]
    fn backward_requires_a_scalar() {
        let x = Tensor::parameter(Matrix::zeros(2, 2));
        x.relu().backward();
    }

    #[test]
    fn zero_grad_resets_accumulation() {
        let x = Tensor::parameter(Matrix::full(1, 1, 2.0));
        x.mul(&x).mean().backward();
        assert!(x.grad().get(0, 0) > 0.0);
        x.zero_grad();
        assert_eq!(x.grad().get(0, 0), 0.0);
    }
}
