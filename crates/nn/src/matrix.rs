//! A minimal dense row-major `f32` matrix.
//!
//! This is the storage type underneath the autodiff [`Tensor`](crate::Tensor);
//! it implements exactly the operations the CHEHAB RL networks need
//! (mat-mul, broadcasting adds, element-wise maps, row-wise softmax and
//! normalization statistics).

use rand::Rng;
use serde::{Deserialize, Serialize};

/// A dense row-major matrix of `f32` values.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl Matrix {
    /// A matrix filled with zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// A matrix filled with a constant.
    pub fn full(rows: usize, cols: usize, value: f32) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![value; rows * cols],
        }
    }

    /// Builds a matrix from a row-major data vector.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Self {
        assert_eq!(data.len(), rows * cols, "matrix data length mismatch");
        Matrix { rows, cols, data }
    }

    /// Builds a single-row matrix.
    pub fn row_vector(data: Vec<f32>) -> Self {
        let cols = data.len();
        Matrix {
            rows: 1,
            cols,
            data,
        }
    }

    /// Xavier/Glorot-uniform initialization.
    pub fn xavier(rows: usize, cols: usize, rng: &mut impl Rng) -> Self {
        let limit = (6.0 / (rows + cols) as f32).sqrt();
        let data = (0..rows * cols)
            .map(|_| rng.gen_range(-limit..limit))
            .collect();
        Matrix { rows, cols, data }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// The underlying row-major data.
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Mutable access to the underlying data.
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Element access.
    pub fn get(&self, r: usize, c: usize) -> f32 {
        self.data[r * self.cols + c]
    }

    /// Element assignment.
    pub fn set(&mut self, r: usize, c: usize, v: f32) {
        self.data[r * self.cols + c] = v;
    }

    /// Matrix product `self · other`.
    ///
    /// # Panics
    ///
    /// Panics if the inner dimensions disagree.
    pub fn matmul(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.cols, other.rows, "matmul dimension mismatch");
        let mut out = Matrix::zeros(self.rows, other.cols);
        for i in 0..self.rows {
            for k in 0..self.cols {
                let a = self.get(i, k);
                if a == 0.0 {
                    continue;
                }
                let row_out = &mut out.data[i * other.cols..(i + 1) * other.cols];
                let row_b = &other.data[k * other.cols..(k + 1) * other.cols];
                for (o, &b) in row_out.iter_mut().zip(row_b) {
                    *o += a * b;
                }
            }
        }
        out
    }

    /// Transpose.
    pub fn transpose(&self) -> Matrix {
        let mut out = Matrix::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                out.set(c, r, self.get(r, c));
            }
        }
        out
    }

    /// Element-wise combination of two same-shape matrices.
    ///
    /// # Panics
    ///
    /// Panics if the shapes disagree.
    pub fn zip(&self, other: &Matrix, f: impl Fn(f32, f32) -> f32) -> Matrix {
        assert_eq!(
            (self.rows, self.cols),
            (other.rows, other.cols),
            "shape mismatch"
        );
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self
                .data
                .iter()
                .zip(&other.data)
                .map(|(&a, &b)| f(a, b))
                .collect(),
        }
    }

    /// Element-wise map.
    pub fn map(&self, f: impl Fn(f32) -> f32) -> Matrix {
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|&a| f(a)).collect(),
        }
    }

    /// Element-wise addition.
    pub fn add(&self, other: &Matrix) -> Matrix {
        self.zip(other, |a, b| a + b)
    }

    /// Element-wise subtraction.
    pub fn sub(&self, other: &Matrix) -> Matrix {
        self.zip(other, |a, b| a - b)
    }

    /// Element-wise (Hadamard) product.
    pub fn hadamard(&self, other: &Matrix) -> Matrix {
        self.zip(other, |a, b| a * b)
    }

    /// Scalar multiplication.
    pub fn scale(&self, k: f32) -> Matrix {
        self.map(|a| a * k)
    }

    /// Adds a `1 × cols` row vector to every row.
    ///
    /// # Panics
    ///
    /// Panics if `bias` is not a row vector of matching width.
    pub fn add_row_broadcast(&self, bias: &Matrix) -> Matrix {
        assert_eq!(bias.rows, 1, "bias must be a row vector");
        assert_eq!(bias.cols, self.cols, "bias width mismatch");
        let mut out = self.clone();
        for r in 0..self.rows {
            for c in 0..self.cols {
                out.data[r * self.cols + c] += bias.data[c];
            }
        }
        out
    }

    /// Sums all rows into a `1 × cols` row vector.
    pub fn sum_rows(&self) -> Matrix {
        let mut out = Matrix::zeros(1, self.cols);
        for r in 0..self.rows {
            for c in 0..self.cols {
                out.data[c] += self.get(r, c);
            }
        }
        out
    }

    /// Sum of all entries.
    pub fn sum(&self) -> f32 {
        self.data.iter().sum()
    }

    /// Mean of all entries.
    pub fn mean(&self) -> f32 {
        if self.data.is_empty() {
            0.0
        } else {
            self.sum() / self.data.len() as f32
        }
    }

    /// Row-wise softmax.
    pub fn softmax_rows(&self) -> Matrix {
        let mut out = self.clone();
        for r in 0..self.rows {
            let row = &mut out.data[r * self.cols..(r + 1) * self.cols];
            let max = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
            let mut denom = 0.0;
            for v in row.iter_mut() {
                *v = (*v - max).exp();
                denom += *v;
            }
            for v in row.iter_mut() {
                *v /= denom.max(1e-12);
            }
        }
        out
    }

    /// Index of the maximum entry of each row.
    pub fn argmax_rows(&self) -> Vec<usize> {
        (0..self.rows)
            .map(|r| {
                let row = &self.data[r * self.cols..(r + 1) * self.cols];
                row.iter()
                    .enumerate()
                    .max_by(|a, b| a.1.partial_cmp(b.1).unwrap_or(std::cmp::Ordering::Equal))
                    .map(|(i, _)| i)
                    .unwrap_or(0)
            })
            .collect()
    }

    /// Frobenius norm.
    pub fn norm(&self) -> f32 {
        self.data.iter().map(|v| v * v).sum::<f32>().sqrt()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn matmul_matches_hand_computation() {
        let a = Matrix::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let b = Matrix::from_vec(3, 2, vec![7.0, 8.0, 9.0, 10.0, 11.0, 12.0]);
        let c = a.matmul(&b);
        assert_eq!(c.data(), &[58.0, 64.0, 139.0, 154.0]);
    }

    #[test]
    fn transpose_swaps_dimensions() {
        let a = Matrix::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let t = a.transpose();
        assert_eq!((t.rows(), t.cols()), (3, 2));
        assert_eq!(t.get(0, 1), 4.0);
        assert_eq!(a.transpose().transpose(), a);
    }

    #[test]
    fn broadcasting_adds_the_bias_to_every_row() {
        let a = Matrix::zeros(3, 2);
        let bias = Matrix::row_vector(vec![1.0, -1.0]);
        let out = a.add_row_broadcast(&bias);
        for r in 0..3 {
            assert_eq!(out.get(r, 0), 1.0);
            assert_eq!(out.get(r, 1), -1.0);
        }
    }

    #[test]
    fn softmax_rows_are_distributions() {
        let a = Matrix::from_vec(2, 3, vec![1.0, 2.0, 3.0, -1.0, 0.0, 1.0]);
        let s = a.softmax_rows();
        for r in 0..2 {
            let sum: f32 = (0..3).map(|c| s.get(r, c)).sum();
            assert!((sum - 1.0).abs() < 1e-5);
            assert!(s.get(r, 2) > s.get(r, 0));
        }
    }

    #[test]
    fn argmax_rows_finds_the_largest_entry() {
        let a = Matrix::from_vec(2, 3, vec![0.1, 0.9, 0.0, 5.0, -2.0, 3.0]);
        assert_eq!(a.argmax_rows(), vec![1, 0]);
    }

    #[test]
    fn reductions_are_consistent() {
        let a = Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]);
        assert_eq!(a.sum(), 10.0);
        assert_eq!(a.mean(), 2.5);
        assert_eq!(a.sum_rows().data(), &[4.0, 6.0]);
    }

    #[test]
    fn xavier_initialization_is_bounded_and_seeded() {
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(1);
        let m = Matrix::xavier(8, 8, &mut rng);
        let limit = (6.0 / 16.0_f32).sqrt();
        assert!(m.data().iter().all(|v| v.abs() <= limit));
        let mut rng2 = rand_chacha::ChaCha8Rng::seed_from_u64(1);
        assert_eq!(m, Matrix::xavier(8, 8, &mut rng2));
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn matmul_rejects_bad_shapes() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        let _ = a.matmul(&b);
    }
}
