//! Basic trainable layers: linear projections, multi-layer perceptrons, and
//! layer normalization, plus the lightweight module conventions (parameter
//! collection and state save/load) shared by all networks in this crate.

use crate::matrix::Matrix;
use crate::tensor::Tensor;
use rand::Rng;

/// Collects the trainable parameters of a network component.
pub trait Module {
    /// All trainable parameters, in a stable order.
    fn parameters(&self) -> Vec<Tensor>;

    /// Number of scalar weights.
    fn parameter_count(&self) -> usize {
        self.parameters()
            .iter()
            .map(|p| {
                let (r, c) = p.shape();
                r * c
            })
            .sum()
    }

    /// Snapshots every parameter matrix (used for policy serialization).
    fn state(&self) -> Vec<Matrix> {
        self.parameters().iter().map(Tensor::value).collect()
    }

    /// Restores a snapshot produced by [`Module::state`].
    ///
    /// # Panics
    ///
    /// Panics if the number or shapes of matrices do not match.
    fn load_state(&self, state: &[Matrix]) {
        let params = self.parameters();
        assert_eq!(params.len(), state.len(), "state length mismatch");
        for (p, m) in params.iter().zip(state) {
            p.set_value(m.clone());
        }
    }

    /// Zeroes the gradient of every parameter.
    fn zero_grad(&self) {
        for p in self.parameters() {
            p.zero_grad();
        }
    }
}

/// A fully connected layer `y = x·W + b`.
#[derive(Debug)]
pub struct Linear {
    weight: Tensor,
    bias: Tensor,
}

impl Linear {
    /// Creates a layer with Xavier-initialized weights.
    pub fn new(in_dim: usize, out_dim: usize, rng: &mut impl Rng) -> Self {
        Linear {
            weight: Tensor::parameter(Matrix::xavier(in_dim, out_dim, rng)),
            bias: Tensor::parameter(Matrix::zeros(1, out_dim)),
        }
    }

    /// Applies the layer to a `batch × in_dim` input.
    pub fn forward(&self, x: &Tensor) -> Tensor {
        x.matmul(&self.weight).add_bias(&self.bias)
    }

    /// Input dimension.
    pub fn in_dim(&self) -> usize {
        self.weight.shape().0
    }

    /// Output dimension.
    pub fn out_dim(&self) -> usize {
        self.weight.shape().1
    }
}

impl Module for Linear {
    fn parameters(&self) -> Vec<Tensor> {
        vec![self.weight.clone(), self.bias.clone()]
    }
}

/// Activation functions available to [`Mlp`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Activation {
    /// Rectified linear unit.
    Relu,
    /// Hyperbolic tangent.
    Tanh,
    /// No activation (identity).
    Identity,
}

impl Activation {
    fn apply(self, x: &Tensor) -> Tensor {
        match self {
            Activation::Relu => x.relu(),
            Activation::Tanh => x.tanh(),
            Activation::Identity => x.clone(),
        }
    }
}

/// A multi-layer perceptron with a configurable list of hidden sizes; hidden
/// layers use the given activation, the output layer is linear.
#[derive(Debug)]
pub struct Mlp {
    layers: Vec<Linear>,
    activation: Activation,
}

impl Mlp {
    /// Creates an MLP with the given layer sizes, e.g. `&[256, 128, 64, 10]`
    /// builds three weight matrices.
    ///
    /// # Panics
    ///
    /// Panics if fewer than two sizes are given.
    pub fn new(sizes: &[usize], activation: Activation, rng: &mut impl Rng) -> Self {
        assert!(sizes.len() >= 2, "an MLP needs an input and an output size");
        let layers = sizes
            .windows(2)
            .map(|pair| Linear::new(pair[0], pair[1], rng))
            .collect();
        Mlp { layers, activation }
    }

    /// Applies the network.
    pub fn forward(&self, x: &Tensor) -> Tensor {
        let mut h = x.clone();
        for (i, layer) in self.layers.iter().enumerate() {
            h = layer.forward(&h);
            if i + 1 < self.layers.len() {
                h = self.activation.apply(&h);
            }
        }
        h
    }

    /// Output dimension of the final layer.
    pub fn out_dim(&self) -> usize {
        self.layers.last().expect("at least one layer").out_dim()
    }
}

impl Module for Mlp {
    fn parameters(&self) -> Vec<Tensor> {
        self.layers.iter().flat_map(Module::parameters).collect()
    }
}

/// Learnable layer normalization (`gamma`, `beta` over the feature axis).
#[derive(Debug)]
pub struct LayerNorm {
    gamma: Tensor,
    beta: Tensor,
    eps: f32,
}

impl LayerNorm {
    /// Creates a layer-norm over `dim` features.
    pub fn new(dim: usize) -> Self {
        LayerNorm {
            gamma: Tensor::parameter(Matrix::full(1, dim, 1.0)),
            beta: Tensor::parameter(Matrix::zeros(1, dim)),
            eps: 1e-5,
        }
    }

    /// Applies normalization row-wise.
    pub fn forward(&self, x: &Tensor) -> Tensor {
        x.layer_norm(&self.gamma, &self.beta, self.eps)
    }
}

impl Module for LayerNorm {
    fn parameters(&self) -> Vec<Tensor> {
        vec![self.gamma.clone(), self.beta.clone()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::optim::Adam;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn linear_shapes_and_parameters() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let layer = Linear::new(4, 3, &mut rng);
        let out = layer.forward(&Tensor::constant(Matrix::zeros(5, 4)));
        assert_eq!(out.shape(), (5, 3));
        assert_eq!(layer.parameter_count(), 4 * 3 + 3);
        assert_eq!(layer.in_dim(), 4);
        assert_eq!(layer.out_dim(), 3);
    }

    #[test]
    fn mlp_stacks_layers() {
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let mlp = Mlp::new(&[8, 16, 4], Activation::Relu, &mut rng);
        let out = mlp.forward(&Tensor::constant(Matrix::zeros(2, 8)));
        assert_eq!(out.shape(), (2, 4));
        assert_eq!(mlp.parameters().len(), 4);
        assert_eq!(mlp.out_dim(), 4);
    }

    #[test]
    fn state_round_trips_through_save_and_load() {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let a = Mlp::new(&[4, 8, 2], Activation::Tanh, &mut rng);
        let b = Mlp::new(&[4, 8, 2], Activation::Tanh, &mut rng);
        let input = Tensor::constant(Matrix::full(1, 4, 0.5));
        assert_ne!(a.forward(&input).value(), b.forward(&input).value());
        b.load_state(&a.state());
        assert_eq!(a.forward(&input).value(), b.forward(&input).value());
    }

    #[test]
    fn layer_norm_normalizes_rows() {
        let ln = LayerNorm::new(4);
        let x = Tensor::constant(Matrix::from_vec(1, 4, vec![1.0, 2.0, 3.0, 4.0]));
        let out = ln.forward(&x).value();
        let mean: f32 = out.data().iter().sum::<f32>() / 4.0;
        assert!(mean.abs() < 1e-5);
    }

    #[test]
    fn mlp_learns_a_simple_regression_task() {
        // Fit y = 2*x0 - x1 with a small MLP; the loss must drop sharply.
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        let mlp = Mlp::new(&[2, 16, 1], Activation::Tanh, &mut rng);
        let mut optimizer = Adam::new(mlp.parameters(), 0.02);
        let inputs: Vec<(f32, f32)> = (0..32)
            .map(|i| ((i % 8) as f32 / 8.0 - 0.5, (i / 8) as f32 / 4.0 - 0.5))
            .collect();
        let x = Matrix::from_vec(32, 2, inputs.iter().flat_map(|&(a, b)| [a, b]).collect());
        let y = Matrix::from_vec(32, 1, inputs.iter().map(|&(a, b)| 2.0 * a - b).collect());
        let mut first_loss = 0.0;
        let mut last_loss = 0.0;
        for step in 0..300 {
            mlp.zero_grad();
            let pred = mlp.forward(&Tensor::constant(x.clone()));
            let diff = pred.sub(&Tensor::constant(y.clone()));
            let loss = diff.mul(&diff).mean();
            loss.backward();
            optimizer.step();
            if step == 0 {
                first_loss = loss.value().get(0, 0);
            }
            last_loss = loss.value().get(0, 0);
        }
        assert!(
            last_loss < first_loss * 0.05,
            "loss did not drop: {first_loss} -> {last_loss}"
        );
    }
}
