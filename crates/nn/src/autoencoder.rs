//! Sequence autoencoders for the encoder-architecture ablation
//! (Appendix I.1, Figure 11, Table 7).
//!
//! The encoder (Transformer or GRU) pools a token sequence into a
//! fixed-length embedding; a shared non-autoregressive decoder then predicts
//! the token at every position from the pooled embedding plus a positional
//! code. Reconstruction accuracy measures how much structural information the
//! encoder preserves — the criterion the paper uses to select the
//! Transformer for the RL state representation.

use crate::gru::GruEncoder;
use crate::layers::{Activation, Mlp, Module};
use crate::matrix::Matrix;
use crate::optim::Adam;
use crate::tensor::Tensor;
use crate::transformer::{TransformerConfig, TransformerEncoder};
use rand::Rng;

/// Which encoder architecture an autoencoder uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EncoderKind {
    /// Self-attention encoder (the paper's choice).
    Transformer,
    /// Recurrent (GRU) encoder baseline.
    Gru,
}

enum EncoderImpl {
    Transformer(TransformerEncoder),
    Gru(GruEncoder),
}

/// A sequence autoencoder: encoder + positional decoder.
pub struct SequenceAutoencoder {
    encoder: EncoderImpl,
    decoder: Mlp,
    positional: Matrix,
    vocab_size: usize,
    max_len: usize,
    dim: usize,
    pad_id: usize,
}

/// Reconstruction quality over a corpus.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ReconstructionAccuracy {
    /// Fraction of sequences reconstructed exactly.
    pub exact_match: f64,
    /// Fraction of individual tokens reconstructed correctly.
    pub token_accuracy: f64,
}

impl SequenceAutoencoder {
    /// Builds an autoencoder around a Transformer encoder.
    pub fn transformer(config: TransformerConfig, pad_id: usize, rng: &mut impl Rng) -> Self {
        let dim = config.model_dim;
        let vocab_size = config.vocab_size;
        let max_len = config.max_len;
        let encoder = TransformerEncoder::new(config, rng);
        Self::with_encoder(
            EncoderImpl::Transformer(encoder),
            vocab_size,
            dim,
            max_len,
            pad_id,
            rng,
        )
    }

    /// Builds an autoencoder around a GRU encoder with matching capacity.
    pub fn gru(
        vocab_size: usize,
        hidden_dim: usize,
        num_layers: usize,
        max_len: usize,
        pad_id: usize,
        rng: &mut impl Rng,
    ) -> Self {
        let encoder = GruEncoder::new(vocab_size, hidden_dim, num_layers, max_len, rng);
        Self::with_encoder(
            EncoderImpl::Gru(encoder),
            vocab_size,
            hidden_dim,
            max_len,
            pad_id,
            rng,
        )
    }

    fn with_encoder(
        encoder: EncoderImpl,
        vocab_size: usize,
        dim: usize,
        max_len: usize,
        pad_id: usize,
        rng: &mut impl Rng,
    ) -> Self {
        let decoder = Mlp::new(&[2 * dim, 2 * dim, vocab_size], Activation::Relu, rng);
        let mut positional = Matrix::zeros(max_len, dim);
        for pos in 0..max_len {
            for i in 0..dim {
                let angle = pos as f32 / 10_000f32.powf((2 * (i / 2)) as f32 / dim as f32);
                positional.set(pos, i, if i % 2 == 0 { angle.sin() } else { angle.cos() });
            }
        }
        SequenceAutoencoder {
            encoder,
            decoder,
            positional,
            vocab_size,
            max_len,
            dim,
            pad_id,
        }
    }

    /// Which encoder kind this autoencoder uses.
    pub fn kind(&self) -> EncoderKind {
        match self.encoder {
            EncoderImpl::Transformer(_) => EncoderKind::Transformer,
            EncoderImpl::Gru(_) => EncoderKind::Gru,
        }
    }

    fn encode(&self, ids: &[usize]) -> Tensor {
        match &self.encoder {
            EncoderImpl::Transformer(t) => t.encode(ids),
            EncoderImpl::Gru(g) => g.encode(ids),
        }
    }

    fn truncate<'a>(&self, ids: &'a [usize]) -> &'a [usize] {
        &ids[..ids.len().min(self.max_len)]
    }

    /// Per-position vocabulary logits (`len × vocab`).
    fn decode_logits(&self, pooled: &Tensor, len: usize) -> Tensor {
        let ones = Tensor::constant(Matrix::full(len, 1, 1.0));
        let broadcast = ones.matmul(pooled);
        let mut pos = Matrix::zeros(len, self.dim);
        for r in 0..len {
            for c in 0..self.dim {
                pos.set(r, c, self.positional.get(r, c));
            }
        }
        let decoder_input = Tensor::concat_cols(&[broadcast, Tensor::constant(pos)]);
        self.decoder.forward(&decoder_input)
    }

    /// Reconstruction loss (cross-entropy per position) for one sequence.
    pub fn reconstruction_loss(&self, ids: &[usize]) -> Tensor {
        let ids = self.truncate(ids);
        let pooled = self.encode(ids);
        let logits = self.decode_logits(&pooled, ids.len());
        logits.cross_entropy(ids, Some(self.pad_id))
    }

    /// Greedy reconstruction of a sequence.
    pub fn reconstruct(&self, ids: &[usize]) -> Vec<usize> {
        let ids = self.truncate(ids);
        let pooled = self.encode(ids);
        let logits = self.decode_logits(&pooled, ids.len());
        logits.value().argmax_rows()
    }

    /// Trains the autoencoder on a corpus for a number of epochs; returns the
    /// mean loss of the final epoch.
    pub fn fit(&mut self, corpus: &[Vec<usize>], epochs: usize, learning_rate: f32) -> f32 {
        let mut optimizer = Adam::new(self.parameters(), learning_rate);
        let mut last_mean = f32::INFINITY;
        for _ in 0..epochs {
            let mut total = 0.0;
            for ids in corpus {
                if ids.is_empty() {
                    continue;
                }
                self.zero_grad();
                let loss = self.reconstruction_loss(ids);
                total += loss.value().get(0, 0);
                loss.backward();
                optimizer.step();
            }
            last_mean = total / corpus.len().max(1) as f32;
        }
        last_mean
    }

    /// Evaluates exact-match and token-level reconstruction accuracy.
    pub fn evaluate(&self, corpus: &[Vec<usize>]) -> ReconstructionAccuracy {
        let mut exact = 0usize;
        let mut token_correct = 0usize;
        let mut token_total = 0usize;
        for ids in corpus {
            let truth = self.truncate(ids);
            if truth.is_empty() {
                continue;
            }
            let predicted = self.reconstruct(truth);
            let mut all_match = true;
            for (t, p) in truth.iter().zip(&predicted) {
                if *t == self.pad_id {
                    continue;
                }
                token_total += 1;
                if t == p {
                    token_correct += 1;
                } else {
                    all_match = false;
                }
            }
            if all_match {
                exact += 1;
            }
        }
        ReconstructionAccuracy {
            exact_match: exact as f64 / corpus.len().max(1) as f64,
            token_accuracy: token_correct as f64 / token_total.max(1) as f64,
        }
    }

    /// The vocabulary size the autoencoder was built for.
    pub fn vocab_size(&self) -> usize {
        self.vocab_size
    }
}

impl Module for SequenceAutoencoder {
    fn parameters(&self) -> Vec<Tensor> {
        let mut params = match &self.encoder {
            EncoderImpl::Transformer(t) => t.parameters(),
            EncoderImpl::Gru(g) => g.parameters(),
        };
        params.extend(self.decoder.parameters());
        params
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn tiny_corpus() -> Vec<Vec<usize>> {
        vec![
            vec![1, 2, 3, 4],
            vec![4, 3, 2, 1],
            vec![1, 3, 1, 3],
            vec![2, 2, 4, 4],
            vec![1, 4, 2, 3],
            vec![3, 1, 4, 2],
        ]
    }

    #[test]
    fn transformer_autoencoder_learns_to_reconstruct_a_tiny_corpus() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let config = TransformerConfig {
            vocab_size: 6,
            model_dim: 24,
            num_heads: 2,
            num_layers: 1,
            ffn_dim: 48,
            max_len: 8,
        };
        let mut ae = SequenceAutoencoder::transformer(config, 0, &mut rng);
        assert_eq!(ae.kind(), EncoderKind::Transformer);
        let corpus = tiny_corpus();
        let before = ae.evaluate(&corpus);
        ae.fit(&corpus, 120, 5e-3);
        let after = ae.evaluate(&corpus);
        assert!(
            after.token_accuracy > before.token_accuracy.max(0.8),
            "token accuracy did not improve enough: {before:?} -> {after:?}"
        );
    }

    #[test]
    fn gru_autoencoder_trains_and_evaluates() {
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let mut ae = SequenceAutoencoder::gru(6, 24, 1, 8, 0, &mut rng);
        assert_eq!(ae.kind(), EncoderKind::Gru);
        let corpus = tiny_corpus();
        let loss = ae.fit(&corpus, 40, 5e-3);
        assert!(loss.is_finite());
        let acc = ae.evaluate(&corpus);
        assert!(
            acc.token_accuracy > 0.2,
            "GRU autoencoder should beat random guessing"
        );
    }

    #[test]
    fn reconstruction_has_the_input_length() {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let config = TransformerConfig::small(8);
        let ae = SequenceAutoencoder::transformer(config, 0, &mut rng);
        assert_eq!(ae.reconstruct(&[1, 2, 3, 4, 5]).len(), 5);
        assert_eq!(ae.vocab_size(), 8);
    }

    #[test]
    fn padding_positions_do_not_count_towards_accuracy() {
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        let config = TransformerConfig::small(8);
        let ae = SequenceAutoencoder::transformer(config, 0, &mut rng);
        let acc = ae.evaluate(&[vec![0, 0, 0, 0]]);
        assert_eq!(
            acc.token_accuracy, 0.0,
            "all-padding sequences contribute no tokens"
        );
    }
}
