//! The Transformer encoder used for program state representation
//! (Section 5.1): token embeddings plus sinusoidal positional encodings,
//! a stack of identical self-attention layers, and `CLS` pooling into a
//! fixed-length program embedding.

use crate::layers::{LayerNorm, Linear, Module};
use crate::matrix::Matrix;
use crate::tensor::Tensor;
use rand::Rng;

/// Configuration of the Transformer encoder.
///
/// The paper's configuration is 4 layers, 8 heads, and a 256-dimensional
/// embedding; [`TransformerConfig::small`] gives a budget-friendly variant
/// used by the scaled-down experiment harness.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TransformerConfig {
    /// Vocabulary size of the token embedding table.
    pub vocab_size: usize,
    /// Embedding / model dimension.
    pub model_dim: usize,
    /// Number of attention heads (must divide `model_dim`).
    pub num_heads: usize,
    /// Number of stacked encoder layers.
    pub num_layers: usize,
    /// Hidden dimension of the position-wise feed-forward network.
    pub ffn_dim: usize,
    /// Maximum sequence length (positional encodings are precomputed).
    pub max_len: usize,
}

impl TransformerConfig {
    /// The configuration described in the paper: 4 layers, 8 heads, 256-d.
    pub fn paper(vocab_size: usize) -> Self {
        TransformerConfig {
            vocab_size,
            model_dim: 256,
            num_heads: 8,
            num_layers: 4,
            ffn_dim: 512,
            max_len: 256,
        }
    }

    /// A small configuration for fast training in tests and the scaled-down
    /// experiment harness.
    pub fn small(vocab_size: usize) -> Self {
        TransformerConfig {
            vocab_size,
            model_dim: 32,
            num_heads: 4,
            num_layers: 2,
            ffn_dim: 64,
            max_len: 96,
        }
    }
}

/// Sinusoidal positional encodings (fixed, not learned).
fn positional_encoding(max_len: usize, dim: usize) -> Matrix {
    let mut pe = Matrix::zeros(max_len, dim);
    for pos in 0..max_len {
        for i in 0..dim {
            let angle = pos as f32 / 10_000f32.powf((2 * (i / 2)) as f32 / dim as f32);
            pe.set(pos, i, if i % 2 == 0 { angle.sin() } else { angle.cos() });
        }
    }
    pe
}

/// Multi-head scaled dot-product self-attention.
#[derive(Debug)]
struct MultiHeadAttention {
    query: Linear,
    key: Linear,
    value: Linear,
    output: Linear,
    num_heads: usize,
    head_dim: usize,
}

impl MultiHeadAttention {
    fn new(model_dim: usize, num_heads: usize, rng: &mut impl Rng) -> Self {
        assert_eq!(
            model_dim % num_heads,
            0,
            "model_dim must be divisible by num_heads"
        );
        MultiHeadAttention {
            query: Linear::new(model_dim, model_dim, rng),
            key: Linear::new(model_dim, model_dim, rng),
            value: Linear::new(model_dim, model_dim, rng),
            output: Linear::new(model_dim, model_dim, rng),
            num_heads,
            head_dim: model_dim / num_heads,
        }
    }

    fn forward(&self, x: &Tensor) -> Tensor {
        let q = self.query.forward(x);
        let k = self.key.forward(x);
        let v = self.value.forward(x);
        let scale = 1.0 / (self.head_dim as f32).sqrt();
        let mut heads = Vec::with_capacity(self.num_heads);
        for h in 0..self.num_heads {
            let (start, end) = (h * self.head_dim, (h + 1) * self.head_dim);
            let qh = q.slice_cols(start, end);
            let kh = k.slice_cols(start, end);
            let vh = v.slice_cols(start, end);
            let scores = qh.matmul_nt(&kh).scale(scale).softmax_rows();
            heads.push(scores.matmul(&vh));
        }
        self.output.forward(&Tensor::concat_cols(&heads))
    }
}

impl Module for MultiHeadAttention {
    fn parameters(&self) -> Vec<Tensor> {
        [&self.query, &self.key, &self.value, &self.output]
            .iter()
            .flat_map(|l| l.parameters())
            .collect()
    }
}

/// One pre-norm Transformer encoder layer: self-attention and feed-forward,
/// each with a residual connection.
#[derive(Debug)]
struct EncoderLayer {
    attention: MultiHeadAttention,
    norm1: LayerNorm,
    norm2: LayerNorm,
    ffn_in: Linear,
    ffn_out: Linear,
}

impl EncoderLayer {
    fn new(config: &TransformerConfig, rng: &mut impl Rng) -> Self {
        EncoderLayer {
            attention: MultiHeadAttention::new(config.model_dim, config.num_heads, rng),
            norm1: LayerNorm::new(config.model_dim),
            norm2: LayerNorm::new(config.model_dim),
            ffn_in: Linear::new(config.model_dim, config.ffn_dim, rng),
            ffn_out: Linear::new(config.ffn_dim, config.model_dim, rng),
        }
    }

    fn forward(&self, x: &Tensor) -> Tensor {
        let attended = self.attention.forward(&self.norm1.forward(x));
        let x = x.add(&attended);
        let ffn = self
            .ffn_out
            .forward(&self.ffn_in.forward(&self.norm2.forward(&x)).relu());
        x.add(&ffn)
    }
}

impl Module for EncoderLayer {
    fn parameters(&self) -> Vec<Tensor> {
        let mut params = self.attention.parameters();
        params.extend(self.norm1.parameters());
        params.extend(self.norm2.parameters());
        params.extend(self.ffn_in.parameters());
        params.extend(self.ffn_out.parameters());
        params
    }
}

/// The full Transformer encoder: embedding, positional encoding, a stack of
/// encoder layers, and `CLS` pooling.
#[derive(Debug)]
pub struct TransformerEncoder {
    config: TransformerConfig,
    embedding: Tensor,
    positional: Matrix,
    layers: Vec<EncoderLayer>,
    final_norm: LayerNorm,
}

impl TransformerEncoder {
    /// Creates an encoder with Xavier-initialized parameters.
    pub fn new(config: TransformerConfig, rng: &mut impl Rng) -> Self {
        let embedding = Tensor::parameter(Matrix::xavier(config.vocab_size, config.model_dim, rng));
        let positional = positional_encoding(config.max_len, config.model_dim);
        let layers = (0..config.num_layers)
            .map(|_| EncoderLayer::new(&config, rng))
            .collect();
        TransformerEncoder {
            config,
            embedding,
            positional,
            layers,
            final_norm: LayerNorm::new(config.model_dim),
        }
    }

    /// The configuration this encoder was built with.
    pub fn config(&self) -> &TransformerConfig {
        &self.config
    }

    /// Encodes a token-id sequence into per-token representations
    /// (`seq_len × model_dim`). Sequences longer than `max_len` are truncated.
    pub fn encode_sequence(&self, token_ids: &[usize]) -> Tensor {
        let ids: Vec<usize> = token_ids
            .iter()
            .copied()
            .take(self.config.max_len)
            .map(|id| id.min(self.config.vocab_size - 1))
            .collect();
        let embedded = Tensor::embedding_lookup(&self.embedding, &ids);
        let mut pos = Matrix::zeros(ids.len(), self.config.model_dim);
        for r in 0..ids.len() {
            for c in 0..self.config.model_dim {
                pos.set(r, c, self.positional.get(r, c));
            }
        }
        let mut h = embedded.add(&Tensor::constant(pos));
        for layer in &self.layers {
            h = layer.forward(&h);
        }
        self.final_norm.forward(&h)
    }

    /// Encodes a sequence and pools it into the fixed-length program
    /// embedding (the representation of the `CLS` token at position 0).
    pub fn encode(&self, token_ids: &[usize]) -> Tensor {
        self.encode_sequence(token_ids).row(0)
    }

    /// The embedding dimension of the pooled representation.
    pub fn embedding_dim(&self) -> usize {
        self.config.model_dim
    }
}

impl Module for TransformerEncoder {
    fn parameters(&self) -> Vec<Tensor> {
        let mut params = vec![self.embedding.clone()];
        for layer in &self.layers {
            params.extend(layer.parameters());
        }
        params.extend(self.final_norm.parameters());
        params
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::optim::Adam;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn small_encoder(seed: u64) -> TransformerEncoder {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        TransformerEncoder::new(TransformerConfig::small(16), &mut rng)
    }

    #[test]
    fn encoding_produces_a_fixed_length_vector() {
        let enc = small_encoder(1);
        let short = enc.encode(&[1, 2, 3]);
        let long = enc.encode(&[1, 2, 3, 4, 5, 6, 7, 8, 9, 10]);
        assert_eq!(short.shape(), (1, 32));
        assert_eq!(long.shape(), (1, 32));
    }

    #[test]
    fn different_sequences_produce_different_embeddings() {
        let enc = small_encoder(2);
        let a = enc.encode(&[1, 2, 3, 4]).value();
        let b = enc.encode(&[4, 3, 2, 1]).value();
        assert_ne!(a, b, "attention must be order sensitive");
    }

    #[test]
    fn sequences_longer_than_max_len_are_truncated() {
        let enc = small_encoder(3);
        let ids: Vec<usize> = (0..500).map(|i| i % 16).collect();
        let out = enc.encode_sequence(&ids);
        assert_eq!(out.shape().0, enc.config().max_len);
    }

    #[test]
    fn out_of_vocabulary_ids_are_clamped() {
        let enc = small_encoder(4);
        let out = enc.encode(&[9999, 3]);
        assert_eq!(out.shape(), (1, 32));
    }

    #[test]
    fn paper_config_matches_section_5_1() {
        let c = TransformerConfig::paper(160);
        assert_eq!(c.model_dim, 256);
        assert_eq!(c.num_heads, 8);
        assert_eq!(c.num_layers, 4);
    }

    #[test]
    fn encoder_gradients_flow_to_the_embedding_table() {
        let enc = small_encoder(5);
        enc.zero_grad();
        let pooled = enc.encode(&[1, 2, 3]);
        // A squared loss gives a position-dependent upstream gradient (the
        // plain mean of a layer-normalized row has an almost-zero gradient by
        // construction).
        pooled.mul(&pooled).mean().backward();
        let grads_nonzero = enc
            .parameters()
            .iter()
            .filter(|p| p.grad().norm() > 0.0)
            .count();
        assert!(
            grads_nonzero > enc.parameters().len() / 2,
            "most parameters should receive gradient"
        );
    }

    #[test]
    fn encoder_can_learn_to_separate_two_token_patterns() {
        // Classify whether token 5 appears in the sequence, using a linear
        // readout on the CLS embedding. Accuracy must exceed chance by a wide
        // margin after a few steps.
        let mut rng = ChaCha8Rng::seed_from_u64(6);
        let enc = TransformerEncoder::new(
            TransformerConfig {
                vocab_size: 8,
                model_dim: 16,
                num_heads: 2,
                num_layers: 1,
                ffn_dim: 32,
                max_len: 12,
            },
            &mut rng,
        );
        let readout = Linear::new(16, 2, &mut rng);
        let mut params = enc.parameters();
        params.extend(readout.parameters());
        let mut optimizer = Adam::new(params, 5e-3);
        let samples: Vec<(Vec<usize>, usize)> = (0..24)
            .map(|i| {
                let has_five = i % 2 == 0;
                let mut seq: Vec<usize> = vec![1, 2, 3, (i % 4) + 1];
                if has_five {
                    seq[2] = 5;
                }
                (seq, usize::from(has_five))
            })
            .collect();
        for _ in 0..60 {
            for (seq, label) in &samples {
                enc.zero_grad();
                readout.zero_grad();
                let logits = readout.forward(&enc.encode(seq));
                let loss = logits.cross_entropy(&[*label], None);
                loss.backward();
                optimizer.step();
            }
        }
        let correct = samples
            .iter()
            .filter(|(seq, label)| {
                let logits = readout.forward(&enc.encode(seq)).value();
                logits.argmax_rows()[0] == *label
            })
            .count();
        assert!(correct >= 20, "only {correct}/24 correct after training");
    }
}
