//! Optimizers: Adam (the one PPO training uses) and plain SGD.

use crate::matrix::Matrix;
use crate::tensor::Tensor;

/// The Adam optimizer (Kingma & Ba) over an explicit parameter list.
#[derive(Debug)]
pub struct Adam {
    params: Vec<Tensor>,
    learning_rate: f32,
    beta1: f32,
    beta2: f32,
    eps: f32,
    step: usize,
    first_moments: Vec<Matrix>,
    second_moments: Vec<Matrix>,
    max_grad_norm: Option<f32>,
}

impl Adam {
    /// Creates an Adam optimizer with the standard momentum constants
    /// (`β1 = 0.9`, `β2 = 0.999`).
    pub fn new(params: Vec<Tensor>, learning_rate: f32) -> Self {
        let first = params
            .iter()
            .map(|p| Matrix::zeros(p.shape().0, p.shape().1))
            .collect();
        let second = params
            .iter()
            .map(|p| Matrix::zeros(p.shape().0, p.shape().1))
            .collect();
        Adam {
            params,
            learning_rate,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            step: 0,
            first_moments: first,
            second_moments: second,
            max_grad_norm: None,
        }
    }

    /// Enables global gradient-norm clipping (PPO commonly clips at 0.5).
    pub fn with_grad_clip(mut self, max_norm: f32) -> Self {
        self.max_grad_norm = Some(max_norm);
        self
    }

    /// The optimized parameters.
    pub fn params(&self) -> &[Tensor] {
        &self.params
    }

    /// Current learning rate.
    pub fn learning_rate(&self) -> f32 {
        self.learning_rate
    }

    /// Updates the learning rate (e.g. for schedules).
    pub fn set_learning_rate(&mut self, lr: f32) {
        self.learning_rate = lr;
    }

    /// Applies one update using the gradients currently accumulated on the
    /// parameters, then leaves the gradients untouched (call
    /// `Module::zero_grad` before the next forward pass).
    pub fn step(&mut self) {
        self.step += 1;
        let clip_scale = match self.max_grad_norm {
            Some(max_norm) => {
                let total: f32 = self
                    .params
                    .iter()
                    .map(|p| p.grad().norm().powi(2))
                    .sum::<f32>()
                    .sqrt();
                if total > max_norm && total > 0.0 {
                    max_norm / total
                } else {
                    1.0
                }
            }
            None => 1.0,
        };
        let bias1 = 1.0 - self.beta1.powi(self.step as i32);
        let bias2 = 1.0 - self.beta2.powi(self.step as i32);
        for (i, p) in self.params.iter().enumerate() {
            let grad = p.grad().scale(clip_scale);
            self.first_moments[i] = self.first_moments[i]
                .scale(self.beta1)
                .add(&grad.scale(1.0 - self.beta1));
            self.second_moments[i] = self.second_moments[i]
                .scale(self.beta2)
                .add(&grad.hadamard(&grad).scale(1.0 - self.beta2));
            let m_hat = self.first_moments[i].scale(1.0 / bias1);
            let v_hat = self.second_moments[i].scale(1.0 / bias2);
            let update = m_hat.zip(&v_hat, |m, v| {
                -self.learning_rate * m / (v.sqrt() + self.eps)
            });
            p.apply_update(&update);
        }
    }
}

/// Plain stochastic gradient descent (used by small tests and sanity checks).
#[derive(Debug)]
pub struct Sgd {
    params: Vec<Tensor>,
    learning_rate: f32,
}

impl Sgd {
    /// Creates an SGD optimizer.
    pub fn new(params: Vec<Tensor>, learning_rate: f32) -> Self {
        Sgd {
            params,
            learning_rate,
        }
    }

    /// Applies one descent step.
    pub fn step(&mut self) {
        for p in &self.params {
            let update = p.grad().scale(-self.learning_rate);
            p.apply_update(&update);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quadratic_loss(x: &Tensor) -> Tensor {
        // loss = mean((x - 3)^2)
        let target = Tensor::constant(Matrix::full(1, 1, 3.0));
        let diff = x.sub(&target);
        diff.mul(&diff).mean()
    }

    #[test]
    fn adam_minimizes_a_quadratic() {
        let x = Tensor::parameter(Matrix::full(1, 1, -5.0));
        let mut optimizer = Adam::new(vec![x.clone()], 0.2);
        for _ in 0..200 {
            x.zero_grad();
            quadratic_loss(&x).backward();
            optimizer.step();
        }
        assert!((x.value().get(0, 0) - 3.0).abs() < 0.05);
    }

    #[test]
    fn sgd_minimizes_a_quadratic() {
        let x = Tensor::parameter(Matrix::full(1, 1, 10.0));
        let mut optimizer = Sgd::new(vec![x.clone()], 0.1);
        for _ in 0..300 {
            x.zero_grad();
            quadratic_loss(&x).backward();
            optimizer.step();
        }
        assert!((x.value().get(0, 0) - 3.0).abs() < 0.1);
    }

    #[test]
    fn gradient_clipping_bounds_the_update() {
        let x = Tensor::parameter(Matrix::full(1, 1, 1000.0));
        let mut optimizer = Adam::new(vec![x.clone()], 0.1).with_grad_clip(0.5);
        x.zero_grad();
        quadratic_loss(&x).backward();
        let raw_norm = x.grad().norm();
        assert!(raw_norm > 0.5);
        optimizer.step();
        // Adam normalizes per coordinate, but the clipped gradient entering the
        // moment estimates must have norm at most 0.5.
        let clipped = x.grad().scale(0.5 / raw_norm);
        assert!(clipped.norm() <= 0.5 + 1e-4);
    }

    #[test]
    fn learning_rate_can_be_adjusted() {
        let x = Tensor::parameter(Matrix::full(1, 1, 0.0));
        let mut optimizer = Adam::new(vec![x.clone()], 0.1);
        optimizer.set_learning_rate(0.01);
        assert_eq!(optimizer.learning_rate(), 0.01);
        assert_eq!(optimizer.params().len(), 1);
    }
}
