//! Lane packing: lowering a scalar program to a vectorized circuit under a
//! fixed input layout.
//!
//! The packer computes, for a list of `(lane, scalar expression)` pairs, a
//! vector-typed IR expression whose lane `i` holds the value of expression
//! `i` and whose remaining lanes are zero. Scalar inputs are fetched from the
//! packed input vector with a rotation (when the layout slot does not match
//! the target lane) followed by a 0/1 plaintext mask; operation lanes are
//! grouped by operator and merged with vector additions.

use chehab_ir::{BinOp, Expr, Symbol};
use std::collections::HashMap;

/// The slot assignment of every distinct encrypted input inside the packed
/// input vector.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Layout {
    slots: HashMap<Symbol, usize>,
    order: Vec<Symbol>,
}

impl Layout {
    /// Builds a layout that packs `variables` in the given order.
    pub fn new(variables: Vec<Symbol>) -> Self {
        let slots = variables
            .iter()
            .cloned()
            .enumerate()
            .map(|(i, v)| (v, i))
            .collect();
        Layout {
            slots,
            order: variables,
        }
    }

    /// The slot of a variable.
    pub fn slot(&self, variable: &Symbol) -> Option<usize> {
        self.slots.get(variable).copied()
    }

    /// Number of packed variables.
    pub fn len(&self) -> usize {
        self.order.len()
    }

    /// Returns `true` if the layout packs no variables.
    pub fn is_empty(&self) -> bool {
        self.order.is_empty()
    }

    /// The packed variables in slot order.
    pub fn order(&self) -> &[Symbol] {
        &self.order
    }

    /// The packed-input vector expression this layout corresponds to
    /// (a `Vec` of the ciphertext inputs in slot order). The client performs
    /// this packing before encryption, exactly as both compilers assume
    /// (Section 7.3).
    pub fn input_vector(&self) -> Expr {
        Expr::Vec(self.order.iter().map(|v| Expr::CtVar(v.clone())).collect())
    }
}

/// Statistics of one packing run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PackingStats {
    /// Rotations inserted to align inputs or intermediate lanes.
    pub rotations: usize,
    /// Plaintext masks applied (each is a ciphertext–plaintext multiplication).
    pub masks: usize,
    /// Vector operations emitted.
    pub vector_ops: usize,
}

/// Lowers scalar expressions onto ciphertext lanes under a fixed [`Layout`].
#[derive(Debug)]
pub struct LanePacker {
    layout: Layout,
    width: usize,
    stats: PackingStats,
}

impl LanePacker {
    /// Creates a packer over a layout; `width` is the number of result lanes
    /// (at least the number of program outputs).
    pub fn new(layout: Layout, width: usize) -> Self {
        let width = width.max(layout.len()).max(1);
        LanePacker {
            layout,
            width,
            stats: PackingStats::default(),
        }
    }

    /// Packing statistics accumulated so far.
    pub fn stats(&self) -> PackingStats {
        self.stats
    }

    /// The layout in use.
    pub fn layout(&self) -> &Layout {
        &self.layout
    }

    /// Builds the vector whose lane `i` holds the value of `lanes[i].1` and
    /// whose other lanes are zero.
    pub fn pack(&mut self, lanes: &[(usize, Expr)]) -> Expr {
        assert!(!lanes.is_empty(), "cannot pack zero lanes");
        // Partition lanes by the top-level construct.
        let mut leaf_lanes: Vec<(usize, Expr)> = Vec::new();
        let mut op_lanes: HashMap<BinOp, Vec<(usize, Expr)>> = HashMap::new();
        let mut neg_lanes: Vec<(usize, Expr)> = Vec::new();
        for (lane, expr) in lanes {
            match expr {
                Expr::CtVar(_) | Expr::PtVar(_) | Expr::Const(_) => {
                    leaf_lanes.push((*lane, expr.clone()))
                }
                Expr::Bin(op, _, _) => op_lanes.entry(*op).or_default().push((*lane, expr.clone())),
                Expr::Neg(_) => neg_lanes.push((*lane, expr.clone())),
                other => panic!("lane packer expects scalar expressions, found {other}"),
            }
        }

        let mut pieces: Vec<Expr> = Vec::new();
        if !leaf_lanes.is_empty() {
            pieces.push(self.pack_leaves(&leaf_lanes));
        }
        // Iterate operator groups in a fixed order so lowering is
        // deterministic (HashMap iteration order is not).
        for op in BinOp::ALL {
            if let Some(group) = op_lanes.get(&op) {
                pieces.push(self.pack_operations(op, group));
            }
        }
        if !neg_lanes.is_empty() {
            let inner: Vec<(usize, Expr)> = neg_lanes
                .iter()
                .map(|(lane, e)| match e {
                    Expr::Neg(inner) => (*lane, (**inner).clone()),
                    _ => unreachable!("partitioned as negation"),
                })
                .collect();
            let packed = self.pack(&inner);
            self.stats.vector_ops += 1;
            pieces.push(Expr::VecNeg(Box::new(packed)));
        }

        let mut iter = pieces.into_iter();
        let first = iter.next().expect("at least one piece");
        iter.fold(first, |acc, piece| {
            self.stats.vector_ops += 1;
            Expr::vec_add(acc, piece)
        })
    }

    fn pack_operations(&mut self, op: BinOp, group: &[(usize, Expr)]) -> Expr {
        let lhs: Vec<(usize, Expr)> = group
            .iter()
            .map(|(lane, e)| match e {
                Expr::Bin(_, a, _) => (*lane, (**a).clone()),
                _ => unreachable!("partitioned as binary operation"),
            })
            .collect();
        let rhs: Vec<(usize, Expr)> = group
            .iter()
            .map(|(lane, e)| match e {
                Expr::Bin(_, _, b) => (*lane, (**b).clone()),
                _ => unreachable!("partitioned as binary operation"),
            })
            .collect();
        let left = self.pack(&lhs);
        let right = self.pack(&rhs);
        self.stats.vector_ops += 1;
        let combined = Expr::VecBin(op, Box::new(left), Box::new(right));
        match op {
            // Multiplication of zero-padded lanes keeps non-group lanes at
            // zero; additions and subtractions do too (0 ± 0 = 0). When the
            // group does not cover all lanes of interest nothing further is
            // needed because sibling groups fill the other lanes.
            BinOp::Add | BinOp::Sub | BinOp::Mul => combined,
        }
    }

    /// Fetches leaf lanes: ciphertext variables come from the packed input
    /// vector via rotation + mask; constants and plaintext inputs are packed
    /// into a plaintext vector at no ciphertext cost.
    fn pack_leaves(&mut self, lanes: &[(usize, Expr)]) -> Expr {
        let mut ct_by_offset: HashMap<i64, Vec<(usize, Symbol)>> = HashMap::new();
        let mut plain_lanes: Vec<(usize, Expr)> = Vec::new();
        for (lane, expr) in lanes {
            match expr {
                Expr::CtVar(v) => {
                    let slot = self
                        .layout
                        .slot(v)
                        .unwrap_or_else(|| panic!("variable {v} missing from the layout"));
                    let offset = slot as i64 - *lane as i64;
                    ct_by_offset
                        .entry(offset)
                        .or_default()
                        .push((*lane, v.clone()));
                }
                other => plain_lanes.push((*lane, other.clone())),
            }
        }

        let mut pieces: Vec<Expr> = Vec::new();
        let input = self.padded_input();
        let mut offsets: Vec<i64> = ct_by_offset.keys().copied().collect();
        offsets.sort_unstable();
        for offset in offsets {
            let group = &ct_by_offset[&offset];
            let mut source = input.clone();
            if offset != 0 {
                self.stats.rotations += 1;
                source = Expr::rot(source, offset);
            }
            // 0/1 mask selecting exactly this group's lanes.
            let mut mask = vec![0i64; self.width];
            for (lane, _) in group {
                if *lane < self.width {
                    mask[*lane] = 1;
                }
            }
            self.stats.masks += 1;
            self.stats.vector_ops += 1;
            let mask_vec = Expr::Vec(mask.into_iter().map(Expr::constant).collect());
            pieces.push(Expr::vec_mul(source, mask_vec));
        }

        if !plain_lanes.is_empty() {
            let mut slots: Vec<Expr> = vec![Expr::constant(0); self.width];
            for (lane, expr) in &plain_lanes {
                if *lane < self.width {
                    slots[*lane] = expr.clone();
                }
            }
            pieces.push(Expr::Vec(slots));
        }

        let mut iter = pieces.into_iter();
        let first = iter.next().expect("leaf group is non-empty");
        iter.fold(first, |acc, piece| {
            self.stats.vector_ops += 1;
            Expr::vec_add(acc, piece)
        })
    }

    /// The packed input ciphertext, zero-padded so that every result lane is
    /// addressable after a rotation (padding slots are zero and never selected
    /// by the masks).
    fn padded_input(&self) -> Expr {
        let mut slots: Vec<Expr> = self
            .layout
            .order()
            .iter()
            .map(|v| Expr::CtVar(v.clone()))
            .collect();
        while slots.len() < self.width {
            slots.push(Expr::constant(0));
        }
        Expr::Vec(slots)
    }

    /// Reduces a packed vector of `terms` lanes to its lane-0 sum using
    /// rotate-and-add steps (Coyote's reduction lowering for scalar outputs).
    pub fn reduce_sum(&mut self, packed: Expr, terms: usize) -> Expr {
        let mut width = terms.next_power_of_two().max(1);
        let mut acc = packed;
        while width > 1 {
            let half = (width / 2) as i64;
            self.stats.rotations += 1;
            self.stats.vector_ops += 1;
            acc = Expr::vec_add(acc.clone(), Expr::rot(acc, half));
            width /= 2;
        }
        acc
    }
}

/// Why a lane assignment (or a packing through one) was rejected.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LaneError {
    /// The stride is narrower than the per-user value width: consecutive
    /// users' values would interleave.
    StrideTooNarrow {
        /// The requested lane stride.
        stride: usize,
        /// The per-user value width it must fit.
        width: usize,
    },
    /// The stride exceeds the slot count: not even one lane fits.
    NoCapacity {
        /// The requested lane stride.
        stride: usize,
        /// The vector's slot count.
        slot_count: usize,
    },
    /// More users than lanes were handed to a single packing (callers chunk
    /// with [`LaneAssignment::chunks`] first).
    BatchOverflow {
        /// Users in the rejected batch.
        batch: usize,
        /// Lanes the assignment provides.
        lanes: usize,
    },
    /// A user's values run past its declared width into the neighbouring
    /// lane.
    LaneCollision {
        /// The first slot the overlong value would claim outside its lane.
        slot: usize,
    },
}

impl std::fmt::Display for LaneError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LaneError::StrideTooNarrow { stride, width } => {
                write!(
                    f,
                    "lane stride {stride} is narrower than value width {width}"
                )
            }
            LaneError::NoCapacity { stride, slot_count } => {
                write!(
                    f,
                    "lane stride {stride} exceeds the {slot_count}-slot vector"
                )
            }
            LaneError::BatchOverflow { batch, lanes } => {
                write!(
                    f,
                    "batch of {batch} users exceeds the {lanes} available lanes"
                )
            }
            LaneError::LaneCollision { slot } => {
                write!(
                    f,
                    "value collides with the neighbouring lane at slot {slot}"
                )
            }
        }
    }
}

impl std::error::Error for LaneError {}

/// The slot-lane assignment of a **cross-request** batch: user `k` of a
/// batch owns the `stride`-slot window based at `k * stride`, of which the
/// first `width` slots carry values (the rest is padding for rotation
/// excursions).
///
/// [`LanePacker`] vectorizes one program's scalar *expressions* across
/// lanes at compile time; `LaneAssignment` is the serving-time counterpart
/// that places many *users'* scalar inputs into the slot lanes of shared
/// ciphertexts, so a whole batch rides one homomorphic execution. The
/// runtime's request coalescer sizes `stride` from its rotation-envelope
/// analysis and uses this assignment for chunking and lane-base math.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LaneAssignment {
    slot_count: usize,
    stride: usize,
    width: usize,
}

impl LaneAssignment {
    /// Validates and builds an assignment of `slot_count / stride` lanes.
    ///
    /// # Errors
    ///
    /// [`LaneError::StrideTooNarrow`] when `stride < width` (or `width` is
    /// zero), [`LaneError::NoCapacity`] when the stride exceeds the slot
    /// count.
    pub fn new(slot_count: usize, stride: usize, width: usize) -> Result<Self, LaneError> {
        if width == 0 || stride < width {
            return Err(LaneError::StrideTooNarrow { stride, width });
        }
        if stride > slot_count {
            return Err(LaneError::NoCapacity { stride, slot_count });
        }
        Ok(LaneAssignment {
            slot_count,
            stride,
            width,
        })
    }

    /// Lanes the assignment provides (at least 1 by construction).
    pub fn lane_count(&self) -> usize {
        self.slot_count / self.stride
    }

    /// The slot stride between consecutive lane bases.
    pub fn stride(&self) -> usize {
        self.stride
    }

    /// Slots per lane that carry values.
    pub fn width(&self) -> usize {
        self.width
    }

    /// The base slot of `lane`.
    pub fn base(&self, lane: usize) -> usize {
        lane * self.stride
    }

    /// Splits an arbitrarily large batch into lane-capacity chunks, the
    /// last one ragged: each chunk packs into one set of shared
    /// ciphertexts.
    pub fn chunks<'a, T>(&self, batch: &'a [T]) -> impl Iterator<Item = &'a [T]> {
        batch.chunks(self.lane_count().max(1))
    }

    /// Packs one chunk's per-user values into a flat slot vector: user `k`'s
    /// values land at `[base(k), base(k) + width)`, every other slot is
    /// zero. The vector is trimmed to the last written lane
    /// (`(k-1) * stride + width` slots), so narrow batches encrypt short.
    ///
    /// # Errors
    ///
    /// [`LaneError::BatchOverflow`] when the chunk exceeds the lane count,
    /// [`LaneError::LaneCollision`] when any user's values are wider than
    /// the assignment's width.
    pub fn pack_values(&self, per_user: &[&[i64]]) -> Result<Vec<i64>, LaneError> {
        if per_user.len() > self.lane_count() {
            return Err(LaneError::BatchOverflow {
                batch: per_user.len(),
                lanes: self.lane_count(),
            });
        }
        if per_user.is_empty() {
            return Ok(Vec::new());
        }
        let mut flat = vec![0i64; self.base(per_user.len() - 1) + self.width];
        for (lane, values) in per_user.iter().enumerate() {
            let base = self.base(lane);
            if values.len() > self.width {
                return Err(LaneError::LaneCollision {
                    slot: base + self.width,
                });
            }
            flat[base..base + values.len()].copy_from_slice(values);
        }
        Ok(flat)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use chehab_ir::{count_ops, equivalent_on_live_slots, parse, Env};

    fn layout_for(expr: &Expr) -> Layout {
        Layout::new(expr.variables())
    }

    #[test]
    fn layout_assigns_consecutive_slots() {
        let e = parse("(+ a (* b c))").unwrap();
        let layout = layout_for(&e);
        assert_eq!(layout.len(), 3);
        assert_eq!(layout.slot(&"a".into()), Some(0));
        assert_eq!(layout.slot(&"c".into()), Some(2));
        assert_eq!(layout.input_vector(), parse("(Vec a b c)").unwrap());
    }

    #[test]
    fn packing_isomorphic_lanes_preserves_semantics() {
        let program = parse("(Vec (+ a b) (+ c d))").unwrap();
        let Expr::Vec(outputs) = program.clone() else {
            unreachable!()
        };
        let lanes: Vec<(usize, Expr)> = outputs.into_iter().enumerate().collect();
        let mut packer = LanePacker::new(layout_for(&program), 2);
        let packed = packer.pack(&lanes);
        let mut env = Env::new();
        env.bind_all(&program, |s| {
            s.as_str().bytes().map(i64::from).sum::<i64>() % 13
        });
        assert!(equivalent_on_live_slots(&program, &packed, &env, 2).unwrap());
        assert!(
            packer.stats().rotations > 0,
            "misaligned inputs require rotations"
        );
        assert!(packer.stats().masks > 0);
    }

    #[test]
    fn packing_mixed_operations_preserves_semantics() {
        let program = parse("(Vec (* a b) (+ c d) (- e f))").unwrap();
        let Expr::Vec(outputs) = program.clone() else {
            unreachable!()
        };
        let lanes: Vec<(usize, Expr)> = outputs.into_iter().enumerate().collect();
        let mut packer = LanePacker::new(layout_for(&program), 3);
        let packed = packer.pack(&lanes);
        let mut env = Env::new();
        env.bind_all(&program, |s| {
            s.as_str().bytes().map(i64::from).sum::<i64>() % 17
        });
        assert!(equivalent_on_live_slots(&program, &packed, &env, 3).unwrap());
    }

    #[test]
    fn packed_circuits_are_rotation_and_mask_heavy() {
        // The signature Coyote behaviour the evaluation relies on.
        let program = parse("(Vec (+ (* a b) c) (+ (* d e) f) (+ (* g h) i))").unwrap();
        let Expr::Vec(outputs) = program.clone() else {
            unreachable!()
        };
        let lanes: Vec<(usize, Expr)> = outputs.into_iter().enumerate().collect();
        let mut packer = LanePacker::new(layout_for(&program), 3);
        let packed = packer.pack(&lanes);
        let counts = count_ops(&packed);
        assert!(counts.rotations >= 3);
        assert!(
            counts.vec_mul_ct_pt >= 3,
            "masks show up as ct-pt multiplications"
        );
    }

    #[test]
    fn reduce_sum_collapses_lanes_into_slot_zero() {
        let program = parse("(+ (+ (* a0 b0) (* a1 b1)) (+ (* a2 b2) (* a3 b3)))").unwrap();
        let terms: Vec<(usize, Expr)> = vec![
            (0, parse("(* a0 b0)").unwrap()),
            (1, parse("(* a1 b1)").unwrap()),
            (2, parse("(* a2 b2)").unwrap()),
            (3, parse("(* a3 b3)").unwrap()),
        ];
        let mut packer = LanePacker::new(layout_for(&program), 4);
        let packed = packer.pack(&terms);
        let reduced = packer.reduce_sum(packed, 4);
        let mut env = Env::new();
        env.bind_all(&program, |s| {
            s.as_str().bytes().map(i64::from).sum::<i64>() % 19
        });
        assert!(equivalent_on_live_slots(&program, &reduced, &env, 1).unwrap());
    }

    #[test]
    fn negated_lanes_are_supported() {
        let program = parse("(Vec (- a) (- b))").unwrap();
        let Expr::Vec(outputs) = program.clone() else {
            unreachable!()
        };
        let lanes: Vec<(usize, Expr)> = outputs.into_iter().enumerate().collect();
        let mut packer = LanePacker::new(layout_for(&program), 2);
        let packed = packer.pack(&lanes);
        let mut env = Env::new();
        env.bind_all(&program, |_| 5);
        assert!(equivalent_on_live_slots(&program, &packed, &env, 2).unwrap());
    }

    #[test]
    fn a_batch_smaller_than_the_slot_count_packs_into_a_short_prefix() {
        // 1024 slots, stride 4, width 2: 256 lanes, but only 3 users show up.
        let lanes = LaneAssignment::new(1024, 4, 2).unwrap();
        assert_eq!(lanes.lane_count(), 256);
        let users: Vec<&[i64]> = vec![&[10, 11], &[20, 21], &[30, 31]];
        let flat = lanes.pack_values(&users).unwrap();
        // Trimmed to the last written lane, not the full vector.
        assert_eq!(flat.len(), 2 * 4 + 2);
        assert_eq!(flat, vec![10, 11, 0, 0, 20, 21, 0, 0, 30, 31]);
        assert_eq!(lanes.pack_values(&[]).unwrap(), Vec::<i64>::new());
    }

    #[test]
    fn chunking_a_ragged_batch_fills_lanes_then_leaves_a_remainder() {
        // 4 lanes, 10 users: two full chunks and a ragged tail of 2.
        let lanes = LaneAssignment::new(16, 4, 3).unwrap();
        let batch: Vec<u64> = (0..10).collect();
        let chunks: Vec<&[u64]> = lanes.chunks(&batch).collect();
        assert_eq!(
            chunks,
            vec![&[0, 1, 2, 3][..], &[4, 5, 6, 7][..], &[8, 9][..]]
        );
        // The ragged tail still packs, occupying only its own prefix.
        let tail: Vec<&[i64]> = vec![&[8], &[9]];
        assert_eq!(lanes.pack_values(&tail).unwrap(), vec![8, 0, 0, 0, 9, 0, 0]);
    }

    #[test]
    fn duplicate_inputs_across_users_stay_in_their_own_lanes() {
        // Two users submit identical values: lane isolation keeps each
        // user's copy at its own base rather than deduplicating.
        let lanes = LaneAssignment::new(8, 4, 2).unwrap();
        let users: Vec<&[i64]> = vec![&[7, 7], &[7, 7]];
        let flat = lanes.pack_values(&users).unwrap();
        assert_eq!(flat, vec![7, 7, 0, 0, 7, 7]);
        assert_eq!(lanes.base(0), 0);
        assert_eq!(lanes.base(1), 4);
    }

    #[test]
    fn lane_collisions_and_overflow_are_rejected() {
        // A stride narrower than the width can never be constructed.
        assert_eq!(
            LaneAssignment::new(16, 2, 3).unwrap_err(),
            LaneError::StrideTooNarrow {
                stride: 2,
                width: 3
            }
        );
        assert_eq!(
            LaneAssignment::new(4, 8, 2).unwrap_err(),
            LaneError::NoCapacity {
                stride: 8,
                slot_count: 4
            }
        );
        let lanes = LaneAssignment::new(8, 4, 2).unwrap();
        // More users than lanes: the caller should have chunked first.
        let overflow: Vec<&[i64]> = vec![&[1], &[2], &[3]];
        assert_eq!(
            lanes.pack_values(&overflow).unwrap_err(),
            LaneError::BatchOverflow { batch: 3, lanes: 2 }
        );
        // A user wider than the lane width would bleed into slot 2.
        let collision: Vec<&[i64]> = vec![&[1, 2, 3], &[4]];
        assert_eq!(
            lanes.pack_values(&collision).unwrap_err(),
            LaneError::LaneCollision { slot: 2 }
        );
    }
}
