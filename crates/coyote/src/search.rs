//! The layout search and the end-to-end Coyote-style compiler.
//!
//! Coyote couples hand-tuned heuristics with an ILP solver to select packs
//! and data layouts; both explore a combinatorial space whose size grows with
//! the program. This reimplementation keeps that structure with a
//! branch-and-bound-flavoured randomized search over input layouts: every
//! candidate layout is fully lowered and costed, the cheapest circuit wins,
//! and the number of candidates examined grows with program size — which is
//! what produces Coyote's characteristic compile-time growth (Figure 6).

use crate::packer::{LanePacker, Layout, PackingStats};
use chehab_ir::{CostModel, Expr, Symbol};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use std::time::{Duration, Instant};

/// Configuration of the Coyote-style compiler.
#[derive(Debug, Clone)]
pub struct CoyoteConfig {
    /// Cost model used to rank candidate layouts.
    pub cost_model: CostModel,
    /// Base number of candidate layouts explored for the smallest programs.
    pub base_candidates: usize,
    /// Additional candidates explored per scalar operation in the program
    /// (this is what makes compilation super-linear in program size).
    pub candidates_per_op: usize,
    /// Hard cap on candidate layouts.
    pub max_candidates: usize,
    /// Compilation timeout; the search stops early and keeps the best layout
    /// found so far (the paper uses 7200 s).
    pub timeout: Duration,
    /// Seed of the randomized layout exploration.
    pub seed: u64,
}

impl Default for CoyoteConfig {
    fn default() -> Self {
        CoyoteConfig {
            cost_model: CostModel::default(),
            base_candidates: 24,
            candidates_per_op: 6,
            max_candidates: 4000,
            timeout: Duration::from_secs(7200),
            seed: 0x10_7e,
        }
    }
}

impl CoyoteConfig {
    /// A reduced search budget for unit tests.
    pub fn fast() -> Self {
        CoyoteConfig {
            base_candidates: 4,
            candidates_per_op: 1,
            max_candidates: 40,
            ..Self::default()
        }
    }
}

/// The output of Coyote-style compilation.
#[derive(Debug, Clone)]
pub struct CoyoteResult {
    /// The vectorized circuit (ordinary CHEHAB IR).
    pub circuit: Expr,
    /// The input layout the search selected.
    pub layout_order: Vec<Symbol>,
    /// Cost of the selected circuit under the configured cost model.
    pub cost: f64,
    /// Number of candidate layouts examined.
    pub candidates_explored: usize,
    /// Wall-clock compilation time.
    pub compile_time: Duration,
    /// Rotation/mask statistics of the selected lowering.
    pub packing: PackingStats,
}

/// The Coyote-style search-based vectorizing compiler.
#[derive(Debug, Default)]
pub struct CoyoteCompiler {
    config: CoyoteConfig,
}

impl CoyoteCompiler {
    /// Creates a compiler with the default configuration.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a compiler with an explicit configuration.
    pub fn with_config(config: CoyoteConfig) -> Self {
        CoyoteCompiler { config }
    }

    /// The compiler's configuration.
    pub fn config(&self) -> &CoyoteConfig {
        &self.config
    }

    /// Compiles (vectorizes) a scalar program.
    pub fn compile(&self, program: &Expr) -> CoyoteResult {
        let start = Instant::now();
        let variables = program.variables();
        let scalar_ops = chehab_ir::count_ops(program).total_ciphertext_ops();
        let budget = (self.config.base_candidates + self.config.candidates_per_op * scalar_ops)
            .min(self.config.max_candidates)
            .max(1);

        let mut rng = StdRng::seed_from_u64(self.config.seed);
        let mut best: Option<(Expr, Vec<Symbol>, f64, PackingStats)> = None;
        let mut explored = 0usize;
        for candidate in 0..budget {
            if candidate > 0 && start.elapsed() >= self.config.timeout {
                break;
            }
            let mut order = variables.clone();
            if candidate > 0 {
                order.shuffle(&mut rng);
            }
            let (circuit, stats) = self.lower_with_layout(program, Layout::new(order.clone()));
            let cost = self.config.cost_model.cost(&circuit);
            explored += 1;
            if best
                .as_ref()
                .is_none_or(|(_, _, best_cost, _)| cost < *best_cost)
            {
                best = Some((circuit, order, cost, stats));
            }
        }
        let (circuit, layout_order, cost, packing) = best.expect("at least one candidate explored");
        CoyoteResult {
            circuit,
            layout_order,
            cost,
            candidates_explored: explored,
            compile_time: start.elapsed(),
            packing,
        }
    }

    /// Lowers the program under one specific layout.
    fn lower_with_layout(&self, program: &Expr, layout: Layout) -> (Expr, PackingStats) {
        match program {
            Expr::Vec(outputs) => {
                let lanes: Vec<(usize, Expr)> = outputs.iter().cloned().enumerate().collect();
                let mut packer = LanePacker::new(layout, outputs.len());
                let circuit = packer.pack(&lanes);
                (circuit, packer.stats())
            }
            scalar => {
                // Scalar outputs: split the top-level sum (if any) across
                // lanes and reduce with rotations, the way Coyote lowers
                // reductions; otherwise pack the single lane.
                let terms = flatten_sum(scalar);
                let mut packer = LanePacker::new(layout, terms.len().max(1));
                if terms.len() >= 2 {
                    let lanes: Vec<(usize, Expr)> = terms.into_iter().enumerate().collect();
                    let count = lanes.len();
                    let packed = packer.pack(&lanes);
                    let circuit = packer.reduce_sum(packed, count);
                    (circuit, packer.stats())
                } else {
                    let circuit = packer.pack(&[(0, scalar.clone())]);
                    (circuit, packer.stats())
                }
            }
        }
    }
}

fn flatten_sum(expr: &Expr) -> Vec<Expr> {
    fn go(expr: &Expr, out: &mut Vec<Expr>) {
        match expr {
            Expr::Bin(chehab_ir::BinOp::Add, a, b) => {
                go(a, out);
                go(b, out);
            }
            other => out.push(other.clone()),
        }
    }
    let mut out = Vec::new();
    go(expr, &mut out);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use chehab_ir::{count_ops, equivalent_on_live_slots, parse, Env, Ty};

    fn check_equivalent(program: &Expr, circuit: &Expr) {
        let live = program.ty().map(Ty::slots).unwrap_or(1);
        let mut env = Env::new();
        env.bind_all(program, |s| {
            s.as_str().bytes().map(i64::from).sum::<i64>() % 23
        });
        assert!(
            equivalent_on_live_slots(program, circuit, &env, live).unwrap(),
            "Coyote-compiled circuit differs from the source program"
        );
    }

    #[test]
    fn compiles_structured_code_correctly() {
        let program = parse("(Vec (+ a b) (+ c d) (+ e f))").unwrap();
        let result = CoyoteCompiler::with_config(CoyoteConfig::fast()).compile(&program);
        check_equivalent(&program, &result.circuit);
        assert!(result.candidates_explored >= 1);
        assert!(result.cost > 0.0);
    }

    #[test]
    fn compiles_scalar_reductions_correctly() {
        let program = parse("(+ (+ (* a0 b0) (* a1 b1)) (+ (* a2 b2) (* a3 b3)))").unwrap();
        let result = CoyoteCompiler::with_config(CoyoteConfig::fast()).compile(&program);
        check_equivalent(&program, &result.circuit);
        assert!(count_ops(&result.circuit).rotations > 0);
    }

    #[test]
    fn compiles_mixed_unstructured_code_correctly() {
        let program = parse("(Vec (* (+ a b) c) (- (* d e) f) (+ g (* h i)))").unwrap();
        let result = CoyoteCompiler::with_config(CoyoteConfig::fast()).compile(&program);
        check_equivalent(&program, &result.circuit);
    }

    #[test]
    fn circuits_are_rotation_and_ct_pt_heavy() {
        let program = parse("(Vec (+ (* a b) (* c d)) (+ (* e f) (* g h)))").unwrap();
        let result = CoyoteCompiler::with_config(CoyoteConfig::fast()).compile(&program);
        let counts = count_ops(&result.circuit);
        assert!(
            counts.rotations >= 2,
            "Coyote layouts require alignment rotations"
        );
        assert!(
            counts.vec_mul_ct_pt >= 2,
            "masking shows up as ct-pt multiplications"
        );
    }

    #[test]
    fn search_budget_grows_with_program_size() {
        let small = parse("(Vec (+ a b) (+ c d))").unwrap();
        let large = chehab_ir::parse(
            "(Vec (+ (* a b) (* c d)) (+ (* e f) (* g h)) (+ (* i j) (* k l)) (+ (* m n) (* o p)))",
        )
        .unwrap();
        let compiler = CoyoteCompiler::new();
        let small_result = compiler.compile(&small);
        let large_result = compiler.compile(&large);
        assert!(large_result.candidates_explored > small_result.candidates_explored);
    }

    #[test]
    fn search_is_deterministic_per_seed() {
        let program = parse("(Vec (+ a b) (* c d))").unwrap();
        let a = CoyoteCompiler::with_config(CoyoteConfig::fast()).compile(&program);
        let b = CoyoteCompiler::with_config(CoyoteConfig::fast()).compile(&program);
        assert_eq!(a.circuit, b.circuit);
        assert_eq!(a.layout_order, b.layout_order);
    }

    #[test]
    fn timeout_is_respected() {
        let config = CoyoteConfig {
            timeout: Duration::from_millis(0),
            ..CoyoteConfig::fast()
        };
        let program = parse("(Vec (+ a b) (+ c d))").unwrap();
        let result = CoyoteCompiler::with_config(config).compile(&program);
        // Even with an expired timeout at least one candidate is evaluated so
        // compilation always produces a circuit.
        assert!(result.candidates_explored >= 1);
        check_equivalent(&program, &result.circuit);
    }
}
