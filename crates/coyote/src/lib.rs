//! # coyote-baseline
//!
//! A Coyote-style search-based vectorizing FHE compiler, used as the
//! comparison baseline in the CHEHAB RL evaluation (Section 7).
//!
//! Coyote frames vectorization as a combinatorial layout/packing search: all
//! scalar inputs are packed into wide ciphertext vectors under some layout,
//! isomorphic scalar operations are grouped into vector instructions, and
//! rotations plus plaintext masks align operands that the chosen layout left
//! in the wrong slots. This reimplementation follows that structure:
//!
//! 1. the program's scalar outputs define the result lanes;
//! 2. a search over input layouts (slot permutations) explores the packing
//!    space, costing every candidate circuit — the search budget grows with
//!    program size, which is what makes Coyote's compile times blow up on
//!    large kernels (Figure 6);
//! 3. the selected layout is lowered to a vectorized circuit in the CHEHAB IR
//!    where operand alignment is realized with rotations and 0/1 plaintext
//!    masks (ciphertext–plaintext multiplications), reproducing the
//!    rotation- and ct-pt-heavy circuits the paper observes for Coyote
//!    (Table 6).
//!
//! The produced circuit is ordinary CHEHAB IR, so the same interpreter and
//! BFV backend execute it and correctness is checked against the scalar
//! program.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod packer;
mod search;

pub use packer::{LaneAssignment, LaneError, LanePacker, Layout};
pub use search::{CoyoteCompiler, CoyoteConfig, CoyoteResult};
