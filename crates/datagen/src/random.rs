//! Uniform random IR expression generation (Appendix H.2).
//!
//! The generator recursively constructs type-correct expression trees,
//! sampling a mixture of scalar operations, vector operations, rotations and
//! `Vec` constructors, balanced across all combinations of depth (1–15) and
//! vector size (1–32). It is the baseline the LLM-style synthesizer is
//! compared against in the Figure 8 ablation, and also the corpus generator
//! used to train the BPE tokenizer and the autoencoder ablation.

use chehab_ir::{BinOp, Expr};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Configuration of the uniform random generator.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RandomGenConfig {
    /// Smallest sampled target depth.
    pub min_depth: usize,
    /// Largest sampled target depth.
    pub max_depth: usize,
    /// Smallest sampled vector arity.
    pub min_vector_size: usize,
    /// Largest sampled vector arity.
    pub max_vector_size: usize,
    /// Number of distinct input variables to draw leaves from.
    pub variable_pool: usize,
    /// Probability that a leaf is a constant rather than a variable.
    pub constant_probability: f64,
}

impl Default for RandomGenConfig {
    fn default() -> Self {
        RandomGenConfig {
            min_depth: 1,
            max_depth: 15,
            min_vector_size: 1,
            max_vector_size: 32,
            variable_pool: 24,
            constant_probability: 0.15,
        }
    }
}

/// Uniform random expression generator.
#[derive(Debug)]
pub struct RandomGenerator {
    config: RandomGenConfig,
    rng: StdRng,
}

impl RandomGenerator {
    /// Creates a generator with the given configuration and seed.
    pub fn new(config: RandomGenConfig, seed: u64) -> Self {
        RandomGenerator {
            config,
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// Creates a generator with the default configuration.
    pub fn with_seed(seed: u64) -> Self {
        Self::new(RandomGenConfig::default(), seed)
    }

    /// Generates one random program: a `Vec` of `vector_size` scalar
    /// subexpressions, each of the sampled depth (mirroring the shape the
    /// LLM prompt requests so the two datasets are comparable).
    pub fn generate(&mut self) -> Expr {
        let depth = self
            .rng
            .gen_range(self.config.min_depth..=self.config.max_depth);
        let vector_size = self
            .rng
            .gen_range(self.config.min_vector_size..=self.config.max_vector_size);
        self.generate_with(depth, vector_size)
    }

    /// Generates one random program with an explicit depth budget and vector
    /// arity.
    pub fn generate_with(&mut self, depth: usize, vector_size: usize) -> Expr {
        let elems = (0..vector_size.max(1))
            .map(|_| self.scalar_expr(depth))
            .collect::<Vec<_>>();
        if elems.len() == 1 {
            elems.into_iter().next().expect("one element")
        } else {
            Expr::Vec(elems)
        }
    }

    /// Generates `count` random programs.
    pub fn generate_many(&mut self, count: usize) -> Vec<Expr> {
        (0..count).map(|_| self.generate()).collect()
    }

    fn scalar_expr(&mut self, depth: usize) -> Expr {
        if depth == 0 {
            return self.leaf();
        }
        // 0..3 => binary op, 3 => negation, 4 => shallow leaf escape.
        match self.rng.gen_range(0..10u32) {
            0..=6 => {
                let op = match self.rng.gen_range(0..3u32) {
                    0 => BinOp::Add,
                    1 => BinOp::Sub,
                    _ => BinOp::Mul,
                };
                Expr::Bin(
                    op,
                    Box::new(self.scalar_expr(depth - 1)),
                    Box::new(self.scalar_expr(depth - 1)),
                )
            }
            7 => Expr::Neg(Box::new(self.scalar_expr(depth - 1))),
            8 => self.scalar_expr(depth - 1),
            _ => self.leaf(),
        }
    }

    fn leaf(&mut self) -> Expr {
        if self.rng.gen_bool(self.config.constant_probability) {
            Expr::Const(self.rng.gen_range(1..=9))
        } else {
            let idx = self.rng.gen_range(0..self.config.variable_pool);
            Expr::ct(format!("v{idx}"))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use chehab_ir::circuit_depth;

    #[test]
    fn generated_programs_type_check() {
        let mut generator = RandomGenerator::with_seed(1);
        for e in generator.generate_many(50) {
            assert!(e.is_well_typed(), "ill-typed random program: {e}");
        }
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let a = RandomGenerator::with_seed(7).generate_many(10);
        let b = RandomGenerator::with_seed(7).generate_many(10);
        let c = RandomGenerator::with_seed(8).generate_many(10);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn explicit_depth_and_size_are_respected() {
        let mut generator = RandomGenerator::with_seed(3);
        let e = generator.generate_with(4, 6);
        match &e {
            Expr::Vec(elems) => assert_eq!(elems.len(), 6),
            other => panic!("expected a Vec root, got {other}"),
        }
        assert!(circuit_depth(&e) <= 4);
    }

    #[test]
    fn depth_budget_bounds_the_tree() {
        let mut generator = RandomGenerator::with_seed(11);
        for _ in 0..30 {
            let e = generator.generate_with(5, 2);
            assert!(circuit_depth(&e) <= 5);
        }
    }

    #[test]
    fn single_element_programs_are_scalars() {
        let mut generator = RandomGenerator::with_seed(2);
        let e = generator.generate_with(3, 1);
        assert!(!matches!(e, Expr::Vec(_)));
    }
}
