//! LLM-style structured expression synthesis.
//!
//! The paper synthesizes its training corpus by prompting Gemini 2.5 Flash
//! with the CHEHAB IR grammar, the rewrite rules and worked real-world
//! kernels, then filters the output for validity and uniqueness (Section 6,
//! Appendix F). This module substitutes that pipeline with a structured
//! generator over the same *motifs* the prompt steers the LLM towards:
//! sums of products, squared differences, stencils, element-wise kernels
//! with shared factors, per-point polynomial evaluation, and boolean-style
//! aggregations. The resulting programs have exactly the properties the
//! paper credits the LLM data with — common subexpressions, factorization
//! and vectorization opportunities, realistic structure — which is what the
//! Figure 8 ablation contrasts with uniform random programs.

use chehab_ir::Expr;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The kernel motifs the synthesizer composes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Motif {
    /// Inner product: `Σ a_i · b_i`.
    DotProduct,
    /// Element-wise squared error: `Vec((a_i - b_i)²)`.
    SquaredDifference,
    /// Element-wise sum of two or three operand vectors (matrix addition).
    ElementwiseSum,
    /// Element-wise weighted combination with a shared plaintext weight.
    SharedFactor,
    /// Stencil: each output sums a window of neighbouring inputs.
    Stencil,
    /// Per-point polynomial evaluation `c0 + c1·x_i + c2·x_i²`.
    Polynomial,
    /// Boolean-style union cardinality: `Σ (a_i + b_i - a_i·b_i)`.
    UnionCardinality,
    /// Pairwise products summed per output slot.
    PairwiseProducts,
    /// A general sum with factorization opportunities `a·b + a·c + d`.
    Factorizable,
}

impl Motif {
    /// All motifs, in a fixed order.
    pub const ALL: [Motif; 9] = [
        Motif::DotProduct,
        Motif::SquaredDifference,
        Motif::ElementwiseSum,
        Motif::SharedFactor,
        Motif::Stencil,
        Motif::Polynomial,
        Motif::UnionCardinality,
        Motif::PairwiseProducts,
        Motif::Factorizable,
    ];
}

/// Configuration of the structured synthesizer.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LlmLikeConfig {
    /// Smallest number of lanes / terms a motif instantiates.
    pub min_size: usize,
    /// Largest number of lanes / terms a motif instantiates.
    pub max_size: usize,
    /// Probability of wrapping a generated kernel in a small random
    /// perturbation (extra term, negation, constant scale) to increase
    /// structural diversity beyond alpha-renaming.
    pub perturbation_probability: f64,
}

impl Default for LlmLikeConfig {
    fn default() -> Self {
        LlmLikeConfig {
            min_size: 2,
            max_size: 16,
            perturbation_probability: 0.35,
        }
    }
}

/// Structured, realistic expression synthesizer (the LLM substitute).
#[derive(Debug)]
pub struct LlmLikeSynthesizer {
    config: LlmLikeConfig,
    rng: StdRng,
    counter: u64,
}

impl LlmLikeSynthesizer {
    /// Creates a synthesizer with the given configuration and seed.
    pub fn new(config: LlmLikeConfig, seed: u64) -> Self {
        LlmLikeSynthesizer {
            config,
            rng: StdRng::seed_from_u64(seed),
            counter: 0,
        }
    }

    /// Creates a synthesizer with the default configuration.
    pub fn with_seed(seed: u64) -> Self {
        Self::new(LlmLikeConfig::default(), seed)
    }

    /// Synthesizes one program by sampling a motif and instantiating it.
    pub fn generate(&mut self) -> Expr {
        let motif = Motif::ALL[self.rng.gen_range(0..Motif::ALL.len())];
        self.generate_motif(motif)
    }

    /// Synthesizes `count` programs.
    pub fn generate_many(&mut self, count: usize) -> Vec<Expr> {
        (0..count).map(|_| self.generate()).collect()
    }

    /// Synthesizes one instance of an explicit motif.
    pub fn generate_motif(&mut self, motif: Motif) -> Expr {
        self.counter += 1;
        let size = self
            .rng
            .gen_range(self.config.min_size..=self.config.max_size);
        let expr = match motif {
            Motif::DotProduct => self.dot_product(size.max(3)),
            Motif::SquaredDifference => self.squared_difference(size),
            Motif::ElementwiseSum => self.elementwise_sum(size),
            Motif::SharedFactor => self.shared_factor(size),
            Motif::Stencil => self.stencil(size.max(3)),
            Motif::Polynomial => self.polynomial(size),
            Motif::UnionCardinality => self.union_cardinality(size.max(3)),
            Motif::PairwiseProducts => self.pairwise_products(size),
            Motif::Factorizable => self.factorizable(size.max(3)),
        };
        if self.rng.gen_bool(self.config.perturbation_probability) {
            self.perturb(expr)
        } else {
            expr
        }
    }

    // ----- motif builders ----------------------------------------------------------

    fn var(&mut self, family: &str, index: usize) -> Expr {
        Expr::ct(format!("{family}_{}_{index}", self.counter))
    }

    fn dot_product(&mut self, n: usize) -> Expr {
        let terms: Vec<Expr> = (0..n)
            .map(|i| Expr::mul(self.var("a", i), self.var("b", i)))
            .collect();
        balanced_sum(&terms)
    }

    fn squared_difference(&mut self, n: usize) -> Expr {
        let elems: Vec<Expr> = (0..n)
            .map(|i| {
                let d = Expr::sub(self.var("x", i), self.var("y", i));
                Expr::mul(d.clone(), d)
            })
            .collect();
        wrap_vec(elems)
    }

    fn elementwise_sum(&mut self, n: usize) -> Expr {
        let operands = self.rng.gen_range(2..=3usize);
        let elems: Vec<Expr> = (0..n)
            .map(|i| {
                let mut acc = Expr::add(self.var("m", i), self.var("n", i));
                if operands == 3 {
                    acc = Expr::add(acc, self.var("p", i));
                }
                acc
            })
            .collect();
        wrap_vec(elems)
    }

    fn shared_factor(&mut self, n: usize) -> Expr {
        let weight = Expr::pt(format!("w_{}", self.counter));
        let elems: Vec<Expr> = (0..n)
            .map(|i| {
                Expr::add(
                    Expr::mul(weight.clone(), self.var("x", i)),
                    Expr::mul(weight.clone(), self.var("y", i)),
                )
            })
            .collect();
        wrap_vec(elems)
    }

    fn stencil(&mut self, n: usize) -> Expr {
        // One-dimensional 3-point stencil over a shared input row: adjacent
        // outputs reuse each other's inputs, creating common subexpressions.
        let row: Vec<Expr> = (0..n + 2).map(|i| self.var("img", i)).collect();
        let elems: Vec<Expr> = (0..n)
            .map(|i| {
                Expr::add(
                    Expr::add(row[i].clone(), row[i + 1].clone()),
                    row[i + 2].clone(),
                )
            })
            .collect();
        wrap_vec(elems)
    }

    fn polynomial(&mut self, n: usize) -> Expr {
        let c0 = Expr::pt(format!("c0_{}", self.counter));
        let c1 = Expr::pt(format!("c1_{}", self.counter));
        let c2 = Expr::pt(format!("c2_{}", self.counter));
        let elems: Vec<Expr> = (0..n)
            .map(|i| {
                let x = self.var("x", i);
                Expr::add(
                    Expr::add(c0.clone(), Expr::mul(c1.clone(), x.clone())),
                    Expr::mul(c2.clone(), Expr::mul(x.clone(), x)),
                )
            })
            .collect();
        wrap_vec(elems)
    }

    fn union_cardinality(&mut self, n: usize) -> Expr {
        let terms: Vec<Expr> = (0..n)
            .map(|i| {
                let (a, b) = (self.var("a", i), self.var("b", i));
                Expr::sub(Expr::add(a.clone(), b.clone()), Expr::mul(a, b))
            })
            .collect();
        balanced_sum(&terms)
    }

    fn pairwise_products(&mut self, n: usize) -> Expr {
        let elems: Vec<Expr> = (0..n)
            .map(|i| {
                Expr::add(
                    Expr::mul(self.var("a", i), self.var("b", i)),
                    Expr::mul(self.var("c", i), self.var("d", i)),
                )
            })
            .collect();
        wrap_vec(elems)
    }

    fn factorizable(&mut self, n: usize) -> Expr {
        let shared = self.var("s", 0);
        let mut terms: Vec<Expr> = (0..n)
            .map(|i| Expr::mul(shared.clone(), self.var("t", i)))
            .collect();
        if self.rng.gen_bool(0.5) {
            terms.push(self.var("u", 0));
        }
        balanced_sum(&terms)
    }

    fn perturb(&mut self, expr: Expr) -> Expr {
        match self.rng.gen_range(0..3u32) {
            0 => match expr.ty() {
                Ok(chehab_ir::Ty::Scalar) => {
                    Expr::mul(expr, Expr::constant(self.rng.gen_range(2..=5)))
                }
                _ => expr,
            },
            1 => match expr.ty() {
                Ok(chehab_ir::Ty::Scalar) => Expr::add(expr, self.var("extra", 0)),
                _ => expr,
            },
            _ => expr,
        }
    }
}

/// Builds a balanced binary addition tree over `terms` (realistic code is
/// written as flat sums; balancing here just avoids degenerate deep chains).
fn balanced_sum(terms: &[Expr]) -> Expr {
    match terms.len() {
        0 => Expr::constant(0),
        1 => terms[0].clone(),
        n => {
            let (l, r) = terms.split_at(n / 2);
            Expr::add(balanced_sum(l), balanced_sum(r))
        }
    }
}

fn wrap_vec(elems: Vec<Expr>) -> Expr {
    if elems.len() == 1 {
        elems.into_iter().next().expect("one element")
    } else {
        Expr::Vec(elems)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use chehab_ir::{canonical_form, count_ops, CostModel};
    use chehab_trs::RewriteEngine;

    #[test]
    fn all_motifs_produce_well_typed_programs() {
        let mut synth = LlmLikeSynthesizer::with_seed(1);
        for motif in Motif::ALL {
            let e = synth.generate_motif(motif);
            assert!(e.is_well_typed(), "motif {motif:?} produced ill-typed {e}");
        }
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let a = LlmLikeSynthesizer::with_seed(5).generate_many(20);
        let b = LlmLikeSynthesizer::with_seed(5).generate_many(20);
        assert_eq!(a, b);
    }

    #[test]
    fn programs_are_structurally_diverse() {
        let mut synth = LlmLikeSynthesizer::with_seed(9);
        let programs = synth.generate_many(60);
        let canon: std::collections::HashSet<_> = programs.iter().map(canonical_form).collect();
        assert!(
            canon.len() > 40,
            "only {} distinct canonical forms out of 60",
            canon.len()
        );
    }

    #[test]
    fn synthesized_programs_are_optimizable_by_the_trs() {
        // The defining property of the LLM-style data: the rewrite system can
        // improve most programs, unlike fully random expressions where many
        // programs have no exploitable structure.
        let mut synth = LlmLikeSynthesizer::with_seed(3);
        let engine = RewriteEngine::new();
        let model = CostModel::default();
        let programs = synth.generate_many(20);
        let improved = programs
            .iter()
            .filter(|e| {
                let (opt, _) = engine.greedy_optimize(e, &model, 30);
                model.cost(&opt) < model.cost(e) * 0.9
            })
            .count();
        assert!(
            improved >= 15,
            "only {improved}/20 programs were meaningfully optimizable"
        );
    }

    #[test]
    fn shared_factor_motif_contains_factorization_opportunities() {
        let mut synth = LlmLikeSynthesizer::with_seed(2);
        let e = synth.generate_motif(Motif::SharedFactor);
        let engine = RewriteEngine::new();
        let factor_rule = engine.rule_index("factor-left").unwrap();
        assert!(
            !engine.matches(&e, factor_rule).is_empty(),
            "shared-factor motif must match the factorization rule"
        );
    }

    #[test]
    fn dot_product_motif_is_a_pure_sum_of_products() {
        let mut synth = LlmLikeSynthesizer::with_seed(4);
        let e = synth.generate_motif(Motif::DotProduct);
        let counts = count_ops(&e);
        assert!(counts.scalar_mul_ct_ct >= 3);
        assert_eq!(counts.rotations, 0);
    }
}
