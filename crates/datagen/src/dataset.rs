//! Dataset assembly: validity filtering, ICI-canonical deduplication,
//! benchmark exclusion, persistence, and train/validation splits
//! (the post-processing pipeline of Section 6).

use crate::llm_like::LlmLikeSynthesizer;
use crate::random::RandomGenerator;
use chehab_ir::{canonical_form, parse, Expr};
use std::collections::HashSet;
use std::io::{BufRead, BufReader, Write};
use std::path::Path;

/// Which generator produced a dataset.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DataSource {
    /// The LLM-style structured synthesizer (Section 6).
    LlmLike,
    /// The uniform random generator (Appendix H.2).
    Random,
}

/// A deduplicated training dataset of IR expressions.
#[derive(Debug, Clone)]
pub struct Dataset {
    exprs: Vec<Expr>,
    canonical: HashSet<String>,
    source: DataSource,
}

impl Dataset {
    /// Creates an empty dataset labelled with its source.
    pub fn new(source: DataSource) -> Self {
        Dataset {
            exprs: Vec::new(),
            canonical: HashSet::new(),
            source,
        }
    }

    /// The generator that produced this dataset.
    pub fn source(&self) -> DataSource {
        self.source
    }

    /// The expressions in the dataset.
    pub fn exprs(&self) -> &[Expr] {
        &self.exprs
    }

    /// Number of (unique) expressions.
    pub fn len(&self) -> usize {
        self.exprs.len()
    }

    /// Returns `true` if the dataset holds no expressions.
    pub fn is_empty(&self) -> bool {
        self.exprs.is_empty()
    }

    /// Adds an expression if it is well-typed and its ICI canonical form is
    /// new; returns whether it was added.
    pub fn insert(&mut self, expr: Expr) -> bool {
        if !expr.is_well_typed() {
            return false;
        }
        let canon = canonical_form(&expr);
        if self.canonical.contains(&canon) {
            return false;
        }
        self.canonical.insert(canon);
        self.exprs.push(expr);
        true
    }

    /// Removes every expression whose canonical form matches one of
    /// `benchmarks` (benchmark exclusion, Section 6); returns how many were
    /// removed.
    pub fn exclude_benchmarks<'a>(
        &mut self,
        benchmarks: impl IntoIterator<Item = &'a Expr>,
    ) -> usize {
        let excluded: HashSet<String> = benchmarks.into_iter().map(canonical_form).collect();
        let before = self.exprs.len();
        self.exprs
            .retain(|e| !excluded.contains(&canonical_form(e)));
        self.canonical.retain(|c| !excluded.contains(c));
        before - self.exprs.len()
    }

    /// Splits the dataset into a training and a validation set, placing every
    /// `1/holdout_every`-th expression in the validation set.
    pub fn split(&self, holdout_every: usize) -> (Vec<Expr>, Vec<Expr>) {
        let holdout_every = holdout_every.max(2);
        let mut train = Vec::new();
        let mut valid = Vec::new();
        for (i, e) in self.exprs.iter().enumerate() {
            if i % holdout_every == 0 {
                valid.push(e.clone());
            } else {
                train.push(e.clone());
            }
        }
        (train, valid)
    }

    /// Writes the dataset to a text file, one s-expression per line (the
    /// format the paper's released dataset uses).
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from the filesystem.
    pub fn save(&self, path: impl AsRef<Path>) -> std::io::Result<()> {
        let mut file = std::fs::File::create(path)?;
        for e in &self.exprs {
            writeln!(file, "{e}")?;
        }
        Ok(())
    }

    /// Loads a dataset from a text file written by [`Dataset::save`]
    /// (unparseable lines are skipped, mirroring the paper's validity filter).
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from the filesystem.
    pub fn load(path: impl AsRef<Path>, source: DataSource) -> std::io::Result<Self> {
        let file = std::fs::File::open(path)?;
        let mut dataset = Dataset::new(source);
        for line in BufReader::new(file).lines() {
            let line = line?;
            let trimmed = line.trim();
            if trimmed.is_empty() {
                continue;
            }
            if let Ok(expr) = parse(trimmed) {
                dataset.insert(expr);
            }
        }
        Ok(dataset)
    }
}

/// Generates an LLM-style dataset of `target` unique expressions.
pub fn generate_llm_like_dataset(target: usize, seed: u64) -> Dataset {
    let mut synth = LlmLikeSynthesizer::with_seed(seed);
    let mut dataset = Dataset::new(DataSource::LlmLike);
    let mut attempts = 0usize;
    while dataset.len() < target && attempts < target * 40 {
        dataset.insert(synth.generate());
        attempts += 1;
    }
    dataset
}

/// Generates a uniform-random dataset of `target` unique expressions.
pub fn generate_random_dataset(target: usize, seed: u64) -> Dataset {
    let mut generator = RandomGenerator::with_seed(seed);
    let mut dataset = Dataset::new(DataSource::Random);
    let mut attempts = 0usize;
    while dataset.len() < target && attempts < target * 40 {
        dataset.insert(generator.generate());
        attempts += 1;
    }
    dataset
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn duplicates_are_rejected_by_canonical_form() {
        let mut dataset = Dataset::new(DataSource::LlmLike);
        assert!(dataset.insert(parse("(+ a (* b c))").unwrap()));
        // Alpha-renamed variant of the same program.
        assert!(!dataset.insert(parse("(+ x (* y z))").unwrap()));
        assert_eq!(dataset.len(), 1);
    }

    #[test]
    fn ill_typed_programs_are_rejected() {
        let mut dataset = Dataset::new(DataSource::Random);
        let bad = Expr::vec_add(Expr::ct("a"), Expr::ct("b"));
        assert!(!dataset.insert(bad));
        assert!(dataset.is_empty());
    }

    #[test]
    fn benchmark_exclusion_removes_matching_programs() {
        let mut dataset = Dataset::new(DataSource::LlmLike);
        dataset.insert(parse("(+ (* a b) (* c d))").unwrap());
        dataset.insert(parse("(Vec (+ a b) (+ c d))").unwrap());
        let benchmark = parse("(+ (* x y) (* z w))").unwrap(); // alpha-equivalent to the first
        let removed = dataset.exclude_benchmarks([&benchmark]);
        assert_eq!(removed, 1);
        assert_eq!(dataset.len(), 1);
    }

    #[test]
    fn generators_reach_their_target_counts() {
        let llm = generate_llm_like_dataset(200, 1);
        assert!(
            llm.len() >= 190,
            "llm-like generator produced only {}",
            llm.len()
        );
        assert_eq!(llm.source(), DataSource::LlmLike);
        let random = generate_random_dataset(200, 1);
        assert!(random.len() >= 190);
        assert_eq!(random.source(), DataSource::Random);
    }

    #[test]
    fn split_partitions_without_overlap() {
        let dataset = generate_llm_like_dataset(100, 2);
        let (train, valid) = dataset.split(5);
        assert_eq!(train.len() + valid.len(), dataset.len());
        assert!(valid.len() >= dataset.len() / 6);
    }

    #[test]
    fn save_and_load_round_trip() {
        let dir = std::env::temp_dir().join("chehab_datagen_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("dataset.txt");
        let dataset = generate_llm_like_dataset(50, 3);
        dataset.save(&path).unwrap();
        let loaded = Dataset::load(&path, DataSource::LlmLike).unwrap();
        assert_eq!(loaded.len(), dataset.len());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn load_skips_invalid_lines() {
        let dir = std::env::temp_dir().join("chehab_datagen_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("invalid_lines.txt");
        std::fs::write(&path, "(+ a b)\nthis is not an expression\n(* c d)\n").unwrap();
        let loaded = Dataset::load(&path, DataSource::Random).unwrap();
        assert_eq!(loaded.len(), 2);
        std::fs::remove_file(&path).ok();
    }
}
