//! # chehab-datagen
//!
//! Training-data synthesis for the CHEHAB RL agent (Section 6 and
//! Appendices F/H.2 of the paper): a uniform random expression generator, an
//! LLM-style structured synthesizer that emits realistic, optimizable FHE
//! kernels (the substitute for the paper's Gemini-generated corpus), and the
//! dataset pipeline that deduplicates by ICI canonical form and excludes
//! benchmark programs.
//!
//! ## Example
//!
//! ```
//! use chehab_datagen::{generate_llm_like_dataset, generate_random_dataset};
//!
//! let llm_like = generate_llm_like_dataset(100, 42);
//! let random = generate_random_dataset(100, 42);
//! assert!(llm_like.len() >= 90 && random.len() >= 90);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod dataset;
mod llm_like;
mod random;

pub use dataset::{generate_llm_like_dataset, generate_random_dataset, DataSource, Dataset};
pub use llm_like::{LlmLikeConfig, LlmLikeSynthesizer, Motif};
pub use random::{RandomGenConfig, RandomGenerator};
